"""Deterministic replay: re-run a journaled scenario and diff the records.

The journal is the ground truth of a run.  Replay rebuilds the scenario
from the journal header's embedded spec, re-runs it while collecting the
same record stream in memory, and compares record-by-record.  The first
mismatch -- an event fired at a different time, under a different label,
or a digest that no longer matches -- is reported as a
:class:`Divergence` with both sides of the disagreement, which localizes
non-determinism (or journal tampering) to within ``digest_every`` events.

An *incomplete* journal (no ``end`` record: an interrupted run) is a
valid prefix; replay verifies the prefix and reports how far it got.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.persistence.journal import JournalError, JournalRecords, read_journal
from repro.persistence.runner import RunRecorder, _drive_to_horizon
from repro.persistence.scenarios import ScenarioSpec, prepare

_COMPARED_FIELDS = {
    "event": ("i", "t", "label"),
    "digest": ("i", "t", "digest"),
    "end": ("i", "t", "digest"),
}


@dataclass
class Divergence:
    """The first point where a replay disagrees with the journal."""

    index: int                    # position in the journal's record list
    fired: int                    # kernel fired-event count at the record
    time: Optional[float]         # simulated time of the recorded side
    field: str                    # which record field disagreed
    recorded: Any
    replayed: Any

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "fired": self.fired,
            "time": self.time,
            "field": self.field,
            "recorded": self.recorded,
            "replayed": self.replayed,
        }


@dataclass
class ReplayReport:
    """Outcome of replaying one journal."""

    scenario: Dict[str, Any]
    records_checked: int
    events_replayed: int
    journal_complete: bool
    divergence: Optional[Divergence] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "scenario": self.scenario,
            "records_checked": self.records_checked,
            "events_replayed": self.events_replayed,
            "journal_complete": self.journal_complete,
            "divergence": (self.divergence.to_dict()
                           if self.divergence else None),
            **self.extra,
        }


class _MemoryJournal:
    """A JournalWriter look-alike that keeps records in memory."""

    def __init__(self, digest_every: int) -> None:
        self.digest_every = digest_every
        self.records: List[Dict[str, Any]] = []

    def append_event(self, index: int, time: float, label: str) -> None:
        self.records.append({"type": "event", "i": index, "t": time,
                             "label": label})

    def append_digest(self, index: int, time: float, digest: str) -> None:
        self.records.append({"type": "digest", "i": index, "t": time,
                             "digest": digest})

    def close(self, index: int, time: float, digest: str) -> None:
        self.records.append({"type": "end", "i": index, "t": time,
                             "digest": digest})

    def abandon(self) -> None:  # pragma: no cover - interface parity
        pass


def _first_divergence(recorded: List[Dict[str, Any]],
                      replayed: List[Dict[str, Any]],
                      complete: bool) -> Optional[Divergence]:
    """Record-by-record diff; an incomplete journal is a valid prefix."""
    for index, want in enumerate(recorded):
        kind = want.get("type", "?")
        if index >= len(replayed):
            return Divergence(index=index, fired=int(want.get("i", -1)),
                              time=want.get("t"), field="type",
                              recorded=kind, replayed="<journal longer than replay>")
        got = replayed[index]
        if got.get("type") != kind:
            return Divergence(index=index, fired=int(want.get("i", -1)),
                              time=want.get("t"), field="type",
                              recorded=kind, replayed=got.get("type"))
        for fld in _COMPARED_FIELDS.get(kind, ()):
            if want.get(fld) != got.get(fld):
                return Divergence(index=index, fired=int(want.get("i", -1)),
                                  time=want.get("t"), field=fld,
                                  recorded=want.get(fld),
                                  replayed=got.get(fld))
    if complete and len(replayed) > len(recorded):
        extra = replayed[len(recorded)]
        return Divergence(index=len(recorded), fired=int(extra.get("i", -1)),
                          time=extra.get("t"), field="type",
                          recorded="<journal ends>", replayed=extra.get("type"))
    return None


def replay_journal(journal_path: str,
                   until: Optional[float] = None) -> ReplayReport:
    """Re-run the journaled scenario and verify every record.

    Raises :class:`JournalError` if the journal cannot express a
    rebuildable run (no scenario spec in the header).
    """
    journal = read_journal(journal_path)
    return replay_records(journal, until=until)


def replay_records(journal: JournalRecords,
                   until: Optional[float] = None) -> ReplayReport:
    """Replay from already-parsed records (see :func:`replay_journal`)."""
    scenario = journal.scenario
    if not scenario or "name" not in scenario:
        raise JournalError("journal header has no scenario spec; "
                           "this journal cannot be replayed")
    spec = ScenarioSpec.from_dict(scenario)
    prepared = prepare(spec)
    horizon = until if until is not None else prepared.horizon

    # Reconfigurations hot-loaded into the original run re-apply at their
    # fired-count barriers; the records themselves are instructions, not
    # part of the compared stream (the replay side never emits them).
    reconfigs = journal.reconfigs()
    if reconfigs:
        from repro.live.reconfigure import register_live_loads

        register_live_loads(prepared.system,
                            [{"fired": r.get("i", 0), "time": r.get("t", 0.0),
                              "payload": r.get("payload", {})}
                             for r in reconfigs])
    compared = [r for r in journal.records if r.get("type") != "reconfig"]

    memory = _MemoryJournal(journal.digest_every or 25)
    recorder = RunRecorder(prepared.system, journal=memory)
    try:
        _drive_to_horizon(prepared.system, horizon)
    finally:
        if journal.complete:
            recorder.finish()
        else:
            recorder.detach()

    divergence = _first_divergence(compared, memory.records,
                                   journal.complete)
    return ReplayReport(
        scenario=scenario,
        records_checked=len(compared),
        events_replayed=prepared.system.sim.fired_count,
        journal_complete=journal.complete,
        divergence=divergence,
        extra={"reconfigs_applied": len(reconfigs)} if reconfigs else {},
    )


def write_divergence_report(report: ReplayReport, path: str) -> None:
    """Write the replay outcome (for CI artifacts and ``repro replay``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

"""Drivers that journal, checkpoint and resume scenario runs.

The runner is the glue between the declarative scenario registry and the
persistence primitives:

* :class:`RunRecorder` hooks the kernel's ``on_event`` observer and writes
  one journal record per fired event plus a whole-system digest every
  ``digest_every`` events.
* :func:`run_scenario` performs an uninterrupted, journaled reference run.
* :func:`run_to_checkpoint` runs to a barrier (an explicit ``--at`` time or
  the first kernel stop, e.g. a :class:`~repro.faults.models.HarnessCrashFault`)
  and saves a checkpoint plus the journal prefix, *without* an ``end``
  record -- exactly what a crashed experiment leaves behind.
* :func:`resume_run` rebuilds the scenario from the checkpoint's spec,
  deterministically fast-forwards to the barrier, verifies the
  whole-system digest, truncates the journal to the barrier and continues
  to the horizon.  A resumed run's journal is byte-identical to an
  uninterrupted run's.

Checkpoints are taken *between* kernel events (the driver calls
``run(until=T)`` and then saves), never as scheduled events, so the act of
checkpointing cannot perturb the journaled event stream.

Persistence telemetry (save/restore latency, checkpoint size) is recorded
as metric *sample series* and spans only -- never counters or trace
events, because those feed the system digest and would make a resumed run
diverge from the uninterrupted reference by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Optional

from repro.persistence.checkpoint import Checkpoint, CheckpointError, default_paths
from repro.persistence.journal import JournalWriter, truncate
from repro.persistence.scenarios import PreparedRun, ScenarioSpec, prepare
from repro.persistence.snapshot import system_digest, system_snapshot


class RunRecorder:
    """Observes a live system and journals its event stream.

    Attaches to ``sim.on_event`` (called after each event's callback
    returns, so digests see the post-event state).  Detach with
    :meth:`finish` (clean close, writes the ``end`` record) or
    :meth:`abandon` (interrupted run, leaves the journal open-ended).
    """

    def __init__(self, system: Any, journal: Optional[JournalWriter] = None,
                 digest_every: int = 25) -> None:
        self.system = system
        self.journal = journal
        self.digest_every = (journal.digest_every if journal is not None
                             else digest_every)
        self.last_digest: Optional[Dict[str, Any]] = None
        self._prev_observer = system.sim.on_event
        system.sim.on_event = self._on_event

    def _on_event(self, event: Any) -> None:
        sim = self.system.sim
        index = sim.fired_count
        if self.journal is not None:
            self.journal.append_event(index, sim.now, event.label)
        if self.digest_every and index % self.digest_every == 0:
            digest = system_digest(self.system)
            self.last_digest = {"i": index, "t": sim.now, "digest": digest}
            if self.journal is not None:
                self.journal.append_digest(index, sim.now, digest)

    def detach(self) -> None:
        self.system.sim.on_event = self._prev_observer

    def finish(self) -> str:
        """Write the clean ``end`` record and detach; returns final digest."""
        sim = self.system.sim
        digest = system_digest(self.system)
        if self.journal is not None:
            self.journal.close(sim.fired_count, sim.now, digest)
        self.detach()
        return digest

    def abandon(self) -> None:
        """Detach without an ``end`` record (the interrupted-run path)."""
        if self.journal is not None:
            self.journal.abandon()
        self.detach()


# --------------------------------------------------------------------------- #
# Telemetry (digest-neutral: sample series + spans only)
# --------------------------------------------------------------------------- #
def _record_save_telemetry(system: Any, elapsed_s: float, size_bytes: int) -> None:
    now = system.sim.now
    system.metrics.record("persistence.checkpoint.save_s", now, elapsed_s)
    system.metrics.record("persistence.checkpoint.bytes", now, float(size_bytes))
    if system.spans is not None:
        system.spans.record("checkpoint:save", "persistence", now,
                            save_s=elapsed_s, bytes=size_bytes)


def _record_restore_telemetry(system: Any, elapsed_s: float, events: int) -> None:
    now = system.sim.now
    system.metrics.record("persistence.restore.fast_forward_s", now, elapsed_s)
    system.metrics.record("persistence.restore.events", now, float(events))
    if system.spans is not None:
        system.spans.record("checkpoint:restore", "persistence", now,
                            fast_forward_s=elapsed_s, events=events)


def save_checkpoint(system: Any, spec: ScenarioSpec, path: str,
                    digest_every: int = 25) -> Checkpoint:
    """Snapshot ``system`` at its current barrier and write ``path``."""
    started = perf_counter()
    checkpoint = Checkpoint(
        scenario=spec.to_dict(),
        time=system.sim.now,
        fired=system.sim.fired_count,
        digest=system_digest(system),
        digest_every=digest_every,
        state=system_snapshot(system),
    )
    size = checkpoint.save(path)
    _record_save_telemetry(system, perf_counter() - started, size)
    return checkpoint


# --------------------------------------------------------------------------- #
# Drivers
# --------------------------------------------------------------------------- #
@dataclass
class RunResult:
    """Outcome of a journaled run (uninterrupted, interrupted or resumed)."""

    spec: ScenarioSpec
    prepared: PreparedRun
    journal_path: Optional[str] = None
    checkpoint: Optional[Checkpoint] = None
    final_digest: Optional[str] = None
    fast_forward_events: int = 0
    fast_forward_s: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def system(self) -> Any:
        return self.prepared.system


def _drive_to_horizon(system: Any, horizon: float) -> None:
    """Run to ``horizon``, ignoring kernel stops.

    A :class:`~repro.faults.models.HarnessCrashFault` stops the kernel to
    model the experiment process dying; the *reference* driver (and a
    resumed driver, whose crash already happened) simply keeps going.  The
    crash event itself is part of the journaled stream either way, which
    is what makes crashed-and-resumed runs comparable to uninterrupted
    ones record-for-record.
    """
    system.run(until=horizon)
    while system.sim.now < horizon:
        system.run(until=horizon)


def run_scenario(spec: ScenarioSpec, journal_path: Optional[str] = None,
                 digest_every: int = 25,
                 until: Optional[float] = None) -> RunResult:
    """Uninterrupted reference run, optionally journaled."""
    prepared = prepare(spec)
    horizon = until if until is not None else prepared.horizon
    journal = (JournalWriter(journal_path, spec.to_dict(), digest_every)
               if journal_path else None)
    recorder = RunRecorder(prepared.system, journal, digest_every)
    try:
        _drive_to_horizon(prepared.system, horizon)
    except BaseException:
        recorder.abandon()
        raise
    final = recorder.finish()
    return RunResult(spec=spec, prepared=prepared, journal_path=journal_path,
                     final_digest=final)


def run_to_checkpoint(spec: ScenarioSpec, directory: str,
                      at: Optional[float] = None,
                      digest_every: int = 25) -> RunResult:
    """Run until ``at`` (or the first kernel stop) and save a checkpoint.

    Emulates an experiment that died mid-run: the journal holds a valid
    prefix with no ``end`` record, and ``checkpoint.json`` captures the
    barrier.  With no ``at``, the run lasts until a fault (e.g.
    ``harness-crash``) stops the kernel, or the horizon if none does.
    """
    os.makedirs(directory, exist_ok=True)
    paths = default_paths(directory)
    prepared = prepare(spec)
    horizon = prepared.horizon
    barrier = min(at, horizon) if at is not None else horizon
    journal = JournalWriter(paths["journal"], spec.to_dict(), digest_every)
    recorder = RunRecorder(prepared.system, journal, digest_every)
    try:
        prepared.system.run(until=barrier)
        checkpoint = save_checkpoint(prepared.system, spec,
                                     paths["checkpoint"], digest_every)
    finally:
        recorder.abandon()
    return RunResult(spec=spec, prepared=prepared,
                     journal_path=paths["journal"], checkpoint=checkpoint)


def fast_forward(system: Any, checkpoint: Checkpoint) -> float:
    """Deterministically replay ``system`` from t=0 to the barrier.

    Steps exactly ``checkpoint.fired`` events, advances the clock to the
    barrier time (a checkpoint may sit between events), then verifies the
    whole-system digest against the checkpoint.  Raises
    :class:`CheckpointError` if the rebuilt run diverges -- the scenario
    code, its seed or the environment has drifted since the save.
    Returns the wall-clock seconds spent.
    """
    started = perf_counter()
    sim = system.sim
    while sim.fired_count < checkpoint.fired:
        if sim.now > checkpoint.time:
            # Self-rescheduling scenarios never exhaust their queue, so an
            # impossible barrier must be caught by the clock overshooting
            # the checkpoint's time instead.
            raise CheckpointError(
                f"passed the barrier time t={checkpoint.time:g} after only "
                f"{sim.fired_count} events (checkpoint claims "
                f"{checkpoint.fired}); the scenario no longer reproduces "
                f"the checkpointed run")
        if not sim.step():
            raise CheckpointError(
                f"scenario exhausted after {sim.fired_count} events but the "
                f"checkpoint barrier is at {checkpoint.fired}; the scenario "
                f"no longer reproduces the checkpointed run")
    if checkpoint.time > sim.now:
        sim.advance_to(checkpoint.time)
    elapsed = perf_counter() - started
    digest = system_digest(system)
    if digest != checkpoint.digest:
        raise CheckpointError(
            f"digest mismatch at barrier (fired={checkpoint.fired}, "
            f"t={checkpoint.time:g}): checkpoint {checkpoint.digest[:12]}..., "
            f"rebuilt {digest[:12]}...; scenario code or seed has drifted "
            f"since the checkpoint was taken")
    _record_restore_telemetry(system, elapsed, checkpoint.fired)
    return elapsed


def resume_run(directory: Optional[str] = None,
               checkpoint_path: Optional[str] = None,
               journal_path: Optional[str] = None,
               until: Optional[float] = None) -> RunResult:
    """Resume a checkpointed run and complete its horizon.

    Loads the checkpoint, rebuilds the scenario from its embedded spec,
    fast-forwards to the barrier (verifying the digest), truncates the
    journal to the barrier (WAL recovery: the crashed run may have
    journaled past the last durable checkpoint) and continues, appending
    to the same journal.  The result's journal is byte-identical to an
    uninterrupted run of the same spec.
    """
    if directory is not None:
        paths = default_paths(directory)
        checkpoint_path = checkpoint_path or paths["checkpoint"]
        journal_path = journal_path or paths["journal"]
    if checkpoint_path is None:
        raise CheckpointError("resume_run needs a directory or checkpoint_path")
    checkpoint = Checkpoint.load(checkpoint_path)
    spec = ScenarioSpec.from_dict(checkpoint.scenario)
    prepared = prepare(spec)
    system = prepared.system
    horizon = until if until is not None else prepared.horizon

    elapsed = fast_forward(system, checkpoint)

    journal = None
    if journal_path and os.path.exists(journal_path):
        truncate(journal_path, checkpoint.fired)
        journal = JournalWriter(journal_path, append=True)
    recorder = RunRecorder(system, journal, checkpoint.digest_every)
    try:
        _drive_to_horizon(system, horizon)
    except BaseException:
        recorder.abandon()
        raise
    final = recorder.finish()
    return RunResult(spec=spec, prepared=prepared, journal_path=journal_path,
                     checkpoint=checkpoint, final_digest=final,
                     fast_forward_events=checkpoint.fired,
                     fast_forward_s=elapsed)

"""Rebuildable scenario specs: the bridge between checkpoints and systems.

A checkpoint can only be resumed if the run it interrupted can be rebuilt
from a declarative description.  A :class:`ScenarioSpec` is that
description -- a registered scenario name, a seed and free-form params --
and the registry maps names to *builders* that wire a system (topology,
devices, protocols, fault schedule) **without running it**.  The
persistence runner then drives the run, journals it, checkpoints it and
replays it.

Builders must be deterministic functions of ``(seed, params)``: two
invocations with the same spec must produce systems whose runs are
bit-identical.  Everything in the repo already obeys this discipline
(seeded RNG streams, deterministic kernel), so builders just have to
avoid wall-clock and ambient randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative identity of a run: rebuildable, hashable, journal-able."""

    name: str
    seed: Optional[int] = None   # None -> the scenario's canonical seed
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        seed = data.get("seed")
        return cls(name=data["name"],
                   seed=None if seed is None else int(seed),
                   params=dict(data.get("params", {})))


@dataclass
class PreparedRun:
    """A fully wired, not-yet-run system plus its run horizon.

    ``aux`` carries scenario-specific live objects (MAPE loops, protocol
    nodes) that tests and KPI reporting may want after the run.
    """

    system: Any
    horizon: float
    aux: Dict[str, Any] = field(default_factory=dict)


ScenarioBuilder = Callable[[int, Dict[str, Any]], PreparedRun]

_REGISTRY: Dict[str, ScenarioBuilder] = {}


class UnknownScenarioError(KeyError):
    """An unregistered scenario name.

    Subclasses ``KeyError`` for backward compatibility; carries the
    registered names so callers (the CLI in particular) can list what
    *is* available instead of dumping a traceback.
    """

    def __init__(self, name: str, available: List[str]) -> None:
        super().__init__(
            f"unknown scenario {name!r}; registered: {available}")
        self.name = name
        self.available = available

    def __str__(self) -> str:
        return f"unknown scenario {self.name!r}; registered: {self.available}"


def register_scenario(name: str, builder: Optional[ScenarioBuilder] = None):
    """Register a builder under ``name`` (usable as a decorator)."""

    def _register(fn: ScenarioBuilder) -> ScenarioBuilder:
        _REGISTRY[name] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def scenario_names() -> List[str]:
    _ensure_builtin()
    return sorted(_REGISTRY)


def scenario_builders() -> Dict[str, ScenarioBuilder]:
    """A copy of the registry (for catalog/introspection layers)."""
    _ensure_builtin()
    return dict(_REGISTRY)


def prepare(spec: ScenarioSpec) -> PreparedRun:
    """Build (but do not run) the system described by ``spec``.

    ``params["live_loads"]`` -- reconfigurations hot-loaded into a
    previous live run, each ``{"fired": N, "time": T, "payload": {...}}``
    -- is applied generically: every load re-registers at its original
    fired-count barrier, so a rebuilt run (fast-forward, resume, replay)
    reproduces the mutation at the identical point in the event sequence
    and every kernel sequence number matches the live run's.
    """
    _ensure_builtin()
    builder = _REGISTRY.get(spec.name)
    if builder is None:
        raise UnknownScenarioError(spec.name, scenario_names())
    params = dict(spec.params)
    live_loads = params.pop("live_loads", None)
    prepared = builder(spec.seed, params)
    if live_loads:
        from repro.live.reconfigure import register_live_loads

        register_live_loads(prepared.system, live_loads)
    return prepared


# --------------------------------------------------------------------------- #
# Built-in scenarios
# --------------------------------------------------------------------------- #
_BUILTIN_LOADED = False


def _ensure_builtin() -> None:
    """Register the built-in scenarios lazily (import-cycle guard)."""
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True

    from repro.experiments import (
        FIG3_HORIZON,
        FIG5_HORIZON,
        prepare_control_architecture,
        prepare_mape_placement,
    )

    @register_scenario("mape-outage")
    def _mape_outage(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """Fig. 5's MAPE placement run (default: edge placement).

        ``monitored`` attaches the SLO monitoring stack (probe, default
        SLOs, gossip liveness mesh) exactly as the CLI's ``monitor``
        command does; ``strict`` adds the cloud-availability SLO.
        """
        placement = params.get("placement", "edge")
        monitored = bool(params.get("monitored"))
        strict = bool(params.get("strict"))
        aux: Dict[str, Any] = {}

        def setup(system, loops) -> None:
            from repro.observability.scenarios import monitored_setup

            aux["monitor"] = monitored_setup(system, loops, strict=strict,
                                             city=False)

        system, loops = prepare_mape_placement(
            placement, seed=seed or 19,
            observe=bool(params.get("observe")) or monitored,
            setup=setup if monitored else None)
        aux["loops"] = loops
        return PreparedRun(system=system,
                           horizon=float(params.get("horizon", FIG5_HORIZON)),
                           aux=aux)

    @register_scenario("smart-city-partition")
    def _smart_city(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """The canonical observed run: a smart city losing its cloud."""
        from repro.observability.scenarios import prepare_smart_city_partition

        return prepare_smart_city_partition(
            seed=seed,
            quick=bool(params.get("quick")),
            monitored=bool(params.get("monitored")),
            strict=bool(params.get("strict")))

    @register_scenario("control-outage")
    def _control(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """Fig. 3's control-architecture run (default: decentralized)."""
        architecture = params.get("architecture", "decentralized")
        system, loops = prepare_control_architecture(architecture,
                                                     seed=seed or 11)
        return PreparedRun(system=system,
                           horizon=float(params.get("horizon", FIG3_HORIZON)),
                           aux={"loops": loops})

    @register_scenario("harness-crash")
    def _harness_crash(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """The fault engine's end-to-end recovery proof.

        A decentralized control run whose fault schedule includes a
        :class:`~repro.faults.models.HarnessCrashFault`: at ``crash_at``
        the experiment process itself "dies" (the kernel stops
        mid-horizon).  The persistence runner checkpoints at the stop,
        and a resumed run must complete the horizon bit-identically to a
        driver that ignores the stop -- proving the checkpoint/journal
        path end to end.
        """
        from repro.faults.models import HarnessCrashFault

        system, loops = prepare_control_architecture(
            params.get("architecture", "decentralized"), seed=seed or 11)
        crash_at = float(params.get("crash_at", 45.0))
        system.injector.inject_at(crash_at, HarnessCrashFault(
            name=f"harness-crash@{crash_at:g}"))
        return PreparedRun(system=system,
                           horizon=float(params.get("horizon", FIG3_HORIZON)),
                           aux={"loops": loops, "crash_at": crash_at})

    from repro.traffic.scenarios import (
        OVERLOAD_HORIZON,
        RETRY_STORM_HORIZON,
        prepare_overload,
        prepare_retry_storm,
    )

    @register_scenario("traffic-overload")
    def _traffic_overload(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """Edge server under 1.6x capacity (default: admission control)."""
        return prepare_overload(
            seed=seed or 23,
            variant=params.get("variant", "admission"),
            users=int(params.get("users", 8000)),
            rate_per_user=float(params.get("rate_per_user", 0.04)),
            horizon=float(params.get("horizon", OVERLOAD_HORIZON)))

    @register_scenario("traffic-retry-storm")
    def _traffic_retry_storm(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """Retry amplification across an edge crash (default: resilient)."""
        return prepare_retry_storm(
            seed=seed or 29,
            variant=params.get("variant", "resilient"),
            users=int(params.get("users", 3500)),
            rate_per_user=float(params.get("rate_per_user", 0.04)),
            horizon=float(params.get("horizon", RETRY_STORM_HORIZON)))

    from repro.security.scenarios import (
        BYZANTINE_GOSSIP_HORIZON,
        RAFT_EQUIVOCATION_HORIZON,
        SYBIL_FLOOD_HORIZON,
        prepare_byzantine_gossip,
        prepare_raft_equivocation,
        prepare_sybil_flood,
    )

    @register_scenario("security-byzantine-gossip")
    def _security_byzantine(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """A gossiping site equivocates (default: defended mesh)."""
        return prepare_byzantine_gossip(
            seed=seed or 37,
            variant=params.get("variant", "defended"),
            horizon=float(params.get("horizon", BYZANTINE_GOSSIP_HORIZON)))

    @register_scenario("security-raft-equivocation")
    def _security_raft(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """Two Raft voters grant every candidate (default: defended)."""
        return prepare_raft_equivocation(
            seed=seed or 41,
            variant=params.get("variant", "defended"),
            horizon=float(params.get("horizon", RAFT_EQUIVOCATION_HORIZON)))

    @register_scenario("security-sybil-flood")
    def _security_sybil(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """A compromised peer floods and forges joins (default: defended)."""
        return prepare_sybil_flood(
            seed=seed or 43,
            variant=params.get("variant", "defended"),
            horizon=float(params.get("horizon", SYBIL_FLOOD_HORIZON)))

    @register_scenario("chaos")
    def _chaos(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """A compiled chaos spec (params carry its full dict form).

        One registry entry covers the whole declarative cross-product:
        ``params["spec"]`` is a :class:`repro.chaos.ChaosSpec` dict, and
        the compiler wires it onto the same builders every hand-written
        scenario uses -- so chaos runs checkpoint, resume and replay
        like any curated scenario.  A persistence-level ``seed``
        overrides the spec's own.
        """
        from repro.chaos.compiler import ScenarioCompiler
        from repro.chaos.spec import ChaosSpec

        chaos = ChaosSpec.from_dict(params.get("spec", {}))
        if seed:
            chaos = chaos.with_seed(seed)
        return ScenarioCompiler().compile(chaos)

    @register_scenario("smart-city-federated")
    def _smart_city_federated(seed: int, params: Dict[str, Any]) -> PreparedRun:
        """Federated smart city: K administrative domains x N devices.

        One shard's worth of the paper's Fig. 4 federation (all domains
        when the ``shard``/``shards`` params are absent); see
        :mod:`repro.shard.scenario`.  Runs standalone like any scenario,
        or partitioned under the sharded federation driver.
        """
        from repro.shard.scenario import prepare_smart_city_federated

        return prepare_smart_city_federated(seed, params)

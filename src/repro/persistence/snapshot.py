"""The Snapshottable protocol and state digests.

Every stateful component that participates in checkpointing implements two
methods:

* ``snapshot_state() -> dict`` -- a JSON-able capture of the component's
  state, including the absolute times of its pending self-scheduled events
  (periodic ticks, probe timeouts).
* ``restore_state(state) -> None`` -- the inverse: rebuild the state and
  *re-register* the pending events with the kernel.  Callbacks are never
  serialized (closures do not survive a process boundary); each component
  owns its own re-registration, which also naturally honors the kernel's
  lazy cancellation -- cancelled events were excluded from the snapshot, so
  they are simply never re-created.

On top of the protocol this module provides canonical JSON hashing
(:func:`state_digest`) and the compact whole-system digest
(:func:`system_digest_state`) that the event journal records at a
configurable cadence.  Digests are the ground truth of the replay
machinery: two runs are "the same run" exactly when their digest chains
match.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Protocol, runtime_checkable


@runtime_checkable
class Snapshottable(Protocol):
    """Structural protocol for checkpointable components."""

    def snapshot_state(self) -> Dict[str, Any]: ...

    def restore_state(self, state: Dict[str, Any]) -> None: ...


def canonical_json(state: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace drift.

    Floats use Python's shortest-round-trip repr, which is bit-stable for
    equal doubles -- the property the digest chain relies on.
    """
    return json.dumps(state, sort_keys=True, separators=(",", ":"),
                      default=_fallback)


def _fallback(value: Any) -> Any:
    # Sets/frozensets and tuples appear in component state; encode
    # deterministically rather than failing.
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"not JSON-serializable for snapshot: {value!r}")


def event_ref(event: Any) -> Any:
    """Serializable reference to a pending kernel event (or None).

    Captures ``(time, priority, seq, label)`` so a component's
    ``restore_state`` can re-register the event with
    :meth:`~repro.simulation.kernel.Simulator.restore_event`, preserving
    the original intra-instant firing order.  Cancelled or fired events
    yield None -- lazy cancellation means they must not be re-created.
    """
    if event is None or not event.pending:
        return None
    return {"t": event.time, "priority": event.priority,
            "seq": event.seq, "label": event.label}


def restore_event_ref(sim: Any, ref: Any, callback: Any) -> Any:
    """Re-register an :func:`event_ref` with ``callback``; None-safe."""
    if ref is None:
        return None
    return sim.restore_event(ref["t"], callback, priority=ref["priority"],
                             seq=ref["seq"], label=ref["label"])


def state_digest(state: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``state``."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Whole-system capture
# --------------------------------------------------------------------------- #
def system_digest_state(system) -> Dict[str, Any]:
    """Compact, deterministic fingerprint of an :class:`IoTSystem`.

    Small enough to compute every few events, yet sensitive to every
    divergence channel: the clock and event counters catch scheduling
    drift, RNG stream digests catch draw-order drift, transport counters
    catch message drift, fleet liveness and fault lists catch state drift,
    and metric counters catch adaptation drift.
    """
    sim = system.sim
    rngs = system.rngs.snapshot_state()
    stats = system.network.stats
    return {
        "kernel": {
            "now": sim.now,
            "fired": sim.fired_count,
            "next_seq": sim._next_seq,
            "pending": sim.pending_count,
        },
        "rngs": {
            name: state_digest(state)
            for name, state in rngs["streams"].items()
        },
        "network": [stats.sent, stats.delivered, stats.dropped_loss,
                    stats.dropped_unreachable, stats.total_latency,
                    stats.dropped_quarantined, stats.dropped_auth,
                    stats.dropped_intercepted],
        "fleet": {d.device_id: bool(d.up) for d in system.fleet.devices},
        "faults": {
            "injected": [f.name for f in system.injector.injected],
            "active": [f.name for f in system.injector.active_faults],
        },
        "counters": dict(system.metrics._counters),
        "trace_len": len(system.trace),
    }


def system_snapshot(system) -> Dict[str, Any]:
    """Full (auditable) system state for a checkpoint file.

    Superset of :func:`system_digest_state`: adds the kernel's pending
    event metadata, complete RNG stream states and per-device detail, so a
    saved checkpoint can be inspected offline and verified field-by-field
    against a replayed run.
    """
    return {
        "kernel": system.sim.snapshot_state(),
        "rngs": system.rngs.snapshot_state(),
        "fleet": system.fleet.snapshot_state(),
        "digest_fields": system_digest_state(system),
    }


def system_digest(system) -> str:
    """The journal/checkpoint digest of a live system."""
    return state_digest(system_digest_state(system))

"""One discoverable registry over every plane's scenarios.

Historically each plane kept its own scenario surface
(``traffic/scenarios.py``, ``security/scenarios.py``,
``persistence/scenarios.py``) and only the persistence registry knew the
full set of *runnable* names.  This module is the single front door: the
persistence registry remains the authoritative name -> builder store
(checkpoints must stay rebuildable from it), and this facade adds the
discovery layer -- which plane owns a scenario, which variants it takes,
what it does -- consumed by ``python -m repro scenarios list`` and the
docs.  Compiled chaos specs register through the same path (scenario
``"chaos"``), so a declarative spec and a hand-written scenario are
interchangeable everywhere a scenario name is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.persistence.scenarios import (
    PreparedRun,
    ScenarioSpec,
    UnknownScenarioError,
    prepare,
    register_scenario,
    scenario_builders,
    scenario_names,
)

__all__ = [
    "PreparedRun",
    "ScenarioInfo",
    "ScenarioSpec",
    "UnknownScenarioError",
    "catalog",
    "describe_scenario",
    "prepare",
    "register_scenario",
    "scenario_names",
]

#: Owning plane by exact name; prefixes cover the rest.
_PLANES: Dict[str, str] = {
    "mape-outage": "adaptation",
    "control-outage": "adaptation",
    "smart-city-partition": "observability",
    "harness-crash": "persistence",
    "chaos": "chaos",
    "smart-city-federated": "shard",
}


def _plane_of(name: str) -> str:
    if name in _PLANES:
        return _PLANES[name]
    prefix = name.split("-", 1)[0]
    if prefix in ("traffic", "security"):
        return prefix
    return "core"


def _variants_of(name: str) -> Tuple[str, ...]:
    """The ``variant`` param values a scenario accepts (empty if none)."""
    if name == "traffic-overload":
        from repro.traffic.scenarios import OVERLOAD_VARIANTS

        return tuple(OVERLOAD_VARIANTS)
    if name == "traffic-retry-storm":
        from repro.traffic.scenarios import RETRY_STORM_VARIANTS

        return tuple(RETRY_STORM_VARIANTS)
    if name == "security-byzantine-gossip":
        from repro.security.scenarios import BYZANTINE_GOSSIP_VARIANTS

        return tuple(BYZANTINE_GOSSIP_VARIANTS)
    if name == "security-raft-equivocation":
        from repro.security.scenarios import RAFT_EQUIVOCATION_VARIANTS

        return tuple(RAFT_EQUIVOCATION_VARIANTS)
    if name == "security-sybil-flood":
        from repro.security.scenarios import SYBIL_FLOOD_VARIANTS

        return tuple(SYBIL_FLOOD_VARIANTS)
    if name == "control-outage":
        return ("centralized", "decentralized")
    if name == "mape-outage":
        return ("edge", "cloud")
    return ()


@dataclass(frozen=True)
class ScenarioInfo:
    """Catalog row: everything discovery needs, nothing a run needs."""

    name: str
    plane: str
    variants: Tuple[str, ...]
    description: str

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "plane": self.plane,
                "variants": list(self.variants),
                "description": self.description}


def describe_scenario(name: str) -> ScenarioInfo:
    """Catalog entry for one registered scenario.

    Raises :class:`UnknownScenarioError` (with the available names) for
    anything not in the registry.
    """
    builders = scenario_builders()
    builder = builders.get(name)
    if builder is None:
        raise UnknownScenarioError(name, sorted(builders))
    doc = (builder.__doc__ or "").strip()
    description = doc.splitlines()[0] if doc else ""
    return ScenarioInfo(name=name, plane=_plane_of(name),
                        variants=_variants_of(name), description=description)


def catalog(plane: Optional[str] = None) -> List[ScenarioInfo]:
    """Every registered scenario, optionally filtered by owning plane."""
    infos = [describe_scenario(name) for name in scenario_names()]
    if plane is not None:
        infos = [info for info in infos if info.plane == plane]
    return infos

"""Active-adversary plane: attack behaviors, trust, and intrusion response.

The paper names adversarial environments as a first-class disruption
vector, with the top maturity level (ML4) requiring that a system
*detect and adapt to* untrusted participants.  This package turns
compromised devices into behaving attackers and gives the rest of the
stack the machinery to survive them:

* :mod:`repro.security.auth` -- per-node keys and HMAC message
  authentication over the deterministic payload encoding, installed as a
  transport interceptor/verifier pair so tampering is *detectable*.
* :mod:`repro.security.adversary` -- the :class:`Adversary` controller
  and per-node :class:`AttackBehavior`\\ s (tampering, equivocation,
  selective drop/delay, flooding, sybil joins) installed as send-side
  transport interceptors *after* the signer, modeling a compromise of
  the node's network stack below its signing layer.
* :mod:`repro.security.trust` -- deterministic per-observer reputation
  scoring from direct and gossiped indirect evidence, plus a
  :class:`FloodSentry` rate monitor over the transport's per-source
  counters.
* :mod:`repro.security.plane` -- the :class:`SecurityPlane` facade that
  wires all of the above into one system and exposes quarantine /
  eviction / key-rotation for the MAPE executor.
* :mod:`repro.security.scenarios` -- the three attack scenarios
  (byzantine gossip, sybil flood, raft equivocation) with naive and
  defended configurations and resilience gates.
"""

from repro.security.auth import KeyChain, MessageAuthenticator
from repro.security.adversary import (
    Adversary,
    AttackBehavior,
    DropDelayBehavior,
    FloodBehavior,
    GossipEquivocateBehavior,
    SybilJoinBehavior,
    TamperBehavior,
    VoteEquivocateBehavior,
)
from repro.security.plane import SECURITY_CONTEXT_KEY, SecurityPlane
from repro.security.trust import EVIDENCE_PENALTIES, FloodSentry, TrustRegistry

__all__ = [
    "Adversary",
    "AttackBehavior",
    "DropDelayBehavior",
    "EVIDENCE_PENALTIES",
    "FloodBehavior",
    "FloodSentry",
    "GossipEquivocateBehavior",
    "KeyChain",
    "MessageAuthenticator",
    "SECURITY_CONTEXT_KEY",
    "SecurityPlane",
    "SybilJoinBehavior",
    "TamperBehavior",
    "TrustRegistry",
    "VoteEquivocateBehavior",
]

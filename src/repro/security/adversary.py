"""Attack behaviors and the adversary controller.

A compromised node keeps running its legitimate protocol stack; the
:class:`Adversary` installs one shared send-side transport interceptor
that gives the node's :class:`AttackBehavior`\\ s a chance to rewrite,
drop, delay or amplify every outbound message.  Because the security
plane installs its signing interceptor *first*, anything a behavior
rewrites afterwards no longer matches its HMAC tag -- tampering models a
compromise of the network stack *below* the node's signing layer, which
is exactly what makes it detectable by authenticated receivers.

Behaviors that rewrite payloads must **replace** ``message.payload``
rather than mutate it: protocol senders share payload sub-structures
across destinations (e.g. a gossip round pushes one digest list to every
target), and in-place mutation would corrupt the honest copies.

Active behaviors (flooding, sybil joins) additionally schedule their own
kernel events while activated, drawing all randomness from seeded
streams so runs stay checkpoint/resume-exact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.rng import restore_rng_state, serialize_rng_state
from repro.traffic.request import REQUEST_KIND, Request, reply_kind


class AttackBehavior:
    """Base class: one attack capability installed on one node."""

    #: Short identifier used for RNG stream names and trace events.
    slug = "noop"
    #: Message kinds this behavior touches; None means every kind.
    kinds: Optional[Tuple[str, ...]] = None

    def __init__(self) -> None:
        self.plane: Any = None
        self.node: Optional[str] = None
        self.rng = None
        self.active = False
        self.tampered = 0

    def install(self, plane: Any, node: str, rng) -> None:
        self.plane = plane
        self.node = node
        self.rng = rng

    def activate(self) -> None:
        self.active = True
        self.on_activate()

    def deactivate(self) -> None:
        self.active = False
        self.on_deactivate()

    # -- hooks -------------------------------------------------------------- #
    def matches(self, message) -> bool:
        return self.kinds is None or message.kind in self.kinds

    def outbound(self, message) -> Any:
        """Rewrite/drop/delay one outbound message (interceptor contract)."""
        return None

    def on_activate(self) -> None:
        """Start generating traffic (flooders, sybil announcers)."""

    def on_deactivate(self) -> None:
        """Stop generated traffic."""

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {"active": self.active,
                                 "tampered": self.tampered}
        if self.rng is not None:
            state["rng"] = serialize_rng_state(self.rng)
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.active = bool(state["active"])
        self.tampered = int(state["tampered"])
        if self.rng is not None and "rng" in state:
            restore_rng_state(self.rng, state["rng"])


class TamperBehavior(AttackBehavior):
    """Garble payloads wholesale.

    The replacement payload is protocol-*invalid*, so this behavior is
    only safe against authenticated receivers (the tag check drops the
    message before any handler sees it) -- which is the point: it is the
    plainest way to exercise the detection path.
    """

    slug = "tamper"

    def __init__(self, kinds: Optional[Tuple[str, ...]] = None,
                 probability: float = 1.0) -> None:
        super().__init__()
        self.kinds = kinds
        self.probability = probability

    def outbound(self, message) -> Any:
        if self.probability < 1.0 and self.rng.random() >= self.probability:
            return None
        message.payload = {"tampered-by": self.node,
                           "original-kind": message.kind}
        self.tampered += 1
        return None


class GossipEquivocateBehavior(AttackBehavior):
    """Tell every peer a different, ever-newer story about one gossip key.

    Each outbound gossip digest gets the target key rewritten to a
    destination-specific value at a version bumped on *every* message,
    all owned by the attacker.  Every rewrite therefore dominates
    whatever the mesh last agreed on, and the attacker issues rewrites
    (pushes and pull replies) faster than the epidemic can spread any one
    of them -- so a naive (unauthenticated) mesh churns forever and never
    settles on a value, let alone the honest one.
    """

    slug = "equivocate"
    kinds = ("gossip.push", "gossip.pull")

    def __init__(self, key: str, version: int = 1_000_000) -> None:
        super().__init__()
        self.key = key
        self.version = version

    def outbound(self, message) -> Any:
        payload = message.payload or {}
        state = [entry for entry in payload.get("state", ())
                 if entry[0] != self.key]
        state.append((self.key,
                      f"equivocal:{self.node}->{message.dst}#{self.tampered}",
                      self.version + self.tampered, self.node))
        message.payload = {"from": payload.get("from", self.node),
                           "state": sorted(state)}
        self.tampered += 1
        return None


class VoteEquivocateBehavior(AttackBehavior):
    """Grant every Raft candidate and ack every append.

    Rewrites outbound ``vote_reply`` messages to ``granted: True``
    regardless of the node's actual single-vote discipline, and
    ``append_reply`` to unconditional success.  With two such liars in a
    five-node cluster, any two same-term candidates both reach quorum --
    a leader-safety violation -- unless receivers authenticate replies.
    """

    slug = "vote-equivocate"
    kinds = ("raft.vote_reply", "raft.append_reply")

    def outbound(self, message) -> Any:
        payload = dict(message.payload or {})
        if message.kind == "raft.vote_reply":
            payload["granted"] = True
        else:
            payload["success"] = True
        message.payload = payload
        self.tampered += 1
        return None


class DropDelayBehavior(AttackBehavior):
    """Selectively drop or delay outbound messages."""

    slug = "drop-delay"

    def __init__(self, kinds: Optional[Tuple[str, ...]] = None,
                 drop_probability: float = 0.0,
                 delay: float = 0.0) -> None:
        super().__init__()
        self.kinds = kinds
        self.drop_probability = drop_probability
        self.delay = delay

    def outbound(self, message) -> Any:
        if self.drop_probability and self.rng.random() < self.drop_probability:
            self.tampered += 1
            return "drop"
        if self.delay:
            self.tampered += 1
            return self.delay
        return None


class FloodBehavior(AttackBehavior):
    """Open-loop request flood against one serving node.

    Generates validly-addressed (and, under a security plane, validly
    *signed*) ``traffic.request`` messages at ``rate`` per second -- the
    flooder is a real identity sending real requests, so authentication
    alone cannot stop it; defense is rate-based (the
    :class:`~repro.security.trust.FloodSentry`) plus admission control.
    """

    slug = "flood"

    def __init__(self, target: str, rate: float, weight: int = 1,
                 size_bytes: int = 256, batch_period: float = 0.1) -> None:
        super().__init__()
        self.target = target
        self.rate = rate
        self.weight = weight
        self.size_bytes = size_bytes
        self.batch_period = batch_period
        self._carry = 0.0
        self._req_ids = 0
        self._tick_event = None
        self._sink_registered = False

    @property
    def client_name(self) -> str:
        return f"flood-{self.node}"

    def on_activate(self) -> None:
        network = self.plane.system.network
        if not self._sink_registered:
            # Swallow server replies so they don't count as unreachable.
            network.register(self.node, reply_kind(self.client_name),
                             lambda message: None)
            self._sink_registered = True
        if self._tick_event is None:
            self._tick_event = self.plane.system.sim.schedule(
                self.batch_period, self._tick,
                label=f"security.flood:{self.node}")

    def on_deactivate(self) -> None:
        if self._tick_event is not None and self._tick_event.pending:
            self.plane.system.sim.cancel(self._tick_event)
        self._tick_event = None

    def _tick(self, sim) -> None:
        if not self.active:
            self._tick_event = None
            return
        network = self.plane.system.network
        self._carry += self.rate * self.batch_period
        burst = int(self._carry)
        self._carry -= burst
        for _ in range(burst):
            self._req_ids += 1
            request = Request(req_id=self._req_ids, client=self.client_name,
                              origin=self.node, created_at=sim.now,
                              weight=self.weight)
            network.send(self.node, self.target, REQUEST_KIND,
                         payload=request.to_payload(),
                         size_bytes=self.size_bytes)
        self._tick_event = sim.schedule(self.batch_period, self._tick,
                                        label=f"security.flood:{self.node}")

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({"carry": self._carry, "req_ids": self._req_ids,
                      "tick": event_ref(self._tick_event)})
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self._carry = float(state["carry"])
        self._req_ids = int(state["req_ids"])
        self._tick_event = restore_event_ref(
            self.plane.system.sim, state["tick"], self._tick)


class SybilJoinBehavior(AttackBehavior):
    """Forge SWIM piggybacks introducing fake members.

    Each tick sends a crafted ``swim.ping`` to the next target member
    carrying ``alive`` updates for fabricated identities.  A naive
    receiver adopts unknown members on rumor alone; a defended one
    consults its update filter (known identity + trusted carrier) and
    rejects the join while charging the carrier ``sybil-join`` evidence.
    """

    slug = "sybil"

    def __init__(self, targets: List[str], count: int = 24,
                 per_tick: int = 2, period: float = 0.5) -> None:
        super().__init__()
        self.targets = list(targets)
        self.count = count
        self.per_tick = per_tick
        self.period = period
        self._introduced = 0
        self._target_cursor = 0
        self._seq = 0
        self._tick_event = None

    def on_activate(self) -> None:
        if self._tick_event is None:
            self._tick_event = self.plane.system.sim.schedule(
                self.period, self._tick, label=f"security.sybil:{self.node}")

    def on_deactivate(self) -> None:
        if self._tick_event is not None and self._tick_event.pending:
            self.plane.system.sim.cancel(self._tick_event)
        self._tick_event = None

    def _tick(self, sim) -> None:
        if not self.active or not self.targets:
            self._tick_event = None
            return
        network = self.plane.system.network
        updates = []
        for _ in range(self.per_tick):
            index = self._introduced % self.count
            self._introduced += 1
            updates.append((f"sybil-{self.node}-{index}", "alive", 1))
        target = self.targets[self._target_cursor % len(self.targets)]
        self._target_cursor += 1
        self._seq -= 1   # negative seq space: never collides with probes
        network.send(self.node, target, "swim.ping",
                     payload={"seq": self._seq, "from": self.node,
                              "updates": updates},
                     size_bytes=128)
        self._tick_event = sim.schedule(self.period, self._tick,
                                        label=f"security.sybil:{self.node}")

    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state.update({"introduced": self._introduced,
                      "target_cursor": self._target_cursor,
                      "seq": self._seq,
                      "tick": event_ref(self._tick_event)})
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self._introduced = int(state["introduced"])
        self._target_cursor = int(state["target_cursor"])
        self._seq = int(state["seq"])
        self._tick_event = restore_event_ref(
            self.plane.system.sim, state["tick"], self._tick)


class Adversary:
    """Controller mapping compromised nodes to their attack behaviors.

    Installs a single shared transport interceptor (lazily, on the first
    compromise) that dispatches outbound messages to the sending node's
    active behaviors.  Behavior order matters: the first behavior that
    returns a verdict ("drop" / delay) wins; payload rewrites compose.
    """

    def __init__(self, system: Any) -> None:
        self.system = system
        self.plane: Any = None   # set by SecurityPlane
        self._behaviors: Dict[str, List[AttackBehavior]] = {}
        self._interceptor_installed = False

    def compromise(self, node: str, behaviors: List[AttackBehavior]) -> None:
        if not self._interceptor_installed:
            self.system.network.add_interceptor(self._outbound)
            self._interceptor_installed = True
        installed = self._behaviors.setdefault(node, [])
        for behavior in behaviors:
            behavior.install(
                self.plane, node,
                self.system.rngs.stream(
                    f"security:attack:{node}:{behavior.slug}"))
            installed.append(behavior)
            behavior.activate()
        if self.system.metrics is not None:
            self.system.metrics.increment("security.compromised")

    def release(self, node: str) -> None:
        for behavior in self._behaviors.get(node, ()):
            behavior.deactivate()

    def is_compromised(self, node: str) -> bool:
        return any(b.active for b in self._behaviors.get(node, ()))

    @property
    def compromised_nodes(self) -> List[str]:
        return sorted(n for n in self._behaviors if self.is_compromised(n))

    def behaviors_of(self, node: str) -> List[AttackBehavior]:
        return list(self._behaviors.get(node, ()))

    def _outbound(self, message) -> Any:
        behaviors = self._behaviors.get(message.src)
        if not behaviors:
            return None
        for behavior in behaviors:
            if not behavior.active or not behavior.matches(message):
                continue
            verdict = behavior.outbound(message)
            if verdict is not None:
                return verdict
        return None

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        return {node: [b.snapshot_state() for b in behaviors]
                for node, behaviors in sorted(self._behaviors.items())}

    def restore_state(self, state: Dict[str, Any]) -> None:
        for node, behavior_states in state.items():
            behaviors = self._behaviors.get(node, ())
            for behavior, b_state in zip(behaviors, behavior_states):
                behavior.restore_state(b_state)

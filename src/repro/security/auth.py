"""Signed-digest message authentication.

Authenticity is a keyed BLAKE2b MAC over a deterministic encoding of
``(src, dst, kind, payload)``, keyed per sender from a seeded
:class:`KeyChain`.  The signer runs as the **first** send-side transport
interceptor; attack behaviors are installed after it, so a compromised
node's tampering happens below its legitimate signing layer and breaks
the tag.  Receivers verify at delivery; an invalid tag is dropped with
reason ``"auth"`` and recorded as ``digest-mismatch`` trust evidence.

Two choices keep the auth path inside its <=15% peacetime overhead
budget (``benchmarks/regress.py`` bench ``security``):

* The encoding is ``repr`` of the live tuple rather than canonical
  JSON: sign and verify both see the *same in-memory message object*
  (the transport passes it by reference), and payload construction
  order is itself deterministic (seeded streams, ordered event
  kernel), so ``repr`` is reproducible across runs and resumes while
  costing a fraction of a JSON serialization.
* The MAC is keyed BLAKE2b (RFC 7693) rather than HMAC-SHA256: BLAKE2
  has native keyed mode, so one C-level hash call replaces the
  two-pass HMAC construction -- same unforgeability against the
  simulated adversary, who never sees keys, at a quarter of the cost.

Keys are short deterministic strings drawn from a seeded RNG stream, so
rotation is replayable and checkpoint/resume reproduces identical tags.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Dict, Iterable, Optional

#: Truncated tag length (hex chars).  Plenty against the simulated
#: adversary, and keeps journals/snapshots compact.
TAG_HEX_CHARS = 16


class KeyChain:
    """Deterministic per-node symmetric keys with replayable rotation."""

    def __init__(self, rng) -> None:
        self.rng = rng
        self._keys: Dict[str, str] = {}
        self._key_bytes: Dict[str, bytes] = {}
        self._rotations: Dict[str, int] = {}

    def issue(self, node: str) -> str:
        """Issue (or re-issue) a key for ``node``."""
        generation = self._rotations.get(node, 0)
        key = f"{node}:{generation}:{self.rng.getrandbits(64):016x}"
        self._keys[node] = key
        self._key_bytes[node] = key.encode("utf-8")
        return key

    def rotate(self, node: str) -> Optional[str]:
        """Rotate ``node``'s key; no-op for nodes without one."""
        if node not in self._keys:
            return None
        self._rotations[node] = self._rotations.get(node, 0) + 1
        return self.issue(node)

    def rotate_all(self, exclude: Iterable[str] = ()) -> int:
        """Rotate every key except ``exclude``; returns rotation count."""
        excluded = set(exclude)
        rotated = 0
        for node in sorted(self._keys):
            if node in excluded:
                continue
            self.rotate(node)
            rotated += 1
        return rotated

    def revoke(self, node: str) -> None:
        """Drop ``node``'s key: its signed messages stop verifying."""
        self._keys.pop(node, None)
        self._key_bytes.pop(node, None)

    def key_of(self, node: str) -> Optional[str]:
        return self._keys.get(node)

    def key_bytes_of(self, node: str) -> Optional[bytes]:
        """Pre-encoded key for the hot auth path (one encode per issue)."""
        return self._key_bytes.get(node)

    def known(self, node: str) -> bool:
        """Whether ``node`` is a registered identity (sybil filter)."""
        return node in self._keys

    @property
    def nodes(self):
        return sorted(self._keys)

    def snapshot_state(self) -> Dict[str, Any]:
        return {"keys": dict(self._keys), "rotations": dict(self._rotations)}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._keys = dict(state["keys"])
        self._key_bytes = {k: v.encode("utf-8") for k, v in self._keys.items()}
        self._rotations = {k: int(v) for k, v in state["rotations"].items()}


def _tag(key: bytes, message) -> str:
    body = repr((message.src, message.dst, message.kind, message.payload))
    return hashlib.blake2b(body.encode("utf-8"), key=key,
                           digest_size=TAG_HEX_CHARS // 2).hexdigest()


class MessageAuthenticator:
    """Signer / verifier pair over a :class:`KeyChain`.

    ``protected_kinds`` limits authentication to a set of message-kind
    prefixes (e.g. ``("swim.", "raft.")``); ``None`` protects everything.
    Unprotected kinds pass unsigned and unverified.
    """

    def __init__(self, keychain: KeyChain,
                 protected_kinds: Optional[Iterable[str]] = None) -> None:
        self.keychain = keychain
        self.protected_kinds = (tuple(sorted(protected_kinds))
                                if protected_kinds is not None else None)
        self.signed = 0
        self.verified = 0
        self.rejected = 0

    def protects(self, kind: str) -> bool:
        if self.protected_kinds is None:
            return True
        return kind.startswith(self.protected_kinds)

    # -- interceptor side --------------------------------------------------- #
    def signer(self, message) -> None:
        """Send-side interceptor: tag protected messages from known keys."""
        if not self.protects(message.kind):
            return None
        key = self.keychain.key_bytes_of(message.src)
        if key is not None:
            message.auth = _tag(key, message)
            self.signed += 1
        return None

    # -- verifier side ------------------------------------------------------ #
    def verify(self, message) -> bool:
        """Delivery-side check; True admits the message."""
        if not self.protects(message.kind):
            return True
        key = self.keychain.key_bytes_of(message.src)
        if key is None or message.auth is None:
            self.rejected += 1
            return False
        ok = hmac.compare_digest(_tag(key, message), message.auth)
        if ok:
            self.verified += 1
        else:
            self.rejected += 1
        return ok

    def snapshot_state(self) -> Dict[str, Any]:
        return {"signed": self.signed, "verified": self.verified,
                "rejected": self.rejected}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.signed = int(state["signed"])
        self.verified = int(state["verified"])
        self.rejected = int(state["rejected"])

"""The security plane: one facade wiring auth, trust and the adversary.

Lives at ``sim.context["security"]`` (mirroring the traffic registry) so
faults and the MAPE executor can reach it without import cycles.  The
plane owns:

* the :class:`~repro.security.auth.KeyChain` and the transport
  signer/verifier pair (:meth:`enable_auth`),
* the :class:`~repro.security.trust.TrustRegistry` (evidence in,
  intrusion facts out),
* the :class:`~repro.security.adversary.Adversary` controller that
  :class:`~repro.faults.models.NodeCompromiseFault` drives,
* the intrusion-response verbs the executor calls:
  :meth:`quarantine_node`, :meth:`evict_member`, :meth:`rotate_keys`.

Coordination components opt in via :meth:`attach_gossip` /
:meth:`attach_membership`, which is how eviction reaches peer lists and
membership tables.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.security.adversary import Adversary
from repro.security.auth import KeyChain, MessageAuthenticator
from repro.security.trust import TrustRegistry

#: ``sim.context`` key, mirroring the traffic registry's convention.
SECURITY_CONTEXT_KEY = "security"


class SecurityPlane:
    """Per-system security facade (auth + trust + adversary + response)."""

    def __init__(self, system: Any, threshold: float = 0.45) -> None:
        self.system = system
        self.keychain = KeyChain(system.rngs.stream("security:keys"))
        self.trust = TrustRegistry(system, threshold=threshold)
        self.adversary = Adversary(system)
        self.adversary.plane = self
        self.authenticator: Optional[MessageAuthenticator] = None
        self.quarantined: List[str] = []
        self.key_rotations = 0
        self._gossips: Dict[str, Any] = {}
        self._memberships: Dict[str, Any] = {}
        system.sim.context[SECURITY_CONTEXT_KEY] = self

    # -- wiring ------------------------------------------------------------- #
    def enable_auth(self, nodes: Iterable[str],
                    protected_kinds: Optional[Iterable[str]] = None) -> None:
        """Issue keys and install the signer/verifier on the transport.

        Must be called before any compromise so the signer interceptor
        precedes attack behaviors in the chain.
        """
        for node in sorted(nodes):
            self.keychain.issue(node)
        self.authenticator = MessageAuthenticator(
            self.keychain, protected_kinds=protected_kinds)
        network = self.system.network
        network.add_interceptor(self.authenticator.signer)
        network.verifier = self._verify

    def attach_gossip(self, gossip_node: Any, share_trust: bool = False) -> None:
        self._gossips[gossip_node.node_id] = gossip_node
        if share_trust:
            self.trust.bind_gossip(gossip_node.node_id, gossip_node)

    def attach_membership(self, protocol: Any) -> None:
        self._memberships[protocol.node_id] = protocol

    def _verify(self, message) -> bool:
        authenticator = self.authenticator
        if authenticator is None:
            return True
        if authenticator.verify(message):
            return True
        # The receiving vantage charges the claimed sender: either the
        # sender tampered below its signing layer, or someone is forging
        # its identity -- both warrant distrust of traffic "from" it.
        self.trust.record(message.dst, message.src, "digest-mismatch",
                          detail=message.kind)
        return False

    # -- intrusion response (executor verbs) -------------------------------- #
    def quarantine_node(self, node: str) -> bool:
        """Transport ACL: drop everything from/to ``node``."""
        network = self.system.network
        if network.is_quarantined(node):
            return False
        network.quarantine(node)
        self.quarantined.append(node)
        sim = self.system.sim
        if self.system.trace is not None:
            self.system.trace.emit(sim.now, "security", "quarantined",
                                   subject=node)
        if self.system.metrics is not None:
            self.system.metrics.increment("security.quarantined")
        return True

    def evict_member(self, node: str) -> bool:
        """Remove ``node`` from gossip peer lists and membership tables."""
        evicted = False
        for gossip in sorted(self._gossips):
            if node in self._gossips[gossip].peers:
                self._gossips[gossip].remove_peer(node)
                evicted = True
        for member in sorted(self._memberships):
            protocol = self._memberships[member]
            if protocol.node_id != node and protocol.evict(node):
                evicted = True
        if evicted and self.system.trace is not None:
            self.system.trace.emit(self.system.sim.now, "security", "evicted",
                                   subject=node)
        return evicted

    def rotate_keys(self, revoke: Optional[str] = None) -> int:
        """Rotate every key except ``revoke``'s, which is revoked outright."""
        if revoke is not None:
            self.keychain.revoke(revoke)
        rotated = self.keychain.rotate_all(
            exclude=(revoke,) if revoke else ())
        self.key_rotations += 1
        if self.system.trace is not None:
            self.system.trace.emit(self.system.sim.now, "security",
                                   "keys-rotated", subject=revoke,
                                   rotated=rotated)
        return rotated

    # -- reporting ----------------------------------------------------------- #
    def kpis(self, horizon: float) -> Dict[str, Any]:
        trust_scores = {}
        for node in set(self.adversary.compromised_nodes) \
                | set(self.trust.flagged) | set(self.trust.registered):
            trust_scores[node] = round(self.trust.aggregate(node), 6)
        stats = self.system.network.stats
        return {
            "compromised": self.adversary.compromised_nodes,
            "quarantined": sorted(self.quarantined),
            "distrusted": self.trust.flagged,
            "registered": self.trust.registered,
            "evidence": dict(sorted(self.trust.evidence_counts.items())),
            "trust": dict(sorted(trust_scores.items())),
            "key_rotations": self.key_rotations,
            "dropped_auth": stats.dropped_auth,
            "dropped_quarantined": stats.dropped_quarantined,
            "dropped_intercepted": stats.dropped_intercepted,
        }

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        state = {
            "keychain": self.keychain.snapshot_state(),
            "trust": self.trust.snapshot_state(),
            "adversary": self.adversary.snapshot_state(),
            "quarantined": list(self.quarantined),
            "key_rotations": self.key_rotations,
        }
        if self.authenticator is not None:
            state["authenticator"] = self.authenticator.snapshot_state()
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.keychain.restore_state(state["keychain"])
        self.trust.restore_state(state["trust"])
        self.adversary.restore_state(state["adversary"])
        self.quarantined = list(state["quarantined"])
        self.key_rotations = int(state["key_rotations"])
        if self.authenticator is not None and "authenticator" in state:
            self.authenticator.restore_state(state["authenticator"])
        network = self.system.network
        for node in self.quarantined:
            network.quarantine(node)

"""Canonical active-adversary experiments: the security plane under fire.

Three scenarios put numbers on the paper's trust/security story (§VI):
what coordination and serving actually deliver when a *member* of the
system -- not the environment -- turns hostile, and what the defended
stack (signed digests, trust scoring, MAPE intrusion response) buys back.

``byzantine-gossip``
    Five edge sites gossip a configuration key.  A compromised site
    equivocates: every peer is told a different value at an absurdly
    high version.  The *naive* mesh (no authentication) is permanently
    split-brained -- same version, same owner, different values, so no
    entry ever dominates.  The *defended* mesh signs digests: the
    tampered pushes fail verification at delivery, every drop charges
    the attacker ``digest-mismatch`` evidence, trust collapses, and the
    MAPE loop quarantines the attacker -- honest sites converge at
    clean-run speed.

``raft-equivocation``
    Five Raft nodes with two compromised voters that grant *every*
    candidate.  Naive: two honest candidates in the same term each
    count themselves plus the two liars -- quorum twice, two leaders,
    leader-safety violated.  Defended: the forged replies are rewritten
    below the signing layer, fail verification, and are dropped;
    elections need real honest votes, so at most one leader per term,
    and the liars' ``append_reply`` forgeries get them distrusted and
    quarantined.

``sybil-flood``
    An edge server serves a 140/s cohort at 200/s capacity.  A
    compromised peer site floods 600/s of validly-signed requests and
    showers SWIM with fabricated identities.  Naive: the queue fills
    with flood, goodput collapses, sybils pollute membership.
    Defended: bounded admission keeps latency sane, the flood sentry
    reads the transport's per-source counters and charges ``flood-rate``
    evidence, the membership update filter rejects unknown identities
    (charging ``sybil-join``), and the MAPE loop quarantines the
    flooder -- goodput holds at >=90% of the clean run.

Deterministic by construction: all randomness comes from named RNG
streams, attack schedules ride the fault injector, and every variant is
registered for checkpoint/resume/replay like any other scenario.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.adaptation import (
    Executor,
    IntrusionAnalyzer,
    MapeLoop,
    RuleBasedPlanner,
)
from repro.coordination.gossip import GossipNode
from repro.coordination.membership import MembershipProtocol
from repro.coordination.raft import RaftNode
from repro.core.system import IoTSystem
from repro.faults.models import NodeCompromiseFault
from repro.persistence.scenarios import PreparedRun
from repro.security.adversary import (
    FloodBehavior,
    GossipEquivocateBehavior,
    SybilJoinBehavior,
    VoteEquivocateBehavior,
)
from repro.security.plane import SecurityPlane
from repro.security.trust import FloodSentry
from repro.traffic.admission import QueueLengthAdmission
from repro.traffic.client import COMPLETIONS_SERIES, TrafficClient
from repro.traffic.loadgen import ClientCohort
from repro.traffic.server import Server, ServiceModel
from repro.traffic.stats import TrafficRegistry, windowed_rate

BYZANTINE_GOSSIP_HORIZON = 24.0
BYZANTINE_GOSSIP_VARIANTS = ("clean", "naive", "defended")
#: The contested configuration key and when the attacker turns.
_GOSSIP_KEY = "cfg"
_GOSSIP_COMPROMISE_AT = 1.0

RAFT_EQUIVOCATION_HORIZON = 12.0
RAFT_EQUIVOCATION_VARIANTS = ("naive", "defended")
_RAFT_COMPROMISE_AT = 0.2

SYBIL_FLOOD_HORIZON = 20.0
SYBIL_FLOOD_VARIANTS = ("clean", "naive", "defended")
_FLOOD_COMPROMISE_AT = 5.0
#: Goodput measurement window: opens just after the compromise so the
#: clean/naive/defended comparison covers the attacked regime.
SYBIL_FLOOD_WINDOW = (6.0, 20.0)

#: Series the byzantine-gossip agreement probe records (1.0 = all honest
#: sites agree on the contested key).
AGREEMENT_SERIES = "security.gossip.agreement"

_AGREEMENT_PERIOD = 0.5


def _security_mape(system: Any, plane: SecurityPlane, host: str,
                   scope: List[str], period: float = 1.0) -> MapeLoop:
    """The intrusion-response loop: trust facts in, quarantine out."""
    loop = MapeLoop(
        system.sim, system.network, system.fleet, host, scope,
        analyzers=[IntrusionAnalyzer()],
        planner=RuleBasedPlanner(),
        executor=Executor(system.sim, system.network, system.fleet, host,
                          system.rngs.stream(f"exec:{host}"),
                          trace=system.trace),
        period=period, metrics=system.metrics, trace=system.trace,
    )
    plane.trust.attach(loop.knowledge)
    loop.start()
    return loop


# --------------------------------------------------------------------------- #
# byzantine-gossip
# --------------------------------------------------------------------------- #
def prepare_byzantine_gossip(seed: int = 37, variant: str = "defended",
                             horizon: float = BYZANTINE_GOSSIP_HORIZON,
                             attack: bool = True,
                             authed: bool = False) -> PreparedRun:
    """Wire (but do not run) one byzantine-gossip variant.

    Five edge sites gossip ``cfg`` (written once by edge0); ``edge4``
    equivocates on it from t=1 in the naive and defended variants.
    Two bench-oriented knobs isolate costs: ``attack=False`` keeps the
    variant's full wiring but skips the compromise (the peacetime cost
    of the whole defense), and ``authed=True`` adds just the
    signer/verifier pair to a non-defended variant (the price of the
    interceptor+auth path alone, without trust hooks or the MAPE loop).
    """
    if variant not in BYZANTINE_GOSSIP_VARIANTS:
        raise ValueError(f"unknown byzantine-gossip variant {variant!r}; "
                         f"expected one of {BYZANTINE_GOSSIP_VARIANTS}")
    system = IoTSystem.with_edge_cloud_landscape(5, 1, seed=seed)
    plane = SecurityPlane(system)
    edges = list(system.edge_nodes)
    attacker = edges[-1]
    honest = [e for e in edges if e != attacker]
    defended = variant == "defended"
    if defended or authed:
        plane.enable_auth(edges, protected_kinds=("gossip.",))
    nodes: Dict[str, GossipNode] = {}
    for edge in edges:
        evidence = None
        if defended:
            def evidence(subject: str, kind: str, _obs=edge) -> None:
                plane.trust.record(_obs, subject, kind)
        node = GossipNode(
            system.sim, system.network, edge,
            [e for e in edges if e != edge],
            system.rngs.stream(f"security-gossip:{edge}"),
            period=0.5, evidence=evidence,
        )
        nodes[edge] = node
        plane.attach_gossip(node)
    nodes[edges[0]].set(_GOSSIP_KEY, "stable-config")
    for edge in edges:
        nodes[edge].start()

    loop: Optional[MapeLoop] = None
    if defended:
        loop = _security_mape(system, plane, edges[0], list(edges))

    if variant != "clean" and attack:
        system.injector.inject_at(_GOSSIP_COMPROMISE_AT, NodeCompromiseFault(
            name=f"compromise:{attacker}", device_id=attacker,
            behaviors=[GossipEquivocateBehavior(key=_GOSSIP_KEY)]))

    def probe(sim: Any) -> None:
        values = {nodes[e].get(_GOSSIP_KEY) for e in honest}
        agreed = len(values) == 1 and None not in values
        system.metrics.record(AGREEMENT_SERIES, sim.now,
                              1.0 if agreed else 0.0)
        sim.schedule(_AGREEMENT_PERIOD, probe, label="security.probe")

    system.sim.schedule(_AGREEMENT_PERIOD, probe, label="security.probe")
    aux: Dict[str, Any] = {"plane": plane, "nodes": nodes, "edges": edges,
                           "attacker": attacker, "honest": honest,
                           "variant": variant, "horizon": horizon,
                           "loop": loop}
    return PreparedRun(system=system, horizon=horizon, aux=aux)


def _converged_at(metrics: Any, horizon: float) -> Optional[float]:
    """Earliest probe time after which agreement holds through the end."""
    samples = metrics.series(AGREEMENT_SERIES).window(0.0, horizon + 1.0)
    if not samples or samples[-1][1] < 1.0:
        return None
    converged = samples[-1][0]
    for time, value in reversed(samples):
        if value < 1.0:
            break
        converged = time
    return converged


def byzantine_gossip_result(prepared: PreparedRun) -> Dict[str, Any]:
    system = prepared.system
    aux = prepared.aux
    plane: SecurityPlane = aux["plane"]
    nodes: Dict[str, GossipNode] = aux["nodes"]
    converged = _converged_at(system.metrics, aux["horizon"])
    return {
        "variant": aux["variant"],
        "attacker": aux["attacker"],
        "converged_at": converged,
        "converged": converged is not None,
        "honest_values": sorted({str(nodes[e].get(_GOSSIP_KEY))
                                 for e in aux["honest"]}),
        "quarantined": sorted(plane.quarantined),
        "distrusted": plane.trust.flagged,
        "security": plane.kpis(aux["horizon"]),
        "events": system.sim.fired_count,
    }


def run_byzantine_gossip(variant: str, seed: int = 37,
                         **params: Any) -> Dict[str, Any]:
    prepared = prepare_byzantine_gossip(seed=seed, variant=variant, **params)
    prepared.system.run(until=prepared.horizon)
    return byzantine_gossip_result(prepared)


# --------------------------------------------------------------------------- #
# raft-equivocation
# --------------------------------------------------------------------------- #
def prepare_raft_equivocation(seed: int = 41, variant: str = "defended",
                              horizon: float = RAFT_EQUIVOCATION_HORIZON
                              ) -> PreparedRun:
    """Wire (but do not run) one raft-equivocation variant.

    Five Raft nodes; the last two grant every vote and ack every append.
    Election timeouts are deliberately tight (0.8-1.1s against ~20ms
    vote RTTs) so same-term honest candidacies actually collide -- the
    collision is what the forged quorum turns into a double leader.
    """
    if variant not in RAFT_EQUIVOCATION_VARIANTS:
        raise ValueError(f"unknown raft-equivocation variant {variant!r}; "
                         f"expected one of {RAFT_EQUIVOCATION_VARIANTS}")
    system = IoTSystem.with_edge_cloud_landscape(5, 1, seed=seed)
    plane = SecurityPlane(system)
    edges = list(system.edge_nodes)
    attackers = edges[-2:]
    defended = variant == "defended"
    if defended:
        plane.enable_auth(edges, protected_kinds=("raft.",))
    nodes: Dict[str, RaftNode] = {}
    for edge in edges:
        evidence = None
        if defended:
            def evidence(subject: str, kind: str, _obs=edge) -> None:
                plane.trust.record(_obs, subject, kind)
        nodes[edge] = RaftNode(
            system.sim, system.network, edge, list(edges),
            system.rngs.stream(f"security-raft:{edge}"),
            heartbeat_interval=0.3, election_timeout=(0.8, 1.1),
            evidence=evidence,
        )
    for edge in edges:
        nodes[edge].start()
    loop: Optional[MapeLoop] = None
    if defended:
        loop = _security_mape(system, plane, edges[0], list(edges))
    for attacker in attackers:
        system.injector.inject_at(_RAFT_COMPROMISE_AT, NodeCompromiseFault(
            name=f"compromise:{attacker}", device_id=attacker,
            behaviors=[VoteEquivocateBehavior()]))
    aux: Dict[str, Any] = {"plane": plane, "nodes": nodes, "edges": edges,
                           "attackers": attackers, "variant": variant,
                           "horizon": horizon, "loop": loop}
    return PreparedRun(system=system, horizon=horizon, aux=aux)


def raft_equivocation_result(prepared: PreparedRun) -> Dict[str, Any]:
    system = prepared.system
    aux = prepared.aux
    plane: SecurityPlane = aux["plane"]
    nodes: Dict[str, RaftNode] = aux["nodes"]
    winners_by_term: Dict[int, List[str]] = {}
    for edge in aux["edges"]:
        for term in nodes[edge].won_terms:
            winners_by_term.setdefault(term, []).append(edge)
    double_wins = {term: sorted(winners) for term, winners
                   in sorted(winners_by_term.items()) if len(winners) > 1}
    leaders = sorted(e for e in aux["edges"]
                     if nodes[e].role.value == "leader")
    return {
        "variant": aux["variant"],
        "attackers": list(aux["attackers"]),
        "terms_won": {e: list(nodes[e].won_terms) for e in aux["edges"]},
        "double_wins": double_wins,
        "safety_violated": bool(double_wins),
        "elections_won": sum(nodes[e].elections_won for e in aux["edges"]),
        "leader_elected": bool(leaders),
        "final_leaders": leaders,
        "quarantined": sorted(plane.quarantined),
        "distrusted": plane.trust.flagged,
        "security": plane.kpis(aux["horizon"]),
        "events": system.sim.fired_count,
    }


def run_raft_equivocation(variant: str, seed: int = 41,
                          **params: Any) -> Dict[str, Any]:
    prepared = prepare_raft_equivocation(seed=seed, variant=variant, **params)
    prepared.system.run(until=prepared.horizon)
    return raft_equivocation_result(prepared)


# --------------------------------------------------------------------------- #
# sybil-flood
# --------------------------------------------------------------------------- #
def prepare_sybil_flood(seed: int = 43, variant: str = "defended",
                        horizon: float = SYBIL_FLOOD_HORIZON) -> PreparedRun:
    """Wire (but do not run) one sybil-flood variant.

    ``edge0`` serves a 140/s cohort at 200/s capacity; from t=5 a
    compromised ``edge1`` floods 600/s of signed requests and pushes
    fabricated SWIM identities at ``edge0``/``edge2``.
    """
    if variant not in SYBIL_FLOOD_VARIANTS:
        raise ValueError(f"unknown sybil-flood variant {variant!r}; "
                         f"expected one of {SYBIL_FLOOD_VARIANTS}")
    system = IoTSystem.with_edge_cloud_landscape(3, 2, seed=seed)
    plane = SecurityPlane(system)
    edges = list(system.edge_nodes)
    attacker = "edge1"
    defended = variant == "defended"
    if defended:
        plane.enable_auth(edges + ["d0.0"], protected_kinds=("swim.",))
    registry = TrafficRegistry(system)
    server = registry.add_server(Server(
        system.sim, system.network, "edge0",
        rng=system.rngs.stream("traffic:server:edge0"),
        concurrency=4, queue_capacity=64,
        service=ServiceModel(mean=0.02),
        metrics=system.metrics, trace=system.trace,
    ))
    if defended:
        server.admission = QueueLengthAdmission(8)
    client = registry.add_client(TrafficClient(
        system.sim, system.network, "cohort", "d0.0", "edge0",
        rng=system.rngs.stream("traffic:client"),
        timeout=0.25, metrics=system.metrics, trace=system.trace,
    ))
    cohort = registry.add_generator(ClientCohort(
        system.sim, client, users=3500, rate_per_user=0.04,
        rng=system.rngs.stream("traffic:arrivals"),
        stop=horizon,
    ))
    cohort.start()

    members: Dict[str, MembershipProtocol] = {}
    for edge in edges:
        update_filter = None
        evidence = None
        if defended:
            def evidence(subject: str, kind: str, _obs=edge) -> None:
                plane.trust.record(_obs, subject, kind)

            def update_filter(src: Optional[str], node: str, state: str,
                              incarnation: int, _obs=edge) -> bool:
                # Identity gate: only keyed (enrolled) nodes may join.
                if plane.keychain.known(node):
                    return True
                if src is not None:
                    plane.trust.record(_obs, src, "sybil-join", detail=node)
                return False
        protocol = MembershipProtocol(
            system.sim, system.network, edge,
            [e for e in edges if e != edge],
            system.rngs.stream(f"security-swim:{edge}"),
            probe_period=1.0,
            update_filter=update_filter, evidence=evidence,
            max_incarnation_jump=8 if defended else None,
        )
        members[edge] = protocol
        plane.attach_membership(protocol)
    for edge in edges:
        members[edge].start()

    sentry: Optional[FloodSentry] = None
    loop: Optional[MapeLoop] = None
    if defended:
        sentry = FloodSentry(system, plane.trust, observer="edge0",
                             period=0.5, rate_threshold=300.0,
                             exempt=["edge0"])
        sentry.start()
        loop = _security_mape(system, plane, "edge0", list(edges),
                              period=0.5)

    if variant != "clean":
        system.injector.inject_at(_FLOOD_COMPROMISE_AT, NodeCompromiseFault(
            name=f"compromise:{attacker}", device_id=attacker,
            behaviors=[
                FloodBehavior(target="edge0", rate=600.0),
                SybilJoinBehavior(targets=["edge0", "edge2"]),
            ]))

    aux: Dict[str, Any] = {"plane": plane, "registry": registry,
                           "server": server, "client": client,
                           "cohort": cohort, "members": members,
                           "attacker": attacker, "variant": variant,
                           "horizon": horizon, "sentry": sentry,
                           "loop": loop}
    return PreparedRun(system=system, horizon=horizon, aux=aux)


def sybil_flood_result(prepared: PreparedRun) -> Dict[str, Any]:
    system = prepared.system
    aux = prepared.aux
    plane: SecurityPlane = aux["plane"]
    members: Dict[str, MembershipProtocol] = aux["members"]
    start, end = SYBIL_FLOOD_WINDOW
    goodput = windowed_rate(system.metrics, COMPLETIONS_SERIES, start, end)
    sybils = sorted({m for edge in ("edge0", "edge2")
                     for m in members[edge].members()
                     if m.startswith("sybil-")})
    stats = aux["client"].stats
    per_source = system.network.stats.per_source
    return {
        "variant": aux["variant"],
        "attacker": aux["attacker"],
        "offered_rate": aux["cohort"].aggregate_rate,
        "window": [start, end],
        "goodput": goodput,
        "success_ratio": stats.success_ratio,
        "timed_out": stats.timed_out,
        "rejected": stats.rejected,
        "sybil_members": sybils,
        "sybil_count": len(sybils),
        "attacker_messages": per_source.get(aux["attacker"], [0, 0])[0],
        "quarantined": sorted(plane.quarantined),
        "distrusted": plane.trust.flagged,
        "security": plane.kpis(aux["horizon"]),
        "events": system.sim.fired_count,
    }


def run_sybil_flood(variant: str, seed: int = 43,
                    **params: Any) -> Dict[str, Any]:
    prepared = prepare_sybil_flood(seed=seed, variant=variant, **params)
    prepared.system.run(until=prepared.horizon)
    return sybil_flood_result(prepared)

"""Deterministic trust and reputation scoring.

Every honest vantage point keeps its *own* opinion: scores are indexed
``(observer, subject)`` and start at 1.0.  Direct evidence (a failed
signature check, a refuted piggyback, an impossible incarnation jump, a
flood-rate breach) multiplies the observer's score for the subject down
by a per-kind penalty.  Indirect evidence travels over the **existing
gossip protocol** -- an observer publishes its opinions as
``trust:<observer>:<subject>`` keys and peers fold received opinions in
at a discount, adopting only *worse* news so slander cannot launder a
bad node back to good standing.

When a subject's aggregate score (the minimum across observers --
observers are authenticated honest nodes here, so the most-alarmed
vantage wins) crosses the distrust threshold, the registry latches the
subject and pushes an ``intrusion`` fact into every attached MAPE
knowledge base; the :class:`~repro.adaptation.analyzer.IntrusionAnalyzer`
turns that into a ``compromised-node`` issue.

Everything is deterministic: penalties are fixed constants, evidence
arrives on the simulated event stream, and the registry snapshots its
scores for checkpoint round-trips.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

#: Multiplicative score penalty per evidence kind (score *= 1 - penalty).
EVIDENCE_PENALTIES: Dict[str, float] = {
    "digest-mismatch": 0.35,       # failed HMAC verification at delivery
    "equivocation": 0.50,          # conflicting values, same version+owner
    "refuted-piggyback": 0.30,     # a node had to refute rumors we relayed
    "impossible-incarnation": 0.40,  # sequence/incarnation jump too large
    "sybil-join": 0.40,            # introduced an unknown identity
    "conflicting-leader": 0.30,    # second leader claim in the same term
    "flood-rate": 0.45,            # per-source send rate over threshold
    "environment-untrusted": 0.20,  # passive environmental distrust flag
}

#: Gossip key prefix for shared (indirect) opinions.
TRUST_GOSSIP_PREFIX = "trust:"


class TrustRegistry:
    """Per-observer reputation scores with latched intrusion alerts."""

    def __init__(self, system: Any, threshold: float = 0.45,
                 initial: float = 1.0) -> None:
        self.system = system
        self.threshold = threshold
        self.initial = initial
        self._scores: Dict[str, Dict[str, float]] = {}
        self._flagged: set = set()
        self._registered: Dict[str, str] = {}
        self._knowledge: List[Any] = []
        self._publishers: Dict[str, Any] = {}
        self.evidence_counts: Dict[str, int] = {}

    # -- wiring ------------------------------------------------------------- #
    def attach(self, knowledge: Any) -> None:
        """Push future intrusion facts into this MAPE knowledge base."""
        if knowledge not in self._knowledge:
            self._knowledge.append(knowledge)

    def bind_gossip(self, observer: str, gossip_node: Any) -> None:
        """Publish ``observer``'s direct opinions into its gossip node and
        fold received ``trust:*`` keys back in as indirect evidence."""
        self._publishers[observer] = gossip_node
        previous = gossip_node.on_update

        def _fold(key: str, value: Any,
                  _registry=self, _observer=observer, _prev=previous) -> None:
            if _prev is not None:
                _prev(key, value)
            if not key.startswith(TRUST_GOSSIP_PREFIX):
                return
            try:
                _, reporter, subject = key.split(":", 2)
            except ValueError:
                return
            if reporter != _observer:
                _registry.record_indirect(_observer, subject,
                                          float(value.value))

        gossip_node.on_update = _fold

    def register(self, device_id: str, reason: str = "registered") -> None:
        """Track a device for KPI attribution (e.g. untrusted environment)."""
        self._registered[device_id] = reason

    @property
    def registered(self) -> Dict[str, str]:
        return dict(self._registered)

    # -- evidence ----------------------------------------------------------- #
    def record(self, observer: str, subject: str, kind: str,
               detail: Optional[str] = None, weight: float = 1.0) -> float:
        """Fold one piece of direct evidence; returns the new score."""
        penalty = EVIDENCE_PENALTIES[kind]
        opinions = self._scores.setdefault(observer, {})
        score = opinions.get(subject, self.initial)
        score *= (1.0 - penalty) ** weight
        opinions[subject] = score
        self.evidence_counts[kind] = self.evidence_counts.get(kind, 0) + 1
        sim = self.system.sim
        metrics = self.system.metrics
        if metrics is not None:
            # Sample series are digest-neutral, so per-subject trust
            # trajectories are free to record even in journaled runs.
            metrics.record(f"security.trust.{subject}", sim.now,
                           self.aggregate(subject))
        trace = self.system.trace
        if trace is not None:
            trace.emit(sim.now, "security", "evidence", subject=subject,
                       observer=observer, evidence=kind, detail=detail,
                       score=round(score, 6))
        publisher = self._publishers.get(observer)
        if publisher is not None:
            publisher.set(f"{TRUST_GOSSIP_PREFIX}{observer}:{subject}",
                          round(score, 6))
        self._check_threshold(subject)
        return score

    def record_indirect(self, observer: str, subject: str, reported: float,
                        discount: float = 0.5) -> float:
        """Fold a gossiped opinion in at a discount.

        Only *worse* news is adopted: the observer's own score can drop
        toward the reported one but never rises because of hearsay.
        """
        if observer == subject:
            return self.score(observer, subject)
        opinions = self._scores.setdefault(observer, {})
        current = opinions.get(subject, self.initial)
        blended = current - (current - reported) * discount
        if blended < current:
            opinions[subject] = blended
            self._check_threshold(subject)
        return opinions.get(subject, current)

    # -- reading ------------------------------------------------------------ #
    def score(self, observer: str, subject: str) -> float:
        return self._scores.get(observer, {}).get(subject, self.initial)

    def aggregate(self, subject: str) -> float:
        """Most-alarmed honest vantage: min over observers with an opinion."""
        opinions = [scores[subject] for scores in self._scores.values()
                    if subject in scores]
        return min(opinions) if opinions else self.initial

    def distrusted(self) -> List[str]:
        subjects = {s for scores in self._scores.values() for s in scores}
        return sorted(s for s in subjects
                      if self.aggregate(s) < self.threshold)

    def _check_threshold(self, subject: str) -> None:
        if subject in self._flagged:
            return
        score = self.aggregate(subject)
        if score >= self.threshold:
            return
        self._flagged.add(subject)
        sim = self.system.sim
        trace = self.system.trace
        if trace is not None:
            trace.emit(sim.now, "security", "distrusted", subject=subject,
                       score=round(score, 6))
        if self.system.metrics is not None:
            self.system.metrics.increment("security.distrusted")
        for knowledge in self._knowledge:
            knowledge.facts.setdefault("intrusion", []).append(
                {"subject": subject, "score": score, "at": sim.now})

    @property
    def flagged(self) -> List[str]:
        return sorted(self._flagged)

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "scores": {obs: dict(sub) for obs, sub in
                       sorted(self._scores.items())},
            "flagged": sorted(self._flagged),
            "registered": dict(self._registered),
            "evidence_counts": dict(self.evidence_counts),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._scores = {obs: dict(sub)
                        for obs, sub in state["scores"].items()}
        self._flagged = set(state["flagged"])
        self._registered = dict(state["registered"])
        self.evidence_counts = {k: int(v) for k, v in
                                state["evidence_counts"].items()}


class FloodSentry:
    """Periodic per-source send-rate monitor over ``NetworkStats.per_source``.

    Every ``period`` seconds the sentry diffs the transport's per-source
    message counters against its previous sample; any source over
    ``rate_threshold`` messages/second (and not exempt) earns
    ``flood-rate`` evidence from the sentry's observer vantage.
    """

    def __init__(self, system: Any, registry: TrustRegistry,
                 observer: str = "sentry", period: float = 1.0,
                 rate_threshold: float = 300.0,
                 exempt: Optional[List[str]] = None) -> None:
        self.system = system
        self.registry = registry
        self.observer = observer
        self.period = period
        self.rate_threshold = rate_threshold
        self.exempt = set(exempt or ())
        self._last: Dict[str, int] = {}
        self._tick_event = None

    def start(self) -> None:
        if self._tick_event is None:
            self._tick_event = self.system.sim.schedule(
                self.period, self._tick, label="security.sentry")

    def _tick(self, sim) -> None:
        per_source = self.system.network.stats.per_source
        for src in sorted(per_source):
            count = per_source[src][0]
            rate = (count - self._last.get(src, 0)) / self.period
            self._last[src] = count
            if rate > self.rate_threshold and src not in self.exempt:
                self.registry.record(self.observer, src, "flood-rate",
                                     detail=f"{rate:.0f}/s")
        self._tick_event = sim.schedule(self.period, self._tick,
                                        label="security.sentry")

    def snapshot_state(self) -> Dict[str, Any]:
        from repro.persistence.snapshot import event_ref
        return {"last": dict(self._last), "tick": event_ref(self._tick_event)}

    def restore_state(self, state: Dict[str, Any]) -> None:
        from repro.persistence.snapshot import restore_event_ref
        self._last = {k: int(v) for k, v in state["last"].items()}
        self._tick_event = restore_event_ref(
            self.system.sim, state["tick"], self._tick)

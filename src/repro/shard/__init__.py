"""``repro.shard`` — parallel multi-domain simulation (federation kernel).

Partitions an IoT landscape into administrative-domain shards, runs
each on its own :class:`~repro.simulation.kernel.Simulator` in a
separate process, and synchronizes with conservative lookahead derived
from inter-domain link latency.  Cross-shard messages flow through
explicit serializable mailboxes (:mod:`repro.shard.mailbox`) and are
the only synchronization points.

Entry points:

* :class:`~repro.shard.driver.ShardedSimulator` — windowed federation
  driver (run / resume).
* :func:`~repro.shard.replay.verify_federation` — shard-by-shard replay
  verification against the federation manifest.
* the ``smart-city-federated`` scenario
  (:mod:`repro.shard.scenario`), registered in the persistence scenario
  registry.
* CLI: ``python -m repro shard run|verify|resume``.
"""

from .driver import (
    FederationResult,
    ShardedSimulator,
    ShardStats,
    ShardWorkerError,
    federation_digest,
    lookahead_barriers,
    manifest_path,
)
from .gateway import FederationGateway, federation_keys
from .mailbox import Envelope
from .replay import replay_shard, verify_federation
from .scenario import prepare_smart_city_federated
from .worker import ShardHost, shard_paths

__all__ = [
    "Envelope",
    "FederationGateway",
    "FederationResult",
    "ShardHost",
    "ShardStats",
    "ShardWorkerError",
    "ShardedSimulator",
    "federation_digest",
    "federation_keys",
    "lookahead_barriers",
    "manifest_path",
    "prepare_smart_city_federated",
    "replay_shard",
    "shard_paths",
    "verify_federation",
]

"""The sharded federation driver: conservative-lookahead window rounds.

:class:`ShardedSimulator` partitions a federated scenario into K shards
(one per group of administrative domains), places each shard's
:class:`~repro.shard.worker.ShardHost` on a persistent worker process,
and advances the federation in uniform lookahead windows:

* window ``W`` = the minimum inter-domain link latency (the gateway's
  ``lookahead``), the classic conservative-PDES bound: any envelope
  sent during window ``j`` arrives strictly after barrier ``B_j``, so
  exchanging mailboxes only at barriers can never schedule an event in
  a receiving shard's past;
* each round, every shard runs ``run(until=B_j)`` independently, then
  the driver routes the drained outboxes to the destination shards'
  inboxes — a null-message-free LBTS round in which the barrier itself
  is the null message, keyed off the latency floor;
* mailbox exchanges are the **only** synchronization points: shards
  never share state, and within a window they advance in parallel.

Persistence mirrors the single-system runner, per shard: a WAL journal
(`shard-<i>/journal.jsonl`), an inbox journal recording every envelope
injected into the shard (`inbox.jsonl` — written by the driver *before*
the shard consumes it), and barrier checkpoints whose state is just the
window index (shards resume by deterministic window-replay, not state
restore).  ``manifest.json`` chains the per-shard digests into one
federation digest, so an N-shard run is crash-resumable and
replay-verifiable shard by shard.

Determinism: with ``shards=1`` the base spec is passed through
*unchanged* and every domain is local, so the run — journal bytes
included — is identical to ``run_scenario`` on the same spec.  For
``shards=K`` the partition (domain ``d`` → shard ``d mod K``) fixes the
event streams; ``--workers`` only picks which process hosts which
shard, so the federation digest is stable across reruns and worker
counts.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..persistence.checkpoint import Checkpoint, CheckpointError
from ..persistence.journal import truncate
from ..persistence.scenarios import ScenarioSpec
from ..persistence.snapshot import state_digest
from .worker import ShardHost, _worker_main, shard_paths

MANIFEST_VERSION = 1

#: Near-equality slack for barrier arithmetic (horizon hits only).
_EPS = 1e-9


class ShardWorkerError(RuntimeError):
    """An op failed inside a shard worker; carries the remote traceback."""

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


# --------------------------------------------------------------------------- #
# Federation files
# --------------------------------------------------------------------------- #
def manifest_path(out_dir: str) -> str:
    return os.path.join(out_dir, "manifest.json")


def federation_digest(spec_dict: Dict[str, Any], shards: int,
                      digests: List[str]) -> str:
    """The digest chain: scenario identity + per-shard digests, in order."""
    return state_digest({"scenario": spec_dict, "shards": shards,
                         "digests": list(digests)})


def _write_json_line(fh, record: Dict[str, Any]) -> None:
    fh.write(json.dumps(record, sort_keys=True,
                        separators=(",", ":")) + "\n")


def write_inbox_header(path: str, spec_dict: Dict[str, Any], shard: int,
                       shards: int, lookahead: float,
                       horizon: float) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        _write_json_line(fh, {
            "type": "fed-header", "version": MANIFEST_VERSION,
            "scenario": spec_dict, "shard": shard, "shards": shards,
            "lookahead": lookahead, "horizon": horizon,
        })


def append_inbox_record(path: str, window: int, barrier: float,
                        envelopes: List[dict]) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        _write_json_line(fh, {"type": "inbox", "window": window,
                              "barrier": barrier, "envelopes": envelopes})
        fh.flush()
        os.fsync(fh.fileno())


def read_inbox(path: str) -> Tuple[Optional[Dict[str, Any]],
                                   Dict[int, List[dict]]]:
    """Parse an inbox journal; returns (header, {window: envelopes})."""
    header: Optional[Dict[str, Any]] = None
    inboxes: Dict[int, List[dict]] = {}
    if not os.path.exists(path):
        return header, inboxes
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn final line from a crash: valid prefix ends
            if record.get("type") == "fed-header":
                header = record
            elif record.get("type") == "inbox":
                inboxes[int(record["window"])] = record["envelopes"]
    return header, inboxes


def truncate_inbox(path: str, max_window: int) -> None:
    """Drop inbox records beyond ``max_window`` (WAL recovery).

    Surviving lines are kept verbatim, so a resumed run's inbox journal
    is byte-identical to an uninterrupted run's.
    """
    if not os.path.exists(path):
        return
    kept: List[str] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                break  # torn final line from the crash
            if (record.get("type") == "inbox"
                    and int(record["window"]) > max_window):
                continue
            kept.append(stripped + "\n")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.writelines(kept)
    os.replace(tmp, path)


def lookahead_barriers(lookahead: float, horizon: float) -> List[float]:
    """Uniform window barriers ``j*W`` capped at the horizon."""
    if lookahead <= 0:
        raise ValueError("lookahead must be positive")
    barriers: List[float] = []
    j = 1
    while True:
        barrier = j * lookahead
        if barrier >= horizon - _EPS:
            barriers.append(horizon)
            return barriers
        barriers.append(barrier)
        j += 1


# --------------------------------------------------------------------------- #
# Worker handles (process-backed or in-process)
# --------------------------------------------------------------------------- #
class _ProcessWorker:
    """A persistent worker process speaking the pipe actor protocol."""

    def __init__(self) -> None:
        ctx = multiprocessing.get_context()
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(target=_worker_main, args=(child,),
                                 daemon=True)
        self._proc.start()
        child.close()

    def send(self, op: str, kwargs: Dict[str, Any]) -> None:
        self._conn.send((op, kwargs))

    def recv(self) -> Any:
        reply = self._conn.recv()
        if reply[0] == "error":
            raise ShardWorkerError(reply[1], reply[2])
        return reply[1]

    def close(self) -> None:
        try:
            if self._proc.is_alive():
                self._conn.send(("stop", {}))
                self._conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self._conn.close()
        self._proc.join(timeout=5)
        if self._proc.is_alive():
            self._proc.terminate()


class _InProcessWorker:
    """Same protocol, executed inline (``workers == 1`` fast path)."""

    def __init__(self) -> None:
        self._hosts: Dict[int, ShardHost] = {}
        self._replies: deque = deque()

    def send(self, op: str, kwargs: Dict[str, Any]) -> None:
        try:
            if op == "init":
                host = ShardHost(kwargs["spec"], kwargs["shard_id"],
                                 kwargs.get("out_dir"),
                                 kwargs.get("digest_every", 25))
                self._hosts[host.shard_id] = host
                payload = host.describe()
            else:
                host = self._hosts[kwargs.pop("shard_id")]
                payload = getattr(
                    host, {"record": "record", "window": "window",
                           "fastforward": "fastforward",
                           "checkpoint": "checkpoint",
                           "truncate": "truncate_journal",
                           "finish": "finish",
                           "abandon": "abandon"}[op])(**kwargs)
            self._replies.append(("ok", payload))
        except ShardWorkerError:
            raise
        except BaseException as exc:
            self._replies.append(("error", exc))

    def recv(self) -> Any:
        kind, payload = self._replies.popleft()
        if kind == "error":
            raise payload
        return payload

    def close(self) -> None:
        self._hosts.clear()


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass
class ShardStats:
    """Per-shard accounting across all windows of a federation run."""

    shard: int
    domains: List[str] = field(default_factory=list)
    fired: int = 0
    events: int = 0
    wall_s: float = 0.0
    sync_wait_s: float = 0.0
    outbox_peak: int = 0
    injected: int = 0
    digest: Optional[str] = None
    journal: Optional[str] = None
    counters: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        return {
            "shard": self.shard, "domains": list(self.domains),
            "events": self.events, "fired": self.fired,
            "wall_s": self.wall_s, "sync_wait_s": self.sync_wait_s,
            "mailbox_peak": self.outbox_peak, "injected": self.injected,
            "digest": self.digest,
        }


@dataclass
class FederationResult:
    """Outcome of a sharded federation run."""

    spec: ScenarioSpec
    shards: int
    workers: int
    lookahead: float
    horizon: float
    windows: int
    shard_stats: List[ShardStats]
    federation_digest: Optional[str]
    wall_s: float
    complete: bool
    out_dir: Optional[str] = None
    devices: int = 0
    resumed_from_window: Optional[int] = None

    @property
    def events(self) -> int:
        return sum(stats.events for stats in self.shard_stats)

    @property
    def sync_wait_s(self) -> float:
        return sum(stats.sync_wait_s for stats in self.shard_stats)

    def shard_rows(self) -> List[Dict[str, Any]]:
        """Per-shard rows for the observability exporters."""
        return [stats.row() for stats in self.shard_stats]

    def report_summary(self) -> Dict[str, Any]:
        """The federation summary dict the exporters consume.

        Feeds ``shards=`` on
        :func:`repro.observability.export.prometheus_text` (the
        ``repro_shard_*`` families) and
        :func:`repro.observability.export.render_html_report` (the
        "Shards" section).
        """
        return {
            "shards": self.shards,
            "workers": self.workers,
            "windows": self.windows,
            "lookahead": self.lookahead,
            "horizon": self.horizon,
            "devices": self.devices,
            "wall_s": self.wall_s,
            "federation_digest": self.federation_digest,
            "rows": self.shard_rows(),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.to_dict(),
            "shards": self.shards,
            "workers": self.workers,
            "lookahead": self.lookahead,
            "horizon": self.horizon,
            "windows": self.windows,
            "events": self.events,
            "wall_s": self.wall_s,
            "sync_wait_s": self.sync_wait_s,
            "federation_digest": self.federation_digest,
            "complete": self.complete,
            "devices": self.devices,
            "resumed_from_window": self.resumed_from_window,
            "shards_detail": self.shard_rows(),
        }


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
class ShardedSimulator:
    """Run a federated scenario as K barrier-synchronized shards.

    ``workers`` defaults to one process per shard (capped at the shard
    count); ``workers <= 0`` is a hard error — the same contract as
    :func:`repro.sweep._pool`.  ``checkpoint_every`` is a window count
    (0 disables checkpointing); ``stop_after_window`` aborts the run
    after that window completes, emulating a mid-run kill for the
    crash/resume tests and CI leg.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        shards: int,
        workers: Optional[int] = None,
        out_dir: Optional[str] = None,
        digest_every: int = 25,
        checkpoint_every: int = 0,
        stop_after_window: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers is None:
            workers = shards
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.shards = shards
        self.workers = min(workers, shards)
        self.out_dir = out_dir
        self.digest_every = digest_every
        self.checkpoint_every = checkpoint_every
        self.stop_after_window = stop_after_window
        self._workers: List[Any] = []
        self._stats: List[ShardStats] = []
        self._domains: Dict[str, int] = {}
        self.lookahead: float = 0.0
        self.horizon: float = 0.0
        self.devices: int = 0

    # -- shard specs -------------------------------------------------------- #
    def shard_spec(self, shard: int) -> ScenarioSpec:
        """The spec shard ``shard`` builds.

        With one shard the base spec passes through *unchanged* — no
        shard params, so the journal header (and therefore the journal
        bytes and digest) match an unsharded ``run_scenario`` exactly.
        """
        if self.shards == 1:
            return self.spec
        params = dict(self.spec.params)
        params["shard"] = shard
        params["shards"] = self.shards
        return ScenarioSpec(name=self.spec.name, seed=self.spec.seed,
                            params=params)

    # -- worker plumbing ---------------------------------------------------- #
    def _worker_of(self, shard: int) -> Any:
        return self._workers[shard % self.workers]

    def _start_workers(self) -> None:
        if self.workers == 1:
            self._workers = [_InProcessWorker()]
        else:
            self._workers = [_ProcessWorker() for _ in range(self.workers)]

    def _stop_workers(self) -> None:
        for worker in self._workers:
            worker.close()
        self._workers = []

    def _send_all(self, op: str, kwargs_of) -> List[Any]:
        """Pipeline ``op`` to every shard; collect replies in shard order."""
        for shard in range(self.shards):
            kwargs = dict(kwargs_of(shard))
            if op != "init":
                kwargs["shard_id"] = shard
            self._worker_of(shard).send(op, kwargs)
        return [self._worker_of(shard).recv()
                for shard in range(self.shards)]

    def _init_shards(self) -> List[Dict[str, Any]]:
        infos = self._send_all("init", lambda shard: {
            "spec": self.shard_spec(shard).to_dict(),
            "shard_id": shard,
            "out_dir": self.out_dir,
            "digest_every": self.digest_every,
        })
        lookaheads = {info["lookahead"] for info in infos}
        horizons = {info["horizon"] for info in infos}
        if len(lookaheads) != 1 or len(horizons) != 1:
            raise ValueError(
                f"shards disagree on lookahead/horizon: "
                f"{sorted(lookaheads)} / {sorted(horizons)}")
        self.lookahead = lookaheads.pop()
        self.horizon = horizons.pop()
        self.devices = infos[0].get("devices", 0)
        self._stats = [ShardStats(shard=info["shard"],
                                  domains=list(info["domains"]))
                       for info in infos]
        self._domains = {dom: info["shard"]
                         for info in infos for dom in info["domains"]}
        if self.out_dir:
            for stats in self._stats:
                stats.journal = shard_paths(self.out_dir,
                                            stats.shard)["journal"]
        return infos

    # -- manifest ----------------------------------------------------------- #
    def _write_manifest(self, windows: int, complete: bool,
                        checkpoint_window: Optional[int],
                        digests: Optional[List[str]] = None,
                        fired: Optional[List[int]] = None) -> None:
        if not self.out_dir:
            return
        document: Dict[str, Any] = {
            "version": MANIFEST_VERSION,
            "scenario": self.spec.to_dict(),
            "shards": self.shards,
            "workers": self.workers,
            "digest_every": self.digest_every,
            "checkpoint_every": self.checkpoint_every,
            "lookahead": self.lookahead,
            "horizon": self.horizon,
            "windows": windows,
            "domains": dict(sorted(self._domains.items())),
            "devices": self.devices,
            "complete": complete,
            "checkpoint_window": checkpoint_window,
            "shard_digests": digests,
            "shard_fired": fired,
            "federation_digest": (
                federation_digest(self.spec.to_dict(), self.shards, digests)
                if digests else None),
        }
        path = manifest_path(self.out_dir)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    # -- the window loop ---------------------------------------------------- #
    def _route(self, replies: List[Dict[str, Any]]) -> Dict[int, List[dict]]:
        """Route drained outboxes to their destination shards."""
        inboxes: Dict[int, List[dict]] = {i: [] for i in range(self.shards)}
        for reply in replies:
            for env in reply["outbox"]:
                inboxes[self._domains[env["dst_domain"]]].append(env)
        return inboxes

    def _run_windows(
        self,
        barriers: List[float],
        start_window: int,
        inboxes: Dict[int, List[dict]],
    ) -> Tuple[bool, Optional[int]]:
        """Drive windows ``start_window..len(barriers)``.

        Returns ``(completed, last_checkpoint_window)``; ``completed``
        is False when ``stop_after_window`` aborted the run.
        """
        total = len(barriers)
        checkpoint_window: Optional[int] = (
            start_window - 1 if start_window > 1 else None)
        for j in range(start_window, total + 1):
            barrier = barriers[j - 1]
            round_start = perf_counter()
            replies = self._send_all("window", lambda shard: {
                "barrier": barrier, "inbox": inboxes.get(shard, [])})
            round_wall = perf_counter() - round_start
            for stats, reply in zip(self._stats, replies):
                stats.fired = reply["fired"]
                stats.events += reply["events"]
                stats.wall_s += reply["wall_s"]
                stats.sync_wait_s += max(0.0, round_wall - reply["wall_s"])
                stats.outbox_peak = max(stats.outbox_peak,
                                        reply["outbox_peak"])
                stats.injected = reply["injected"]
            inboxes = self._route(replies)
            # WAL discipline: the next window's inboxes become durable
            # *before* any checkpoint that covers this window, so a
            # resume always finds the envelopes it must inject next.
            if self.out_dir and j < total:
                for shard, envelopes in inboxes.items():
                    if envelopes:
                        append_inbox_record(
                            shard_paths(self.out_dir, shard)["inbox"],
                            j + 1, barriers[j], envelopes)
            if (self.checkpoint_every and self.out_dir and j < total
                    and j % self.checkpoint_every == 0):
                cps = self._send_all("checkpoint",
                                     lambda shard: {"window": j})
                checkpoint_window = j
                self._write_manifest(
                    windows=total, complete=False, checkpoint_window=j,
                    digests=[cp["digest"] for cp in cps],
                    fired=[cp["fired"] for cp in cps])
            if self.stop_after_window == j and j < total:
                # Emulated kill: journals stay open-ended, the manifest
                # keeps whatever the last checkpoint durably recorded.
                self._send_all("abandon", lambda shard: {})
                return False, checkpoint_window
        return True, checkpoint_window

    # -- entry points ------------------------------------------------------- #
    def run(self) -> FederationResult:
        """Run the federation from t=0 to the horizon."""
        started = perf_counter()
        self._start_workers()
        try:
            self._init_shards()
            barriers = lookahead_barriers(self.lookahead, self.horizon)
            if self.out_dir:
                os.makedirs(self.out_dir, exist_ok=True)
                for shard in range(self.shards):
                    write_inbox_header(
                        shard_paths(self.out_dir, shard)["inbox"],
                        self.shard_spec(shard).to_dict(), shard,
                        self.shards, self.lookahead, self.horizon)
                self._write_manifest(windows=len(barriers), complete=False,
                                     checkpoint_window=None)
            self._send_all("record", lambda shard: {"append": False})
            completed, checkpoint_window = self._run_windows(
                barriers, 1, {i: [] for i in range(self.shards)})
            return self._finalize(barriers, completed, checkpoint_window,
                                  started, resumed_from=None)
        finally:
            self._stop_workers()

    @classmethod
    def resume(cls, out_dir: str,
               workers: Optional[int] = None) -> FederationResult:
        """Resume a killed federation run from its shard checkpoints."""
        path = manifest_path(out_dir)
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{path}: unreadable manifest: {exc}") \
                from exc
        if manifest.get("complete"):
            raise CheckpointError(f"{out_dir}: run already complete")
        window = manifest.get("checkpoint_window")
        if not window:
            raise CheckpointError(
                f"{out_dir}: no shard checkpoints to resume from")
        spec = ScenarioSpec.from_dict(manifest["scenario"])
        self = cls(
            spec, int(manifest["shards"]),
            workers=workers if workers is not None
            else int(manifest["workers"]),
            out_dir=out_dir,
            digest_every=int(manifest["digest_every"]),
            checkpoint_every=int(manifest["checkpoint_every"]),
        )
        started = perf_counter()

        # Load every shard's checkpoint; they must agree on the window
        # (the driver checkpoints all shards at the same barrier).
        checkpoints: List[Checkpoint] = []
        for shard in range(self.shards):
            cp = Checkpoint.load(shard_paths(out_dir, shard)["checkpoint"])
            if cp.state.get("window") != window:
                raise CheckpointError(
                    f"shard {shard} checkpoint is at window "
                    f"{cp.state.get('window')}, manifest says {window}")
            checkpoints.append(cp)

        # WAL recovery, driver-side: drop journal records past each
        # checkpoint barrier and inbox records past window+1 (the last
        # inboxes made durable before the checkpoint); the continued
        # run regenerates both identically.
        for shard, cp in enumerate(checkpoints):
            paths = shard_paths(out_dir, shard)
            if os.path.exists(paths["journal"]):
                truncate(paths["journal"], cp.fired)
            truncate_inbox(paths["inbox"], window + 1)

        self._start_workers()
        try:
            self._init_shards()
            barriers = lookahead_barriers(self.lookahead, self.horizon)
            recorded: Dict[int, Dict[int, List[dict]]] = {}
            for shard in range(self.shards):
                _header, inboxes = read_inbox(
                    shard_paths(out_dir, shard)["inbox"])
                recorded[shard] = inboxes
            # Deterministic fast-forward: window-replay to the barrier,
            # digest-verified against each shard's checkpoint.
            self._send_all("fastforward", lambda shard: {
                "windows": [(barriers[j - 1],
                             recorded[shard].get(j, []))
                            for j in range(1, window + 1)],
                "expect_digest": checkpoints[shard].digest,
                "expect_fired": checkpoints[shard].fired,
            })
            self._send_all("record", lambda shard: {"append": True})
            completed, checkpoint_window = self._run_windows(
                barriers, window + 1,
                {shard: recorded[shard].get(window + 1, [])
                 for shard in range(self.shards)})
            return self._finalize(barriers, completed, checkpoint_window,
                                  started, resumed_from=window)
        finally:
            self._stop_workers()

    def _finalize(self, barriers: List[float], completed: bool,
                  checkpoint_window: Optional[int], started: float,
                  resumed_from: Optional[int]) -> FederationResult:
        digest: Optional[str] = None
        if completed:
            finals = self._send_all("finish", lambda shard: {})
            for stats, final in zip(self._stats, finals):
                stats.digest = final["digest"]
                stats.fired = final["fired"]
                stats.counters = dict(final.get("counters", {}))
            digest = federation_digest(
                self.spec.to_dict(), self.shards,
                [stats.digest for stats in self._stats])
            self._write_manifest(
                windows=len(barriers), complete=True,
                checkpoint_window=checkpoint_window,
                digests=[stats.digest for stats in self._stats],
                fired=[stats.fired for stats in self._stats])
        return FederationResult(
            spec=self.spec, shards=self.shards, workers=self.workers,
            lookahead=self.lookahead, horizon=self.horizon,
            windows=len(barriers), shard_stats=list(self._stats),
            federation_digest=digest,
            wall_s=perf_counter() - started, complete=completed,
            out_dir=self.out_dir, devices=self.devices,
            resumed_from_window=resumed_from)

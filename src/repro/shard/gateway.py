"""Per-shard federation gateway: the transport end of the mailbox seam.

The gateway registers itself as ``network.remote_router`` and claims
every send between *federation endpoints* in different administrative
domains.  Claimed sends become :class:`~repro.shard.mailbox.Envelope`
records with a constant per-domain-pair latency:

* destination domain hosted on **this** shard — delivered by a plain
  ``sim.schedule_at(arrival, ...)``, i.e. exactly what an unsharded run
  does.  This keeps K=1 sharded runs byte-identical to the plain
  scenario: with one shard every domain is local and the gateway never
  touches an outbox.
* destination domain hosted **elsewhere** — appended to the outbox,
  drained by the federation driver at the next lookahead barrier and
  injected into the owning shard.  Conservative lookahead (window ``W =
  min pair latency``) guarantees ``arrival > barrier`` at injection
  time, so the receiving kernel never schedules into its past.

Cross-domain traffic is authenticated (keyed BLAKE2b, per-domain keys
derived deterministically from the scenario seed) and governed: trust
below ``min_trust`` in the :class:`~repro.governance.domains
.DomainRegistry` drops with ``dropped_policy``, and personal payloads
that the destination jurisdiction may not receive drop with
``dropped_residency``.  All federation counters are plain metric
counters — layout-independent (every cross-domain send is processed
identically whether local or remote), hence safe to include in the
digest.  Outbox/mailbox *depths* depend on the shard layout, so they
are kept as wall-stat attributes and never enter metrics.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..governance.domains import DomainRegistry, TrustLevel
from ..network.transport import Message
from .mailbox import Envelope

#: Truncated federation tag length (hex chars).
FED_TAG_HEX = 16


def federation_keys(seed: int, domains: Iterable[str]) -> Dict[str, bytes]:
    """Deterministic per-domain signing keys, identical on every shard."""
    return {
        dom: hashlib.blake2b(
            f"fed-key:{seed}:{dom}".encode("utf-8"), digest_size=16
        ).digest()
        for dom in sorted(domains)
    }


def sign_envelope(body: Tuple, key: bytes) -> str:
    return hashlib.blake2b(
        repr(body).encode("utf-8"), key=key, digest_size=16
    ).hexdigest()[:FED_TAG_HEX]


def canonical_payload(payload):
    """Normalize a payload to its canonical JSON-round-trip form.

    Envelopes cross shard boundaries as sorted-key JSON, so a payload
    dict built in a different insertion order would change ``repr`` —
    and with it the auth tag and the receiver's digested state — between
    the sending run and a mailbox replay.  Normalizing at *send* time
    makes the locally delivered object identical to the file
    round-tripped one on every path.  Cross-domain payloads must be
    JSON-serializable (they have to cross process boundaries); anything
    else raises ``TypeError`` here, at the send site, instead of at the
    barrier.
    """
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    return json.loads(json.dumps(payload, sort_keys=True))


class FederationGateway:
    """Routes inter-domain sends into mailboxes (or the local heap)."""

    def __init__(
        self,
        system,
        latency: Dict[Tuple[str, str], float],
        registry: DomainRegistry,
        local_domains: Iterable[str],
        seed: int,
        min_trust: int = int(TrustLevel.PARTNER),
    ) -> None:
        self.system = system
        self.sim = system.sim
        self.network = system.network
        self.metrics = system.metrics
        self.latency = dict(latency)
        self.registry = registry
        self.local_domains = set(local_domains)
        self.min_trust = int(min_trust)
        self.keys = federation_keys(seed, registry.names)
        # node -> administrative domain, for federation endpoints only.
        self._endpoints: Dict[str, str] = {}
        # Per-source-domain envelope sequence numbers: combined with the
        # constant pair latency these give total-order injection that is
        # FIFO per (src, dst) pair on any shard layout.
        self._seqs: Dict[str, int] = {}
        self.outbox: List[Envelope] = []
        # Wall stats (layout-dependent — kept out of metrics/digests).
        self.outbox_peak = 0
        self.injected_total = 0
        self._count = self.metrics.increment
        self.network.remote_router = self

    # -- wiring ------------------------------------------------------------ #
    def add_endpoint(self, node: str, domain: str) -> None:
        """Mark ``node`` as ``domain``'s federation endpoint."""
        self._endpoints[node] = domain

    @property
    def lookahead(self) -> float:
        """The conservative window: minimum inter-domain latency."""
        return min(self.latency.values())

    def pair_latency(self, src_domain: str, dst_domain: str) -> float:
        return self.latency[(src_domain, dst_domain)]

    # -- remote_router protocol ------------------------------------------- #
    def routes(self, src: str, dst: str) -> bool:
        src_dom = self._endpoints.get(src)
        dst_dom = self._endpoints.get(dst)
        return (
            src_dom is not None
            and dst_dom is not None
            and src_dom != dst_dom
        )

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload=None,
        size_bytes: int = 256,
        personal: bool = False,
    ) -> Envelope:
        src_dom = self._endpoints[src]
        dst_dom = self._endpoints[dst]
        payload = canonical_payload(payload)
        if not personal and isinstance(payload, dict):
            # ``Network.send`` has no personal-data flag; senders mark
            # regulated payloads in-band and the gateway lifts the mark.
            personal = bool(payload.get("_personal", False))
        seq = self._seqs.get(src_dom, 0)
        self._seqs[src_dom] = seq + 1
        sent_at = self.sim.now
        env = Envelope(
            src=src, dst=dst, kind=kind, payload=payload,
            size_bytes=size_bytes, src_domain=src_dom, dst_domain=dst_dom,
            sent_at=sent_at,
            arrival=sent_at + self.pair_latency(src_dom, dst_dom),
            seq=seq, personal=personal,
        )
        env = Envelope(
            **{**env.to_dict(),
               "auth": sign_envelope(env.body_tuple(), self.keys[src_dom])},
        )
        self._count("shard.fed.sent")
        if dst_dom in self.local_domains:
            # Same code path an unsharded run takes: deliver on the
            # local heap at the constant pair latency.
            self.sim.schedule_at(
                env.arrival, lambda _t, e=env: self.deliver(e),
                label=f"fed-deliver:{kind}",
            )
        else:
            self.outbox.append(env)
            if len(self.outbox) > self.outbox_peak:
                self.outbox_peak = len(self.outbox)
        return env

    # -- barrier exchange -------------------------------------------------- #
    def drain_outbox(self) -> List[dict]:
        """Remove and return pending outbound envelopes as dicts."""
        out = [env.to_dict() for env in self.outbox]
        self.outbox.clear()
        return out

    def inject(self, envelopes: Iterable[dict]) -> int:
        """Schedule inbound envelopes; called at a lookahead barrier.

        Envelopes are sorted by the layout-independent ``sort_key`` so
        injection order — and therefore heap tie-breaking — does not
        depend on how domains were partitioned into shards.
        """
        envs = sorted(
            (Envelope.from_dict(d) for d in envelopes),
            key=lambda env: env.sort_key,
        )
        for env in envs:
            self.sim.schedule_at(
                env.arrival, lambda _t, e=env: self.deliver(e),
                label=f"fed-deliver:{env.kind}",
            )
        self.injected_total += len(envs)
        return len(envs)

    # -- delivery ---------------------------------------------------------- #
    def deliver(self, env: Envelope) -> None:
        expected = sign_envelope(env.body_tuple(), self.keys[env.src_domain])
        if env.auth != expected:
            self._count("shard.fed.dropped_auth")
            return
        if self.registry.trust(env.dst_domain, env.src_domain) < self.min_trust:
            self._count("shard.fed.dropped_policy")
            return
        if env.personal and not self.registry.personal_export_allowed(
            env.src_domain, env.dst_domain
        ):
            self._count("shard.fed.dropped_residency")
            return
        handlers = self.network._handlers.get(env.dst, {})
        handler = handlers.get(env.kind) or handlers.get("*")
        if handler is None:
            self._count("shard.fed.dropped_unhandled")
            return
        self._count("shard.fed.delivered")
        handler(Message(
            src=env.src, dst=env.dst, kind=env.kind, payload=env.payload,
            size_bytes=env.size_bytes, sent_at=env.sent_at, auth=env.auth,
        ))

"""Serializable cross-shard mailboxes.

An :class:`Envelope` is the only thing that crosses a shard boundary:
a frozen, JSON-exact record of one inter-domain send.  Envelopes are
collected into per-window outboxes at the sending shard, exchanged at
lookahead barriers by the federation driver, and injected into the
receiving shard's kernel sorted by ``sort_key`` — a total order of
``(arrival, src_domain, seq)`` that every shard layout produces
identically, which is what makes the federation digest independent of
``--shards`` / ``--workers``.

In-order delivery per (src, dst) pair falls out of the design rather
than being enforced: inter-domain latency is a constant per domain
pair, send times within a domain are monotone (one kernel), and ``seq``
is a per-source-domain counter, so sorting by arrival-then-seq can
never reorder two envelopes that share a pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Bump when the wire shape changes; persisted in inbox journals.
ENVELOPE_VERSION = 1


@dataclass(frozen=True)
class Envelope:
    """One cross-domain message, in transferable form."""

    src: str
    dst: str
    kind: str
    payload: Any
    size_bytes: int
    src_domain: str
    dst_domain: str
    sent_at: float
    arrival: float
    seq: int
    auth: Optional[str] = None
    personal: bool = False

    @property
    def sort_key(self) -> Tuple[float, str, int]:
        """Deterministic injection order, identical on every layout."""
        return (self.arrival, self.src_domain, self.seq)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "payload": self.payload,
            "size_bytes": self.size_bytes,
            "src_domain": self.src_domain,
            "dst_domain": self.dst_domain,
            "sent_at": self.sent_at,
            "arrival": self.arrival,
            "seq": self.seq,
            "auth": self.auth,
            "personal": self.personal,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Envelope":
        return cls(
            src=data["src"],
            dst=data["dst"],
            kind=data["kind"],
            payload=data["payload"],
            size_bytes=int(data["size_bytes"]),
            src_domain=data["src_domain"],
            dst_domain=data["dst_domain"],
            sent_at=float(data["sent_at"]),
            arrival=float(data["arrival"]),
            seq=int(data["seq"]),
            auth=data.get("auth"),
            personal=bool(data.get("personal", False)),
        )

    def body_tuple(self) -> Tuple[Any, ...]:
        """The signed portion: everything except the tag itself."""
        return (
            self.src, self.dst, self.kind, repr(self.payload),
            self.size_bytes, self.src_domain, self.dst_domain,
            self.sent_at, self.arrival, self.seq, self.personal,
        )

"""Shard-by-shard replay verification of a federation run.

Each shard's WAL journal is replayed exactly the way the persistence
plane replays single-system runs — rebuild from the journaled spec,
re-drive, diff every record — except that driving is *windowed*: the
recorded inbox journal supplies the envelopes the shard received from
its peers, injected at the same lookahead barriers as in the original
run.  A shard therefore verifies in isolation, without its peers
running, which is what makes federation verification embarrassingly
parallel: :func:`verify_federation` spreads shards over the shared
:func:`repro.sweep._pool` worker pool.

The federation digest is re-chained from the replayed shard digests and
compared against the manifest, so a single bit of drift in any shard
fails the whole federation check.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional

from ..persistence.journal import read_journal
from ..persistence.replay import _first_divergence, _MemoryJournal
from ..persistence.runner import RunRecorder
from ..persistence.scenarios import ScenarioSpec, prepare
from ..persistence.snapshot import system_digest
from ..sweep import _pool
from .driver import (
    federation_digest,
    lookahead_barriers,
    manifest_path,
    read_inbox,
)
from .worker import shard_paths

import json


def replay_shard(out_dir: str, shard_id: int) -> Dict[str, Any]:
    """Replay one shard's journal against its recorded inboxes."""
    paths = shard_paths(out_dir, shard_id)
    journal = read_journal(paths["journal"])
    scenario = journal.scenario
    if not scenario or "name" not in scenario:
        raise ValueError(f"shard {shard_id}: journal has no scenario spec")
    header, inboxes = read_inbox(paths["inbox"])
    spec = ScenarioSpec.from_dict(scenario)
    prepared = prepare(spec)
    system = prepared.system
    gateway = prepared.aux["federation"]
    lookahead = (float(header["lookahead"]) if header
                 else gateway.lookahead)
    horizon = (float(header["horizon"]) if header
               else prepared.horizon)

    memory = _MemoryJournal(journal.digest_every or 25)
    recorder = RunRecorder(system, journal=memory)
    try:
        for window, barrier in enumerate(
                lookahead_barriers(lookahead, horizon), start=1):
            gateway.inject(inboxes.get(window, []))
            while system.sim.now < barrier:
                system.run(until=barrier)
            gateway.drain_outbox()
    finally:
        if journal.complete:
            recorder.finish()
        else:
            recorder.detach()

    compared = [r for r in journal.records if r.get("type") != "reconfig"]
    divergence = _first_divergence(compared, memory.records,
                                   journal.complete)
    return {
        "shard": shard_id,
        "ok": divergence is None,
        "divergence": asdict(divergence) if divergence else None,
        "records_checked": len(compared),
        "events": system.sim.fired_count,
        "digest": system_digest(system),
        "complete": journal.complete,
    }


def verify_federation(out_dir: str, workers: int = 1) -> Dict[str, Any]:
    """Replay every shard and re-chain the federation digest.

    ``workers > 1`` verifies shards in parallel over the shared sweep
    process pool (shard replays are stateless, so a plain executor fits
    — unlike the live run's barrier-synchronized actors).
    """
    with open(manifest_path(out_dir), encoding="utf-8") as fh:
        manifest = json.load(fh)
    shards = int(manifest["shards"])
    expected_digests = manifest.get("shard_digests") or []
    pool = _pool(min(workers, shards))
    try:
        if pool is not None:
            futures = [pool.submit(replay_shard, out_dir, shard)
                       for shard in range(shards)]
            reports = [future.result() for future in futures]
        else:
            reports = [replay_shard(out_dir, shard)
                       for shard in range(shards)]
    finally:
        if pool is not None:
            pool.shutdown()

    digests = [report["digest"] for report in reports]
    chained = federation_digest(manifest["scenario"], shards, digests)
    manifest_digest: Optional[str] = manifest.get("federation_digest")
    digests_match = (expected_digests == digests if expected_digests
                     else True)
    ok = (all(report["ok"] for report in reports)
          and digests_match
          and (manifest_digest is None or chained == manifest_digest))
    return {
        "ok": ok,
        "shards": shards,
        "complete": bool(manifest.get("complete")),
        "reports": reports,
        "federation_digest": chained,
        "manifest_digest": manifest_digest,
        "shard_digests_match": digests_match,
    }

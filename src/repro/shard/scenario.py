"""The ``smart-city-federated`` landscape: K domains × N devices.

Paper §VI (Fig. 4): federated inter-IoT — many administrative domains,
each with its own security keys, SLOs and jurisdiction, exchanging
governed cross-domain flows.  This builder wires one *shard's worth* of
that landscape:

* With no ``shard``/``shards`` params it builds **all** domains into a
  single system — the plain, unsharded scenario (this is also exactly
  what a ``--shards 1`` federation runs, which is why the K=1 sharded
  digest is byte-identical to the unsharded one).
* With ``shard=i, shards=K`` it builds only the domains ``d`` with
  ``d % K == i`` — one partition of the federation — while still
  registering *every* domain in the :class:`DomainRegistry` and the
  gateway's latency matrix, so governance checks and envelope routing
  see the whole federation.

Each domain is an isolated edge/cloud subgraph (domains are
deliberately **not** linked in the topology: every inter-domain byte
goes through the federation gateway, sharded or not).  Per-domain state
draws from RNG streams keyed by the domain name, so a domain behaves
identically no matter which shard hosts it.

Inter-domain latency is constant per pair: ``base_latency +
latency_step * ring_distance`` on the domain ring.  The defaults are
binary-exact floats (0.25 + k·0.125), so lookahead windows, barrier
times and the exchange period (``0.75 = 2·W``) compose without
rounding drift — periodic exchanges land *exactly* on window barriers,
permanently exercising the lookahead boundary case.

Scale: the cohort load generators are O(aggregate-rate), not
O(devices), so ``devices_per_domain=125000`` × 8 domains models a
1M-device federation at a bounded event rate (the PR-4 cohort idiom).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.system import IoTSystem
from ..devices.base import Device, DeviceClass
from ..governance.domains import (
    CCPA,
    EEA,
    GDPR,
    AdministrativeDomain,
    DomainRegistry,
    TrustLevel,
)
from ..observability.slo import SloMonitor, SloSpec
from ..persistence.scenarios import PreparedRun
from ..security.plane import SecurityPlane
from ..traffic.client import TrafficClient
from ..traffic.loadgen import ClientCohort
from ..traffic.server import Server, ServiceModel
from .gateway import FederationGateway

#: Canonical seed (see persistence.scenarios registration).
FEDERATED_SEED = 47

#: Jurisdictions cycled across domains; GDPR->CCPA personal export is
#: disallowed, so every 4th exchange demonstrates a residency drop.
_JURISDICTIONS = (GDPR, EEA, CCPA)

#: Ring offsets each domain exchanges telemetry with.
_EXCHANGE_OFFSETS = (1, 3)


def federation_latency(
    domains: List[str], base_latency: float, latency_step: float
) -> Dict[Tuple[str, str], float]:
    """Constant per-pair inter-domain latency from ring distance."""
    count = len(domains)
    latency: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(domains):
        for j, b in enumerate(domains):
            if i == j:
                continue
            ring = min(abs(i - j), count - abs(i - j))
            latency[(a, b)] = base_latency + latency_step * ring
    return latency


def prepare_smart_city_federated(
    seed: Optional[int] = None, params: Optional[Dict[str, Any]] = None
) -> PreparedRun:
    """Federated smart city: K administrative domains x N devices."""
    seed = FEDERATED_SEED if seed is None else seed
    params = dict(params or {})
    quick = bool(params.pop("quick", False))
    domains = int(params.pop("domains", 8))
    devices_per_domain = int(params.pop(
        "devices_per_domain", 20_000 if quick else 125_000))
    sites_per_domain = int(params.pop("sites_per_domain", 2))
    gateways_per_site = int(params.pop("gateways_per_site", 2))
    horizon = float(params.pop("horizon", 9.0 if quick else 30.0))
    exchange_period = float(params.pop("exchange_period", 0.75))
    rate_per_user = float(params.pop("rate_per_user", 0.02))
    max_event_rate = float(params.pop(
        "max_event_rate", 150.0 if quick else 2000.0))
    base_latency = float(params.pop("base_latency", 0.25))
    latency_step = float(params.pop("latency_step", 0.125))
    service_mean = float(params.pop("service_mean", 0.02))
    shard = params.pop("shard", None)
    shards = params.pop("shards", None)
    if params:
        raise ValueError(f"unknown smart-city-federated params: "
                         f"{sorted(params)}")
    if domains < 2:
        raise ValueError("smart-city-federated needs >= 2 domains")

    names = [f"dom{i}" for i in range(domains)]
    if shards is not None:
        shard = int(shard or 0)
        shards = int(shards)
        local = [names[i] for i in range(domains) if i % shards == shard]
    else:
        local = list(names)

    system = IoTSystem(seed=seed)

    # Whole-federation governance metadata on every shard: trust and
    # residency checks at the gateway need remote domains too.
    registry = DomainRegistry()
    for i, dom in enumerate(names):
        registry.add(AdministrativeDomain(
            dom, _JURISDICTIONS[i % len(_JURISDICTIONS)],
            base_trust=TrustLevel.TRUSTED))
    # One deliberately distrusted direction: dom0 never accepts dom1's
    # flows, so the policy-drop path is exercised in every run.
    registry.set_trust(names[0], names[1], TrustLevel.UNTRUSTED)

    # Per-domain edge/cloud subgraphs, mutually disconnected.
    for dom in local:
        cloud = f"{dom}:cloud"
        system.topology.add_node(cloud, kind="cloud")
        system.fleet.add(Device(cloud, DeviceClass.CLOUD, domain=dom,
                                location=dom))
        for s in range(sites_per_domain):
            edge = f"{dom}:edge{s}"
            system.topology.add_node(edge, kind="edge")
            system.topology.add_link(cloud, edge, profile="wan")
            system.fleet.add(Device(edge, DeviceClass.EDGE, domain=dom,
                                    location=f"{dom}/site{s}"))
            for g in range(gateways_per_site):
                node = f"{dom}:d{s}.{g}"
                system.topology.add_node(node)
                system.topology.add_link(edge, node, profile="lan")
                system.fleet.add(Device(node, DeviceClass.GATEWAY,
                                        domain=dom,
                                        location=f"{dom}/site{s}"))

    latency = federation_latency(names, base_latency, latency_step)
    gateway = FederationGateway(
        system, latency, registry, local, seed=seed,
        min_trust=int(TrustLevel.PARTNER))
    for dom in names:
        gateway.add_endpoint(f"{dom}:cloud", dom)

    # Per-domain security keys: every local federation node gets its own
    # key; only control-plane kinds are signed so cohort traffic stays on
    # the fast path.  (Cross-domain envelopes carry their own per-domain
    # federation tags — see the gateway.)
    security = SecurityPlane(system)
    protected = [f"{dom}:cloud" for dom in local] + [
        f"{dom}:edge{s}" for dom in local for s in range(sites_per_domain)]
    security.enable_auth(protected, protected_kinds=("fed.control",))

    # Per-domain serving plane: cloud service, edge-originated client,
    # and a device cohort modelling the domain's population.
    clients: Dict[str, TrafficClient] = {}
    cohorts: Dict[str, ClientCohort] = {}
    servers: Dict[str, Server] = {}
    slo_specs: List[SloSpec] = []
    for dom in local:
        servers[dom] = Server(
            system.sim, system.network, f"{dom}:cloud",
            rng=system.rngs.stream(f"fed:{dom}:server"),
            concurrency=32, queue_capacity=512,
            service=ServiceModel(mean=service_mean),
            metrics=system.metrics, trace=system.trace,
        )
        client = TrafficClient(
            system.sim, system.network, f"fed:{dom}",
            f"{dom}:edge0", f"{dom}:cloud",
            rng=system.rngs.stream(f"fed:{dom}:client"),
            timeout=0.25, metrics=system.metrics, trace=system.trace,
        )
        clients[dom] = client
        cohort = ClientCohort(
            system.sim, client, users=devices_per_domain,
            rate_per_user=rate_per_user,
            rng=system.rngs.stream(f"fed:{dom}:arrivals"),
            max_event_rate=max_event_rate, stop=horizon,
        )
        cohort.start()
        cohorts[dom] = cohort
        slo_specs.append(SloSpec(
            name=f"fed-latency:{dom}", kind="latency",
            series=f"traffic.latency:fed:{dom}",
            objective=0.2, window=5.0, percentile=95, subject=dom,
        ))

    # Cross-domain flows + receipt counters (digest-visible, per-domain
    # names so every shard layout produces the same counter keys).
    def _telemetry_rx(message):
        dom = message.dst.split(":", 1)[0]
        system.metrics.increment(f"fed.telemetry_rx:{dom}")

    def _control_rx(message):
        system.metrics.increment(f"fed.control_rx:{message.dst}")

    for dom in local:
        system.network.register(f"{dom}:cloud", "fed.telemetry",
                                _telemetry_rx)
        system.network.register(f"{dom}:edge0", "fed.control", _control_rx)

    def _make_exchanger(index: int, dom: str):
        src = f"{dom}:cloud"

        def tick(_t: float) -> None:
            # Exact barrier alignment: exchange_period is a multiple of
            # the lookahead window with binary-exact defaults, so these
            # sends are timestamped exactly at window edges.
            k = int(round(system.sim.now / exchange_period))
            for offset in _EXCHANGE_OFFSETS:
                j = (index + offset) % domains
                if j == index:
                    continue
                payload = {"k": k, "origin": dom}
                if k % 4 == 0:
                    payload["_personal"] = True
                system.network.send(src, f"dom{j}:cloud", "fed.telemetry",
                                    payload, size_bytes=512)
            system.network.send(src, f"{dom}:edge0", "fed.control",
                                {"k": k})
            nxt = system.sim.now + exchange_period
            if nxt <= horizon:
                system.sim.schedule_at(nxt, tick, label="fed-exchange")

        return tick

    for dom in local:
        index = names.index(dom)
        system.sim.schedule_at(exchange_period,
                               _make_exchanger(index, dom),
                               label="fed-exchange")

    monitor = SloMonitor(system.sim, system.metrics, slo_specs,
                         trace=system.trace, period=5.0)
    monitor.start()

    aux: Dict[str, Any] = {
        "federation": gateway,
        "registry": registry,
        "security": security,
        "monitor": monitor,
        "domains": names,
        "local_domains": local,
        "clients": clients,
        "cohorts": cohorts,
        "servers": servers,
        "devices_total": domains * devices_per_domain,
        "lookahead": gateway.lookahead,
        "horizon": horizon,
    }
    return PreparedRun(system=system, horizon=horizon, aux=aux)

"""Shard hosts and the worker-process actor protocol.

A :class:`ShardHost` owns one shard: the prepared system, its federation
gateway, and its journal.  The federation driver either keeps hosts
in-process or places them in persistent worker processes — **not** a
``ProcessPoolExecutor``: pool tasks have no worker affinity, and a
barrier-synchronized shard is a long-lived stateful actor that must stay
on the process that built it.  Each worker runs :func:`_worker_main`
over a ``multiprocessing.Pipe`` and may host several shards (shard ``i``
lives on worker ``i % W``); placement affects wall-clock only, never
results, because every exchange is routed by the driver at barriers.

Protocol: the driver sends ``(op, kwargs)`` tuples, the worker answers
``("ok", payload)`` or ``("error", repr, traceback)``.  Ops: ``init``,
``record``, ``window``, ``fastforward``, ``checkpoint``, ``finish``,
``abandon``, ``stop``.
"""

from __future__ import annotations

import os
import traceback
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..persistence.checkpoint import Checkpoint, CheckpointError
from ..persistence.journal import JournalWriter, truncate
from ..persistence.runner import RunRecorder
from ..persistence.scenarios import ScenarioSpec, prepare
from ..persistence.snapshot import system_digest


def shard_dir(out_dir: str, shard_id: int) -> str:
    return os.path.join(out_dir, f"shard-{shard_id}")


def shard_paths(out_dir: str, shard_id: int) -> Dict[str, str]:
    base = shard_dir(out_dir, shard_id)
    return {
        "dir": base,
        "journal": os.path.join(base, "journal.jsonl"),
        "inbox": os.path.join(base, "inbox.jsonl"),
        "checkpoint": os.path.join(base, "checkpoint.json"),
    }


class ShardHost:
    """One shard of a federation: system + gateway + journal."""

    def __init__(self, spec_dict: Dict[str, Any], shard_id: int,
                 out_dir: Optional[str], digest_every: int = 25) -> None:
        self.spec = ScenarioSpec.from_dict(spec_dict)
        self.shard_id = shard_id
        self.out_dir = out_dir
        self.digest_every = digest_every
        self.prepared = prepare(self.spec)
        self.system = self.prepared.system
        self.horizon = self.prepared.horizon
        self.gateway = self.prepared.aux["federation"]
        self.recorder: Optional[RunRecorder] = None
        self.windows_run = 0

    # -- introspection ------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        return {
            "shard": self.shard_id,
            "domains": list(self.prepared.aux.get("local_domains", [])),
            "lookahead": self.gateway.lookahead,
            "horizon": self.horizon,
            "devices": self.prepared.aux.get("devices_total", 0),
        }

    # -- journaling --------------------------------------------------------- #
    def record(self, append: bool = False) -> None:
        """Attach the journaling recorder (fresh journal, or append)."""
        journal = None
        if self.out_dir is not None:
            paths = shard_paths(self.out_dir, self.shard_id)
            os.makedirs(paths["dir"], exist_ok=True)
            if append:
                journal = JournalWriter(paths["journal"], append=True)
            else:
                journal = JournalWriter(paths["journal"],
                                        self.spec.to_dict(),
                                        self.digest_every)
        self.recorder = RunRecorder(self.system, journal, self.digest_every)

    # -- execution ---------------------------------------------------------- #
    def _run_to(self, barrier: float) -> None:
        # Mirrors the reference driver's _drive_to_horizon: a kernel
        # stop (harness-crash fault) must not end the window early.
        sim = self.system.sim
        while sim.now < barrier:
            self.system.run(until=barrier)

    def window(self, barrier: float, inbox: List[dict]) -> Dict[str, Any]:
        """Inject ``inbox`` at the current barrier, run to the next one."""
        started = perf_counter()
        fired_before = self.system.sim.fired_count
        self.gateway.inject(inbox)
        self._run_to(barrier)
        self.windows_run += 1
        return {
            "shard": self.shard_id,
            "outbox": self.gateway.drain_outbox(),
            "fired": self.system.sim.fired_count,
            "events": self.system.sim.fired_count - fired_before,
            "now": self.system.sim.now,
            "wall_s": perf_counter() - started,
            "outbox_peak": self.gateway.outbox_peak,
            "injected": self.gateway.injected_total,
        }

    def fastforward(self, windows: List[Tuple[float, List[dict]]],
                    expect_digest: Optional[str] = None,
                    expect_fired: Optional[int] = None) -> Dict[str, Any]:
        """Window-replay to a checkpoint barrier, without a recorder.

        Re-runs the recorded windows (each with its recorded inbox) and
        verifies the resulting digest against the checkpoint's.  This is
        the shard analogue of :func:`repro.persistence.runner
        .fast_forward`, driven by barriers instead of a step count
        because cross-shard injections must land between the same
        windows as in the original run.
        """
        started = perf_counter()
        for barrier, inbox in windows:
            self.gateway.inject(inbox)
            self._run_to(barrier)
            # Discard regenerated outbound envelopes: the original run
            # already routed them, and the peers' recorded inboxes (or
            # their own replays) hold the copies that matter.
            self.gateway.drain_outbox()
            self.windows_run += 1
        digest = system_digest(self.system)
        fired = self.system.sim.fired_count
        if expect_digest is not None and digest != expect_digest:
            raise CheckpointError(
                f"shard {self.shard_id}: digest mismatch after replaying "
                f"{len(windows)} windows (fired={fired}, expected "
                f"fired={expect_fired}); scenario code or seed has "
                f"drifted since the checkpoint")
        if expect_fired is not None and fired != expect_fired:
            raise CheckpointError(
                f"shard {self.shard_id}: replayed {fired} events to the "
                f"checkpoint barrier but the checkpoint recorded "
                f"{expect_fired}")
        return {"shard": self.shard_id, "digest": digest, "fired": fired,
                "wall_s": perf_counter() - started}

    # -- persistence -------------------------------------------------------- #
    def checkpoint(self, window: int) -> Dict[str, Any]:
        """Save this shard's barrier checkpoint (small state, no snapshot).

        Unlike :func:`repro.persistence.runner.save_checkpoint` the state
        dict is just ``{"window": j}``: shards resume by window-replay
        (deterministic rebuild + recorded inboxes), not by state
        restoration, so a full component snapshot would be dead weight —
        and gateway delivery closures in pending events are not
        snapshot-serializable anyway.
        """
        paths = shard_paths(self.out_dir, self.shard_id)
        digest = system_digest(self.system)
        checkpoint = Checkpoint(
            scenario=self.spec.to_dict(),
            time=self.system.sim.now,
            fired=self.system.sim.fired_count,
            digest=digest,
            digest_every=self.digest_every,
            state={"window": window, "shard": self.shard_id},
        )
        checkpoint.save(paths["checkpoint"])
        return {"shard": self.shard_id, "digest": digest,
                "fired": checkpoint.fired, "window": window}

    def truncate_journal(self, fired: int) -> None:
        paths = shard_paths(self.out_dir, self.shard_id)
        if os.path.exists(paths["journal"]):
            truncate(paths["journal"], fired)

    def finish(self) -> Dict[str, Any]:
        if self.recorder is not None:
            digest = self.recorder.finish()
            self.recorder = None
        else:
            digest = system_digest(self.system)
        return {"shard": self.shard_id, "digest": digest,
                "fired": self.system.sim.fired_count,
                "counters": {
                    name: value
                    for name, value in
                    sorted(self.system.metrics._counters.items())
                    if name.startswith("shard.fed.")
                }}

    def abandon(self) -> Dict[str, Any]:
        """Leave the journal open-ended (the crashed-run path)."""
        if self.recorder is not None:
            self.recorder.abandon()
            self.recorder = None
        return {"shard": self.shard_id,
                "fired": self.system.sim.fired_count}


# --------------------------------------------------------------------------- #
# Worker process loop
# --------------------------------------------------------------------------- #
def _worker_main(conn) -> None:
    """Actor loop: host shards, execute driver ops, reply over the pipe."""
    hosts: Dict[int, ShardHost] = {}
    while True:
        try:
            op, kwargs = conn.recv()
        except EOFError:
            break
        if op == "stop":
            conn.send(("ok", None))
            break
        try:
            if op == "init":
                host = ShardHost(
                    kwargs["spec"], kwargs["shard_id"],
                    kwargs.get("out_dir"),
                    kwargs.get("digest_every", 25))
                hosts[host.shard_id] = host
                payload = host.describe()
            else:
                host = hosts[kwargs.pop("shard_id")]
                if op == "record":
                    payload = host.record(**kwargs)
                elif op == "window":
                    payload = host.window(**kwargs)
                elif op == "fastforward":
                    payload = host.fastforward(**kwargs)
                elif op == "checkpoint":
                    payload = host.checkpoint(**kwargs)
                elif op == "truncate":
                    payload = host.truncate_journal(**kwargs)
                elif op == "finish":
                    payload = host.finish()
                elif op == "abandon":
                    payload = host.abandon()
                else:
                    raise ValueError(f"unknown shard op {op!r}")
            conn.send(("ok", payload))
        except BaseException as exc:  # surfaced driver-side with traceback
            conn.send(("error", repr(exc), traceback.format_exc()))
    conn.close()

"""Deterministic discrete-event simulation substrate.

This package provides the execution foundation that every other subsystem
in :mod:`repro` builds on.  The paper's experiments require observing IoT
systems *over time while disruption unfolds*; since no physical testbed is
available, we substitute a deterministic discrete-event simulator (see
DESIGN.md, section 1).

The main entry points are:

* :class:`~repro.simulation.kernel.Simulator` -- the event loop and clock.
* :class:`~repro.simulation.process.Process` -- generator-based processes
  that ``yield`` timeouts and events.
* :class:`~repro.simulation.rng.RngRegistry` -- named, independently seeded
  random streams so that adding randomness to one subsystem never perturbs
  another.
* :class:`~repro.simulation.metrics.MetricsRecorder` -- time-series metric
  capture used by the resilience assessment in :mod:`repro.core`.
* :class:`~repro.simulation.trace.TraceLog` -- structured event trace that
  runtime monitors (:mod:`repro.modeling`) consume.
"""

from repro.simulation.kernel import Event, Simulator, SimulationError
from repro.simulation.process import Process, Timeout, Waiter, AllOf, AnyOf
from repro.simulation.rng import RngRegistry
from repro.simulation.metrics import MetricsRecorder, TimeSeries
from repro.simulation.trace import TraceEvent, TraceLog

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "MetricsRecorder",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TimeSeries",
    "Timeout",
    "TraceEvent",
    "TraceLog",
    "Waiter",
]

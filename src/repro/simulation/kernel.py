"""The discrete-event simulation kernel.

The kernel is a deterministic event loop over a priority queue keyed by
``(time, priority, sequence)``.  Two events scheduled for the same instant
are executed in a stable, reproducible order: first by explicit priority,
then by insertion sequence.  This determinism is what makes every
experiment in EXPERIMENTS.md reproducible bit-for-bit from its seed.

Design notes
------------
* Time is a ``float`` of simulated seconds starting at ``0.0``.  Nothing in
  the kernel reads the wall clock.
* Callbacks receive the :class:`Simulator` so they can schedule follow-up
  work; generator-based processes (:mod:`repro.simulation.process`) are a
  convenience layer on top of plain callbacks.
* Cancellation is lazy: cancelled events stay in the heap but are skipped
  when popped, which keeps :meth:`Simulator.cancel` O(1).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.observability.instrument import Instrument


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned from :meth:`Simulator.schedule` and can be used
    as handles for cancellation.  An event is *pending* until it either
    fires or is cancelled.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "fired",
                 "label", "created")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[["Simulator"], None],
        label: str = "",
        created: float = 0.0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self.label = label
        # Simulated time the event was scheduled; time - created is its
        # queue lag.  Telemetry-only: not serialized in pending_events(),
        # so checkpoints and digests are unaffected.
        self.created = created

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state}, {self.label!r})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda s: fired.append(s.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._next_seq = 0
        self._running = False
        self._stopped = False
        self._pending = 0
        self._fired = 0
        # Optional kernel profiler (repro.observability.Instrument).  The
        # hot path pays one attribute check per event when detached.
        self.instrument: Optional["Instrument"] = None
        # Optional post-fire observer (repro.persistence.RunRecorder): called
        # with each Event after its callback returns, so journals see the
        # post-event state.  One attribute check per event when detached.
        self.on_event: Optional[Callable[[Event], None]] = None
        # Arbitrary shared context: subsystems register themselves here so
        # that loosely coupled components (e.g. fault injector and device
        # fleet) can find each other without import cycles.
        self.context: Dict[str, Any] = {}
        # Driver-level barrier actions keyed by fired-event count (see
        # at_fired()).  Deliberately not part of snapshot_state(): hooks
        # belong to the driver, not to the simulated system.
        self._fired_hooks: Dict[int, List[Callable[["Simulator"], None]]] = {}

    # ------------------------------------------------------------------ #
    # Clock and scheduling
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Lower ``priority`` values run
        first among events scheduled for the same instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, priority, self._next_seq, callback, label=label,
                      created=self._now)
        self._next_seq += 1
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._pending += 1
        return event

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event.  Returns True if it was still pending."""
        if event.pending:
            event.cancelled = True
            self._pending -= 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fired = True
            self._pending -= 1
            self._fired += 1
            instrument = self.instrument
            if instrument is not None and instrument.enabled:
                started = perf_counter()
                event.callback(self)
                instrument.record(event.label, perf_counter() - started,
                                  self._pending, self._now,
                                  self._now - event.created)
            else:
                event.callback(self)
            observer = self.on_event
            if observer is not None:
                observer(event)
            if self._fired_hooks:
                hooks = self._fired_hooks.pop(self._fired, None)
                if hooks is not None:
                    for hook in hooks:
                        hook(self)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or ``until`` is reached.

        If ``until`` is given, the clock is advanced to exactly ``until``
        even when the queue drains earlier, so that metric windows closed
        at the end of a run cover the whole horizon.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                next_time = self._peek_time()
                if until is not None and next_time is not None and next_time > until:
                    break
                if not self.step():
                    break
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    def next_event_time(self) -> Optional[float]:
        """Absolute time of the next pending event, or None when drained.

        Public peek for drivers that own their loop (the live real-time
        executor paces the kernel against the wall clock by looking at
        the next event's timestamp before stepping).
        """
        return self._peek_time()

    def at_fired(self, index: int,
                 callback: Callable[["Simulator"], None]) -> None:
        """Run ``callback`` at the fired-count barrier ``index``.

        The callback fires at a deterministic point in the event
        sequence: after event ``index``'s own callback and the
        ``on_event`` observer, before event ``index + 1`` pops.  If the
        barrier is the current fired count, the callback runs
        immediately (the driver is already between events).

        This is how live hot-loads stay replayable: the running service
        applies a reconfiguration between events at fired count N, and a
        rebuilt run (resume or replay) registers the same payload at the
        same barrier, so every kernel sequence number assigned by the
        load matches the original run's.  Hooks are driver state --
        never checkpointed, never digested.
        """
        index = int(index)
        if index < self._fired:
            raise SimulationError(
                f"barrier {index} is in the past (fired={self._fired})")
        if index == self._fired:
            callback(self)
            return
        self._fired_hooks.setdefault(index, []).append(callback)

    def _peek_time(self) -> Optional[float]:
        while self._heap:
            time, _, _, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(1): a live counter maintained on schedule/cancel/fire rather
        than a heap scan (cancellation is lazy, so the heap may hold
        already-cancelled entries).
        """
        return self._pending

    # ------------------------------------------------------------------ #
    # Persistence (repro.persistence)
    # ------------------------------------------------------------------ #
    @property
    def fired_count(self) -> int:
        """Total events executed since construction (or last restore)."""
        return self._fired

    def advance_to(self, time: float) -> None:
        """Move the clock forward without firing events.

        Used when restoring a checkpoint taken between events: the
        checkpoint's clock may sit past the last fired event but before
        the next pending one.  Rejects travel into the past or past the
        next pending event (which would reorder history).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance backwards to t={time} from t={self._now}"
            )
        next_time = self._peek_time()
        if next_time is not None and time > next_time:
            raise SimulationError(
                f"cannot advance to t={time} past pending event at t={next_time}"
            )
        self._now = float(time)

    def restore_event(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        seq: Optional[int] = None,
        label: str = "",
    ) -> Event:
        """Re-register an event during component restore.

        Passing the event's original ``seq`` (captured in the component's
        snapshot) preserves intra-instant firing order across a checkpoint
        round trip -- ties on ``(time, priority)`` break by sequence, and a
        freshly assigned sequence could reorder same-instant events
        relative to the original run.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot restore event at t={time} before current time t={self._now}"
            )
        if seq is None:
            seq = self._next_seq
            self._next_seq += 1
        elif seq >= self._next_seq:
            raise SimulationError(
                f"restored seq {seq} not below next_seq {self._next_seq}"
            )
        event = Event(time, priority, seq, callback, label=label,
                      created=self._now)
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._pending += 1
        return event

    def pending_events(self) -> List[Dict[str, Any]]:
        """Metadata of pending events, in firing order.

        Lazily-cancelled events are excluded: they will never fire, so a
        checkpoint must not record them.  Callbacks are deliberately not
        captured (closures do not serialize); on restore each component
        re-registers its own callbacks from its restored state.
        """
        out = []
        for time, priority, seq, event in sorted(self._heap, key=lambda e: e[:3]):
            if not event.cancelled:
                out.append({"t": time, "priority": priority, "seq": seq,
                            "label": event.label})
        return out

    def snapshot_state(self) -> Dict[str, Any]:
        """Serializable kernel state: clock, counters, pending-event metadata."""
        return {
            "now": self._now,
            "next_seq": self._next_seq,
            "fired": self._fired,
            "pending": self.pending_events(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore clock and counters from :meth:`snapshot_state`.

        Pending events are *not* rebuilt here -- their callbacks live in
        the components that scheduled them, so each Snapshottable
        component re-registers its own events during its ``restore_state``.
        Must be called on an idle kernel before any re-registration.
        """
        if self._heap or self._running:
            raise SimulationError("restore_state requires an idle, empty kernel")
        self._now = float(state["now"])
        self._next_seq = int(state["next_seq"])
        self._fired = int(state["fired"])
        self._stopped = False

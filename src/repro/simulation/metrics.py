"""Time-series metric recording.

The resilience assessment (:mod:`repro.core.resilience`) is computed from
metric traces: per-requirement satisfaction signals, latency samples,
availability indicators.  This module provides the shared recorder.

Two series shapes are supported:

* *sample series* -- discrete observations ``(t, value)``; summarized with
  count/mean/percentiles.
* *level series* -- a piecewise-constant signal (e.g. "device up" 0/1);
  summarized with time-weighted means over arbitrary windows, which is
  exactly what availability computations need.
"""

from __future__ import annotations

import bisect
import math
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class TimeSeries:
    """An append-only series of ``(time, value)`` observations.

    Appends must be in non-decreasing time order (the simulator clock only
    moves forward); this is enforced because out-of-order data would
    silently corrupt the window statistics.
    """

    def __init__(self, name: str, kind: str = "sample") -> None:
        if kind not in ("sample", "level"):
            raise ValueError(f"unknown series kind {kind!r}")
        self.name = name
        self.kind = kind
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time {time} precedes last {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterable[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    # -- sample statistics ---------------------------------------------- #
    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Observations with ``start <= t < end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return list(zip(self.times[lo:hi], self.values[lo:hi]))

    def mean(self, start: float = -math.inf, end: float = math.inf) -> Optional[float]:
        samples = [v for _, v in self.window(start, end)]
        if not samples:
            return None
        return sum(samples) / len(samples)

    def percentile(
        self, q: float, start: float = -math.inf, end: float = math.inf
    ) -> Optional[float]:
        """Nearest-rank percentile ``q`` in [0, 100] over a window."""
        samples = sorted(v for _, v in self.window(start, end))
        if not samples:
            return None
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q={q} out of [0, 100]")
        rank = max(0, min(len(samples) - 1, math.ceil(q / 100.0 * len(samples)) - 1))
        return samples[rank]

    def maximum(self, start: float = -math.inf, end: float = math.inf) -> Optional[float]:
        samples = [v for _, v in self.window(start, end)]
        return max(samples) if samples else None

    def minimum(self, start: float = -math.inf, end: float = math.inf) -> Optional[float]:
        samples = [v for _, v in self.window(start, end)]
        return min(samples) if samples else None

    # -- level statistics ------------------------------------------------ #
    def value_at(self, time: float) -> Optional[float]:
        """For level series: the value holding at ``time`` (last append <= t)."""
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return None
        return self.values[idx]

    def time_weighted_mean(self, start: float, end: float) -> Optional[float]:
        """Time-weighted mean of a level series over ``[start, end)``.

        Returns None if the signal has no defined value anywhere in the
        window (i.e. the first observation is after ``end``).
        """
        if self.kind != "level":
            raise ValueError(f"series {self.name!r} is not a level series")
        if end <= start:
            return None
        if not self.times or self.times[0] >= end:
            return None
        effective_start = max(start, self.times[0])
        total = 0.0
        t = effective_start
        value = self.value_at(effective_start)
        idx = bisect.bisect_right(self.times, effective_start)
        while idx < len(self.times) and self.times[idx] < end:
            total += (self.times[idx] - t) * float(value)
            t = self.times[idx]
            value = self.values[idx]
            idx += 1
        total += (end - t) * float(value)
        return total / (end - effective_start)


class MetricsRecorder:
    """A namespace of :class:`TimeSeries`, keyed by metric name.

    The recorder does not depend on the simulator; callers pass the current
    time explicitly so the module stays trivially testable.
    """

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}
        self._counters: Dict[str, float] = {}
        # Optional OverheadMeter (repro.observability.overhead): when
        # attached, record/set_level account their own wall-clock cost.
        # One ``is None`` check per call when detached.
        self.meter: Optional[Any] = None

    # -- series --------------------------------------------------------- #
    def series(self, name: str, kind: Optional[str] = None) -> TimeSeries:
        """Get or create the series ``name``.

        ``kind`` is only consulted when creating (defaulting to "sample")
        or when explicitly passed on reuse, in which case it must match.
        """
        existing = self._series.get(name)
        if existing is not None:
            if kind is not None and existing.kind != kind:
                raise ValueError(
                    f"series {name!r} exists with kind {existing.kind!r}, requested {kind!r}"
                )
            return existing
        created = TimeSeries(name, kind=kind or "sample")
        self._series[name] = created
        return created

    def record(self, name: str, time: float, value: float) -> None:
        """Append a sample observation."""
        meter = self.meter
        if meter is None:
            self.series(name, kind="sample").append(time, value)
            return
        started = perf_counter()
        self.series(name, kind="sample").append(time, value)
        meter.metrics_count += 1
        meter.metrics_wall_s += perf_counter() - started

    def set_level(self, name: str, time: float, value: float) -> None:
        """Append a level change (piecewise-constant signal)."""
        meter = self.meter
        if meter is None:
            self.series(name, kind="level").append(time, value)
            return
        started = perf_counter()
        self.series(name, kind="level").append(time, value)
        meter.metrics_count += 1
        meter.metrics_wall_s += perf_counter() - started

    def has_series(self, name: str) -> bool:
        return name in self._series

    @property
    def series_names(self) -> List[str]:
        return sorted(self._series)

    # -- counters --------------------------------------------------------#
    def increment(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counter_adder(self, name: str) -> Callable[[float], None]:
        """A bound fast-path incrementer for hot loops.

        The returned callable closes over the counter dict and key, so a
        per-event increment costs one dict store instead of an attribute
        lookup, a method call and a ``.get`` default.  Semantically
        identical to :meth:`increment` (same counter, digest-visible the
        same way).
        """
        counters = self._counters
        counters.setdefault(name, 0.0)

        def add(amount: float = 1.0) -> None:
            counters[name] = counters[name] + amount

        return add

    def total_points(self) -> int:
        """Observations retained across every series (telemetry budget)."""
        return sum(len(series) for series in self._series.values())

    @property
    def counter_names(self) -> List[str]:
        return sorted(self._counters)

    # -- bulk helpers ------------------------------------------------------ #
    def summary(
        self,
        names: Optional[Sequence[str]] = None,
        include_counters: bool = True,
    ) -> Dict[str, Dict[str, float]]:
        """Per-metric summary for reporting.

        Series entries carry ``{count, mean, min, p50, p95, p99, max}`` so
        KPI and bench reports never recompute percentiles by hand;
        counters (which historically were silently dropped) appear as
        ``{"counter": value}`` entries.  Pass ``include_counters=False``
        for the series-only view.  ``names``, when given, filters both
        series and counters.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name in names if names is not None else self.series_names:
            series = self._series.get(name)
            if series is None or len(series) == 0:
                continue
            entry: Dict[str, float] = {"count": float(len(series))}
            for key, value in (
                ("mean", series.mean()),
                ("min", series.minimum()),
                ("p50", series.percentile(50)),
                ("p95", series.percentile(95)),
                ("p99", series.percentile(99)),
                ("max", series.maximum()),
            ):
                if value is not None:
                    entry[key] = value
            out[name] = entry
        if include_counters:
            for name in names if names is not None else self.counter_names:
                if name in self._counters and name not in out:
                    out[name] = {"counter": self._counters[name]}
        return out

    def snapshot(self, names: Optional[Sequence[str]] = None) -> Dict[str, Dict]:
        """Series summaries and counters in one exportable dict."""
        return {
            "series": self.summary(names, include_counters=False),
            "counters": {
                name: self._counters[name]
                for name in (names if names is not None else self.counter_names)
                if name in self._counters
            },
        }

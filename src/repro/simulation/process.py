"""Generator-based processes on top of the event kernel.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
*wait conditions* and is resumed when they complete:

* :class:`Timeout` -- resume after a simulated delay.
* :class:`Waiter` -- a one-shot condition another component triggers (a
  message arrival, a lock release...).  ``Waiter.succeed(value)`` resumes
  the process with ``value`` as the result of the ``yield``.
* :class:`AllOf` / :class:`AnyOf` -- composite conditions.
* another :class:`Process` -- resume when that process terminates; the
  ``yield`` evaluates to its return value.

This mirrors the structure of simpy, reimplemented from scratch (offline
constraint: simpy is not installed) with only the features the rest of the
codebase needs, which keeps the kernel easy to reason about.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.simulation.kernel import SimulationError, Simulator


class Condition:
    """Base class for things a process may ``yield`` on."""

    def _subscribe(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        raise NotImplementedError


class Timeout(Condition):
    """Resume the process after ``delay`` simulated seconds."""

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value

    def _subscribe(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        sim.schedule(self.delay, lambda _s: resume(self.value), label="timeout")


class Waiter(Condition):
    """A one-shot external condition.

    A producer calls :meth:`succeed` (or :meth:`fail`) exactly once; every
    process waiting on the instance resumes.  Succeeding twice is an error
    -- use a fresh ``Waiter`` per occurrence.
    """

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[[], None]] = []
        self._sim: Optional[Simulator] = None

    @property
    def triggered(self) -> bool:
        return self._done

    def succeed(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("Waiter already triggered")
        self._done = True
        self._value = value
        self._flush()

    def fail(self, error: BaseException) -> None:
        if self._done:
            raise SimulationError("Waiter already triggered")
        self._done = True
        self._error = error
        self._flush()

    def _flush(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()

    def _subscribe(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        self._sim = sim

        def deliver() -> None:
            if self._error is not None:
                resume(self._error)
            else:
                resume(self._value)

        if self._done:
            # Already triggered: resume on the next kernel step to preserve
            # run-to-completion semantics of the currently executing event.
            sim.schedule(0.0, lambda _s: deliver(), label="waiter-immediate")
        else:
            self._callbacks.append(deliver)


class AllOf(Condition):
    """Resume once every sub-condition has completed; yields their values."""

    def __init__(self, conditions: List[Condition]) -> None:
        self.conditions = list(conditions)

    def _subscribe(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        if not self.conditions:
            sim.schedule(0.0, lambda _s: resume([]), label="allof-empty")
            return
        remaining = {"count": len(self.conditions)}
        values: List[Any] = [None] * len(self.conditions)

        def make_child(index: int) -> Callable[[Any], None]:
            def child_done(value: Any) -> None:
                values[index] = value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    resume(values)

            return child_done

        for i, condition in enumerate(self.conditions):
            condition._subscribe(sim, make_child(i))


class AnyOf(Condition):
    """Resume when the first sub-condition completes; yields (index, value)."""

    def __init__(self, conditions: List[Condition]) -> None:
        self.conditions = list(conditions)

    def _subscribe(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        if not self.conditions:
            raise SimulationError("AnyOf requires at least one condition")
        state = {"done": False}

        def make_child(index: int) -> Callable[[Any], None]:
            def child_done(value: Any) -> None:
                if not state["done"]:
                    state["done"] = True
                    resume((index, value))

            return child_done

        for i, condition in enumerate(self.conditions):
            condition._subscribe(sim, make_child(i))


class Process(Condition):
    """A running generator-based process.

    Create with ``Process(sim, generator_function(args...))`` or via
    :func:`spawn`.  The process starts on the next kernel step.  Other
    processes may ``yield`` a ``Process`` to join it.
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._finished = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._joiners: List[Callable[[Any], None]] = []
        self._interrupted: Optional[BaseException] = None
        self._current_resume_token = 0
        sim.schedule(0.0, lambda _s: self._advance(None), label=f"start:{self.name}")

    # -- public API ---------------------------------------------------- #
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        if not self._finished:
            raise SimulationError(f"process {self.name} has not finished")
        if self._error is not None:
            raise self._error
        return self._result

    def interrupt(self, reason: str = "interrupted") -> None:
        """Throw :class:`Interrupted` into the process at its next resume."""
        if not self._finished:
            self._interrupted = Interrupted(reason)
            # Invalidate whatever the process is currently waiting on.
            self._current_resume_token += 1
            self.sim.schedule(0.0, lambda _s: self._deliver_interrupt(), label=f"intr:{self.name}")

    # -- internals ------------------------------------------------------ #
    def _deliver_interrupt(self) -> None:
        if self._finished or self._interrupted is None:
            return
        error, self._interrupted = self._interrupted, None
        self._advance_throw(error)

    def _advance(self, value: Any) -> None:
        if self._finished:
            return
        try:
            if isinstance(value, BaseException):
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except Interrupted as err:
            self._finish(None, err)
            return
        self._wait_on(target)

    def _advance_throw(self, error: BaseException) -> None:
        if self._finished:
            return
        try:
            target = self._generator.throw(error)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except Interrupted as err:
            self._finish(None, err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        token = self._current_resume_token

        def resume(value: Any) -> None:
            # A stale resume (e.g. a timeout that raced an interrupt) is
            # dropped: the token changed when the interrupt invalidated it.
            if token == self._current_resume_token and not self._finished:
                self._current_resume_token += 1
                self._advance(value)

        if isinstance(target, Condition):
            target._subscribe(self.sim, resume)
        else:
            raise SimulationError(
                f"process {self.name} yielded {target!r}; expected a Condition"
            )

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self._finished = True
        self._result = result
        self._error = error
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            joiner(result)

    def _subscribe(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        if self._finished:
            sim.schedule(0.0, lambda _s: resume(self._result), label="join-immediate")
        else:
            self._joiners.append(resume)


class Interrupted(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Convenience wrapper: start ``generator`` as a process on ``sim``."""
    return Process(sim, generator, name=name)

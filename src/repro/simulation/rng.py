"""Named, independently seeded random streams.

Reproducibility discipline: a single integer seed fans out into one
``random.Random`` stream *per named subsystem* ("network", "faults",
"workload:traffic", ...).  Adding a new consumer of randomness therefore
never perturbs the draw sequence of existing subsystems, which keeps
recorded experiment outputs stable across code evolution.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List


class RngRegistry:
    """Factory of deterministic, per-name random streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("network")
    >>> b = rngs.stream("faults")
    >>> a is rngs.stream("network")  # streams are cached per name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(seed=self._derive(f"fork:{name}"))

    @property
    def stream_names(self) -> List[str]:
        return sorted(self._streams)

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        """Serializable per-stream ``Random.getstate()`` for every stream.

        The Mersenne state tuple is converted to lists so the snapshot is
        JSON-able; :meth:`restore_state` converts back.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: serialize_rng_state(rng)
                for name, rng in sorted(self._streams.items())
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore every stream's draw position from :meth:`snapshot_state`.

        Streams absent from the registry are created first (via the normal
        seed derivation) so a freshly built registry restores cleanly.
        """
        self.seed = int(state["seed"])
        for name, rng_state in state["streams"].items():
            restore_rng_state(self.stream(name), rng_state)


def serialize_rng_state(rng: random.Random) -> List[Any]:
    """``Random.getstate()`` as a JSON-able ``[version, internal, gauss]``."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def restore_rng_state(rng: random.Random, state: List[Any]) -> None:
    """Inverse of :func:`serialize_rng_state`."""
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))

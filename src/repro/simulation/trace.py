"""Structured event traces.

A :class:`TraceLog` records what *happened* during a run as a sequence of
typed events.  Runtime monitors (:mod:`repro.modeling.runtime_monitor`)
evaluate temporal properties over these traces, and the resilience
assessment extracts disruption/recovery intervals from them -- the trace is
the "model kept alive at runtime" of the paper's Section VII, in its
simplest faithful form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    category:
        Coarse class, e.g. ``"fault"``, ``"recovery"``, ``"message"``,
        ``"adaptation"``, ``"violation"``.
    name:
        Specific event name, e.g. ``"crash"``, ``"partition-heal"``.
    subject:
        The entity the event concerns (device id, link id, ...).
    attrs:
        Free-form details.
    """

    time: float
    category: str
    name: str
    subject: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> bool:
        if category is not None and self.category != category:
            return False
        if name is not None and self.name != name:
            return False
        if subject is not None and self.subject != subject:
            return False
        return True


class TraceLog:
    """Append-only event log with query helpers and live subscribers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def emit(
        self,
        time: float,
        category: str,
        name: str,
        subject: str = "",
        **attrs: Any,
    ) -> TraceEvent:
        """Record an event and notify live subscribers."""
        if self._events and time < self._events[-1].time:
            raise ValueError(
                f"trace time went backwards: {time} < {self._events[-1].time}"
            )
        event = TraceEvent(time=time, category=category, name=name, subject=subject, attrs=attrs)
        self._events.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Register a live subscriber; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    # -- queries ---------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        subject: Optional[str] = None,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> List[TraceEvent]:
        """Events matching the given filters within ``start <= t < end``."""
        return [
            e
            for e in self._events
            if start <= e.time < end and e.matches(category, name, subject)
        ]

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        return len(self.select(category=category, name=name))

    def first(
        self, category: Optional[str] = None, name: Optional[str] = None
    ) -> Optional[TraceEvent]:
        for event in self._events:
            if event.matches(category, name):
                return event
        return None

    def last(
        self, category: Optional[str] = None, name: Optional[str] = None
    ) -> Optional[TraceEvent]:
        for event in reversed(self._events):
            if event.matches(category, name):
                return event
        return None

    def intervals(
        self,
        open_name: str,
        close_name: str,
        category: Optional[str] = None,
        subject: Optional[str] = None,
        horizon: Optional[float] = None,
    ) -> List[tuple]:
        """Pair open/close events into ``(start, end)`` intervals.

        Used e.g. to turn ``partition-start`` / ``partition-heal`` events
        into disruption windows.  An unclosed interval extends to
        ``horizon`` (or the last event time if horizon is None).
        """
        end_default = horizon if horizon is not None else (
            self._events[-1].time if self._events else 0.0
        )
        out = []
        open_time: Optional[float] = None
        for event in self._events:
            if not event.matches(category=category, subject=subject):
                continue
            if event.name == open_name and open_time is None:
                open_time = event.time
            elif event.name == close_name and open_time is not None:
                out.append((open_time, event.time))
                open_time = None
        if open_time is not None:
            out.append((open_time, end_default))
        return out

"""Structured event traces.

A :class:`TraceLog` records what *happened* during a run as a sequence of
typed events.  Runtime monitors (:mod:`repro.modeling.runtime_monitor`)
evaluate temporal properties over these traces, and the resilience
assessment extracts disruption/recovery intervals from them -- the trace is
the "model kept alive at runtime" of the paper's Section VII, in its
simplest faithful form.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    category:
        Coarse class, e.g. ``"fault"``, ``"recovery"``, ``"message"``,
        ``"adaptation"``, ``"violation"``.
    name:
        Specific event name, e.g. ``"crash"``, ``"partition-heal"``.
    subject:
        The entity the event concerns (device id, link id, ...).
    attrs:
        Free-form details.
    """

    time: float
    category: str
    name: str
    subject: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> bool:
        if category is not None and self.category != category:
            return False
        if name is not None and self.name != name:
            return False
        if subject is not None and self.subject != subject:
            return False
        return True


class TraceLog:
    """Append-only event log with query helpers and live subscribers.

    With ``maxlen`` set the log becomes a ring buffer: the newest
    ``maxlen`` events are kept and older ones are dropped, so
    million-event runs hold bounded memory.  :attr:`dropped` counts the
    evicted events (and is surfaced as a counter by the observability
    exporters), so consumers can tell a truncated history from a short one.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.maxlen = maxlen
        self._events: Deque[TraceEvent] = deque(maxlen=maxlen)
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self.dropped = 0
        self.subscriber_errors = 0
        # Optional OverheadMeter (repro.observability.overhead): accounts
        # emit cost when attached; one ``is None`` check otherwise.
        self.meter: Optional[Any] = None

    def emit(
        self,
        time: float,
        category: str,
        name: str,
        subject: str = "",
        **attrs: Any,
    ) -> TraceEvent:
        """Record an event and notify live subscribers.

        Subscriber dispatch is hardened: a raising subscriber cannot
        corrupt the log (the event is already appended) nor hide the event
        from later subscribers -- every subscriber is invoked, errors are
        counted in :attr:`subscriber_errors`, and the first exception is
        re-raised after dispatch completes.
        """
        meter = self.meter
        started = perf_counter() if meter is not None else 0.0
        if self._events and time < self._events[-1].time:
            raise ValueError(
                f"trace time went backwards: {time} < {self._events[-1].time}"
            )
        event = TraceEvent(time=time, category=category, name=name, subject=subject, attrs=attrs)
        if self.maxlen is not None and len(self._events) == self.maxlen:
            self.dropped += 1
        self._events.append(event)
        first_error: Optional[BaseException] = None
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception as exc:  # noqa: BLE001 - counted and re-raised
                self.subscriber_errors += 1
                if first_error is None:
                    first_error = exc
        if meter is not None:
            meter.trace_count += 1
            meter.trace_wall_s += perf_counter() - started
        if first_error is not None:
            raise first_error
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Register a live subscriber; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    # -- queries ---------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        subject: Optional[str] = None,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> List[TraceEvent]:
        """Events matching the given filters within ``start <= t < end``."""
        return [
            e
            for e in self._events
            if start <= e.time < end and e.matches(category, name, subject)
        ]

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        return len(self.select(category=category, name=name))

    def first(
        self, category: Optional[str] = None, name: Optional[str] = None
    ) -> Optional[TraceEvent]:
        for event in self._events:
            if event.matches(category, name):
                return event
        return None

    def last(
        self, category: Optional[str] = None, name: Optional[str] = None
    ) -> Optional[TraceEvent]:
        for event in reversed(self._events):
            if event.matches(category, name):
                return event
        return None

    def intervals(
        self,
        open_name: str,
        close_name: str,
        category: Optional[str] = None,
        subject: Optional[str] = None,
        horizon: Optional[float] = None,
    ) -> List[tuple]:
        """Pair open/close events into ``(start, end)`` intervals.

        Used e.g. to turn ``partition-start`` / ``partition-heal`` events
        into disruption windows.  An unclosed interval extends to
        ``horizon`` (or the last event time if horizon is None).
        """
        end_default = horizon if horizon is not None else (
            self._events[-1].time if self._events else 0.0
        )
        out = []
        open_time: Optional[float] = None
        for event in self._events:
            if not event.matches(category=category, subject=subject):
                continue
            if event.name == open_name and open_time is None:
                open_time = event.time
            elif event.name == close_name and open_time is not None:
                out.append((open_time, event.time))
                open_time = None
        if open_time is not None:
            out.append((open_time, end_default))
        return out

"""Edge stream analytics (paper §V.B).

"'Edge analytics' leveraging stream operations before reaching remote
storage" is one of the paper's named manifestations of the edge paradigm.
This package provides a small distributed stream-processing substrate:

* :mod:`repro.streams.operators` -- typed operators: map, filter,
  tumbling-window aggregates, and sinks;
* :mod:`repro.streams.dataflow` -- a dataflow graph of operators placed
  on devices, tuples flowing between hosts over the simulated network,
  with operator re-placement on host failure.

The point the substrate makes measurable: aggregating at the edge
reduces the volume shipped upstream by the windowing factor while keeping
per-tuple latency edge-local.
"""

from repro.streams.operators import (
    FilterOperator,
    MapOperator,
    Operator,
    SinkOperator,
    SourceOperator,
    StreamTuple,
    WindowAggregateOperator,
)
from repro.streams.dataflow import Dataflow, OperatorPlacement

__all__ = [
    "Dataflow",
    "FilterOperator",
    "MapOperator",
    "Operator",
    "OperatorPlacement",
    "SinkOperator",
    "SourceOperator",
    "StreamTuple",
    "WindowAggregateOperator",
]

"""The dataflow runtime: operators placed on devices, tuples on the wire.

A :class:`Dataflow` is a linear-or-branching DAG of operators.  Each
operator is placed on a device; emitting downstream sends the tuple over
the simulated network to the next operator's current host (local
forwarding when co-located, which is the edge-analytics payoff).  Host
failure pauses the affected operators; :meth:`migrate_operator` moves an
operator (with its window state) to a new host and traffic follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.devices.fleet import DeviceFleet
from repro.network.transport import Message, Network
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.streams.operators import Operator, SinkOperator, StreamTuple


@dataclass
class OperatorPlacement:
    operator: Operator
    host: str
    migrations: int = 0


class Dataflow:
    """A named dataflow of placed operators.

    Build with :meth:`add_operator` (in topological order; ``upstream``
    names an already-added operator, None for sources), then :meth:`start`.
    External feeders push into sources via :meth:`ingest`.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        network: Network,
        fleet: DeviceFleet,
        epoch_period: float = 1.0,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.fleet = fleet
        self.epoch_period = epoch_period
        self.metrics = metrics
        self._placements: Dict[str, OperatorPlacement] = {}
        self._downstream: Dict[str, List[str]] = {}
        self._started = False
        self.tuples_shipped = 0       # tuples that crossed the network
        self.tuples_local = 0         # tuples forwarded host-locally
        self.tuples_dropped = 0       # arrived at a down host

    # -- construction --------------------------------------------------------- #
    def add_operator(self, operator: Operator, host: str,
                     upstream: Optional[str] = None) -> "Dataflow":
        if operator.name in self._placements:
            raise ValueError(f"operator {operator.name!r} already in dataflow")
        if upstream is not None and upstream not in self._placements:
            raise KeyError(f"unknown upstream operator {upstream!r}")
        if host not in self.fleet:
            raise KeyError(f"unknown host {host!r}")
        self._placements[operator.name] = OperatorPlacement(operator, host)
        self._downstream.setdefault(operator.name, [])
        if upstream is not None:
            self._downstream[upstream].append(operator.name)
        return self

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for placement in self._placements.values():
            self._register_host(placement.host)
        self._epoch_tick(self.sim)

    _registered_hosts: set

    def _register_host(self, host: str) -> None:
        # One handler per (dataflow, host); re-registration is idempotent
        # because the network keeps a single handler per (node, kind).
        self.network.register(host, f"stream:{self.name}", self._on_tuple)

    # -- data movement ----------------------------------------------------------#
    def ingest(self, operator_name: str, item: StreamTuple) -> None:
        """Push a tuple into a (source) operator from outside."""
        placement = self._require(operator_name)
        if not self._host_up(placement.host):
            self.tuples_dropped += 1
            return
        self._run_operator(operator_name, item)

    def _on_tuple(self, message: Message) -> None:
        operator_name, item = message.payload
        placement = self._placements.get(operator_name)
        if placement is None:
            return
        if placement.host != message.dst or not self._host_up(placement.host):
            # The operator moved while the tuple was in flight (or the
            # host died): re-route to its current home.
            self._forward(operator_name, item, from_host=message.dst)
            return
        self._run_operator(operator_name, item)

    def _run_operator(self, operator_name: str, item: StreamTuple) -> None:
        placement = self._placements[operator_name]
        outputs = placement.operator.process(item, self.sim.now)
        if self.metrics is not None and isinstance(placement.operator, SinkOperator):
            self.metrics.record(f"stream.latency:{self.name}", self.sim.now,
                                max(0.0, self.sim.now - item.event_time))
        for output in outputs:
            for downstream_name in self._downstream.get(operator_name, ()):
                self._forward(downstream_name, output,
                              from_host=placement.host)

    def _forward(self, operator_name: str, item: StreamTuple,
                 from_host: str) -> None:
        placement = self._placements[operator_name]
        if not self._host_up(placement.host):
            self.tuples_dropped += 1
            return
        if placement.host == from_host:
            self.tuples_local += 1
            self._run_operator(operator_name, item)
        else:
            self.tuples_shipped += 1
            self.network.send(from_host, placement.host, f"stream:{self.name}",
                              payload=(operator_name, item), size_bytes=96)

    def _epoch_tick(self, sim: Simulator) -> None:
        for name, placement in self._placements.items():
            if not self._host_up(placement.host):
                continue
            for output in placement.operator.on_epoch(sim.now):
                for downstream_name in self._downstream.get(name, ()):
                    self._forward(downstream_name, output,
                                  from_host=placement.host)
        sim.schedule(self.epoch_period, self._epoch_tick,
                     label=f"stream-epoch:{self.name}")

    # -- operations ------------------------------------------------------------ #
    def migrate_operator(self, operator_name: str, new_host: str) -> None:
        """Move an operator (keeping its state) to a new host."""
        placement = self._require(operator_name)
        if new_host not in self.fleet:
            raise KeyError(f"unknown host {new_host!r}")
        placement.host = new_host
        placement.migrations += 1
        self._register_host(new_host)

    def placement_of(self, operator_name: str) -> str:
        return self._require(operator_name).host

    def operator(self, operator_name: str) -> Operator:
        return self._require(operator_name).operator

    def reduction_ratio(self) -> float:
        """Shipped-tuple reduction achieved by edge-side operators:
        network tuples per source tuple (lower is better)."""
        source_ingest = sum(
            p.operator.processed for p in self._placements.values()
            if not any(p.operator.name in d for d in self._downstream.values())
        )
        if source_ingest == 0:
            return 0.0
        return self.tuples_shipped / source_ingest

    def _require(self, operator_name: str) -> OperatorPlacement:
        placement = self._placements.get(operator_name)
        if placement is None:
            raise KeyError(f"no operator {operator_name!r} in dataflow {self.name!r}")
        return placement

    def _host_up(self, host: str) -> bool:
        try:
            return self.fleet.get(host).up
        except KeyError:
            return False

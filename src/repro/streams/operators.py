"""Stream operators.

Operators are small, single-responsibility processing stages.  Each
receives :class:`StreamTuple` values and emits zero or more downstream.
Stateful operators (windows) keep their state locally; on migration the
dataflow moves the operator object, so in-flight window contents survive
host changes (state handoff -- the interesting part of operator
mobility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class StreamTuple:
    """One datum in flight: value plus event-time and origin metadata."""

    value: Any
    event_time: float
    key: str = ""
    origin: str = ""


class Operator:
    """Base operator: ``process`` returns the tuples to emit downstream.

    ``on_epoch(now)`` is called periodically by the dataflow runtime and
    may also emit (used by time-based windows to close on silence).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.processed = 0
        self.emitted = 0

    def process(self, item: StreamTuple, now: float) -> List[StreamTuple]:
        raise NotImplementedError

    def on_epoch(self, now: float) -> List[StreamTuple]:
        return []


class SourceOperator(Operator):
    """Entry point: external feeders call :meth:`ingest`; the dataflow
    wires the returned tuples downstream."""

    def process(self, item: StreamTuple, now: float) -> List[StreamTuple]:
        self.processed += 1
        self.emitted += 1
        return [item]


class MapOperator(Operator):
    """Stateless 1->1 transformation of tuple values."""

    def __init__(self, name: str, fn: Callable[[Any], Any]) -> None:
        super().__init__(name)
        self.fn = fn

    def process(self, item: StreamTuple, now: float) -> List[StreamTuple]:
        self.processed += 1
        self.emitted += 1
        return [StreamTuple(self.fn(item.value), item.event_time,
                            key=item.key, origin=item.origin)]


class FilterOperator(Operator):
    """Drops tuples whose value fails the predicate."""

    def __init__(self, name: str, predicate: Callable[[Any], bool]) -> None:
        super().__init__(name)
        self.predicate = predicate

    def process(self, item: StreamTuple, now: float) -> List[StreamTuple]:
        self.processed += 1
        if self.predicate(item.value):
            self.emitted += 1
            return [item]
        return []


class WindowAggregateOperator(Operator):
    """Tumbling event-time window with a fold-style aggregate.

    Parameters
    ----------
    window:
        Window length in seconds of event time.
    init / fold / finish:
        ``state = fold(state, value)`` per tuple starting from ``init()``;
        ``finish(state, count)`` produces the emitted aggregate when the
        window closes (on the first tuple belonging to a later window, or
        on an epoch tick past the window end).
    """

    def __init__(
        self,
        name: str,
        window: float,
        init: Callable[[], Any],
        fold: Callable[[Any, Any], Any],
        finish: Callable[[Any, int], Any],
        key_by: bool = False,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        super().__init__(name)
        self.window = window
        self.init = init
        self.fold = fold
        self.finish = finish
        self.key_by = key_by
        # key -> (window_start, state, count); un-keyed streams use "".
        self._open: Dict[str, tuple] = {}

    def _window_start(self, event_time: float) -> float:
        return (event_time // self.window) * self.window

    def process(self, item: StreamTuple, now: float) -> List[StreamTuple]:
        self.processed += 1
        key = item.key if self.key_by else ""
        start = self._window_start(item.event_time)
        out: List[StreamTuple] = []
        current = self._open.get(key)
        if current is not None and current[0] < start:
            out.append(self._close(key))
        if key not in self._open:
            self._open[key] = (start, self.init(), 0)
        window_start, state, count = self._open[key]
        self._open[key] = (window_start, self.fold(state, item.value), count + 1)
        return out

    def on_epoch(self, now: float) -> List[StreamTuple]:
        out = []
        for key, (start, _state, _count) in list(self._open.items()):
            if now >= start + self.window:
                out.append(self._close(key))
        return out

    def _close(self, key: str) -> StreamTuple:
        start, state, count = self._open.pop(key)
        self.emitted += 1
        return StreamTuple(self.finish(state, count), start + self.window,
                           key=key, origin=self.name)

    @classmethod
    def mean(cls, name: str, window: float, key_by: bool = False) -> "WindowAggregateOperator":
        """Convenience: windowed arithmetic mean."""
        return cls(
            name, window,
            init=lambda: 0.0,
            fold=lambda total, value: total + value,
            finish=lambda total, count: total / count if count else 0.0,
            key_by=key_by,
        )

    @classmethod
    def count(cls, name: str, window: float, key_by: bool = False) -> "WindowAggregateOperator":
        return cls(
            name, window,
            init=lambda: 0,
            fold=lambda total, _value: total,
            finish=lambda _total, count: count,
            key_by=key_by,
        )


class SinkOperator(Operator):
    """Terminal stage: collects results (and optionally forwards to a
    user callback)."""

    def __init__(self, name: str,
                 on_result: Optional[Callable[[StreamTuple], None]] = None) -> None:
        super().__init__(name)
        self.on_result = on_result
        self.results: List[StreamTuple] = []

    def process(self, item: StreamTuple, now: float) -> List[StreamTuple]:
        self.processed += 1
        self.results.append(item)
        if self.on_result is not None:
            self.on_result(item)
        return []

"""Parameter sweeps over experiments.

Benchmark deliverables need parameter sweeps with seed replication; this
module provides the small harness: a grid of named parameters, N seeds
per cell, a run function producing a scalar metric, and per-cell
mean/min/max aggregation.

The harness is crash-resilient: pass ``checkpoint_path`` and completed
cells are journaled to disk every ``checkpoint_every`` cells, so a
killed sweep resumes where it left off (cells already on disk are not
re-run).  The checkpoint embeds a fingerprint of the grid, seed list and
seed parameter; resuming against a different sweep definition is
refused rather than silently mixing results.

Seed replication can be parallelized with ``workers=N`` (a
``ProcessPoolExecutor``; the ``run`` callable must then be picklable,
i.e. a module-level function).  Results are collected in submission
order, so the output is bit-identical to a serial run.

>>> result = run_sweep(
...     run=lambda rate, seed: simulate(rate, seed),
...     grid={"rate": [0.01, 0.05]},
...     seeds=[1, 2, 3],
... )
>>> result.cell(rate=0.01).mean
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

SWEEP_CHECKPOINT_VERSION = 1


@dataclass
class SweepCell:
    """Aggregated metric values for one parameter combination.

    The statistics are ``None`` for a cell with no recorded values --
    an empty cell is "no data", not "a metric of zero".
    """

    params: Dict[str, Any]
    values: List[float] = field(default_factory=list)

    @property
    def mean(self) -> Optional[float]:
        return sum(self.values) / len(self.values) if self.values else None

    @property
    def minimum(self) -> Optional[float]:
        return min(self.values) if self.values else None

    @property
    def maximum(self) -> Optional[float]:
        return max(self.values) if self.values else None

    @property
    def spread(self) -> Optional[float]:
        if not self.values:
            return None
        return max(self.values) - min(self.values)


@dataclass
class SweepResult:
    """All cells of a sweep, addressable by parameter values."""

    grid_keys: Tuple[str, ...]
    cells: List[SweepCell]

    def cell(self, **params: Any) -> SweepCell:
        for candidate in self.cells:
            if all(candidate.params.get(k) == v for k, v in params.items()):
                return candidate
        raise KeyError(f"no cell matching {params}")

    def series(self, over: str, **fixed: Any) -> List[Tuple[Any, float]]:
        """Mean metric as a function of one parameter, others fixed.

        Cells without data are omitted (their mean is ``None``).
        """
        out = []
        for candidate in self.cells:
            if all(candidate.params.get(k) == v for k, v in fixed.items()):
                if candidate.mean is not None:
                    out.append((candidate.params[over], candidate.mean))
        return sorted(out, key=lambda pair: pair[0])

    def rows(self) -> List[List[Any]]:
        """Tabular dump: one row per cell (params..., mean, min, max)."""
        return [
            [cell.params[k] for k in self.grid_keys]
            + [cell.mean, cell.minimum, cell.maximum]
            for cell in self.cells
        ]


def _cell_key(params: Dict[str, Any]) -> str:
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def _fingerprint(grid: Dict[str, Sequence[Any]], seeds: Sequence[int],
                 seed_param: str) -> str:
    payload = json.dumps(
        {"grid": {k: list(v) for k, v in grid.items()},
         "seeds": list(seeds), "seed_param": seed_param},
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _load_checkpoint(path: str, fingerprint: str) -> Dict[str, List[float]]:
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != SWEEP_CHECKPOINT_VERSION:
        raise ValueError(
            f"sweep checkpoint version {payload.get('version')} "
            f"not supported (expected {SWEEP_CHECKPOINT_VERSION})"
        )
    if payload.get("fingerprint") != fingerprint:
        raise ValueError(
            "sweep checkpoint does not match this sweep definition "
            "(grid, seeds or seed parameter changed); refusing to resume "
            f"from {path}"
        )
    return {k: [float(v) for v in vals]
            for k, vals in payload.get("cells", {}).items()}


def _save_checkpoint(path: str, fingerprint: str,
                     done: Dict[str, List[float]]) -> None:
    payload = {
        "version": SWEEP_CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "cells": done,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)


def _run_cell_serial(run: Callable[..., float], params: Dict[str, Any],
                     seeds: Sequence[int], seed_param: str) -> List[float]:
    return [float(run(**params, **{seed_param: seed})) for seed in seeds]


def _pool(workers: int) -> Optional[ProcessPoolExecutor]:
    """Validated process-pool construction shared across parallel runners.

    Sweeps, the sharded-federation driver and shard replay verification
    all spread work over processes; this is the one place worker counts
    are validated and pools are built.  ``workers == 1`` returns ``None``
    (callers run serially in-process); ``workers <= 0`` is a hard error
    rather than a silent serial fallback.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return None
    return ProcessPoolExecutor(max_workers=workers)


def run_sweep(
    run: Callable[..., float],
    grid: Dict[str, Sequence[Any]],
    seeds: Sequence[int],
    seed_param: str = "seed",
    workers: int = 1,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 1,
) -> SweepResult:
    """Run ``run(**params, seed=s)`` for every grid cell x seed.

    ``run`` must return the scalar metric for that execution.  Cells are
    produced in deterministic grid order (itertools.product over the
    given key order) regardless of ``workers``; with ``workers > 1`` the
    per-seed replications are dispatched to a process pool and collected
    in submission order, so the result is identical to the serial one.

    With ``checkpoint_path``, completed cells are persisted every
    ``checkpoint_every`` cells and skipped on a later invocation with
    the same grid/seeds -- a crashed sweep resumes instead of starting
    over.
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    if not seeds:
        raise ValueError("need at least one seed")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    keys = tuple(grid.keys())
    combos = [dict(zip(keys, combo))
              for combo in itertools.product(*(grid[k] for k in keys))]

    fingerprint = _fingerprint(grid, seeds, seed_param)
    done: Dict[str, List[float]] = {}
    if checkpoint_path is not None:
        done = _load_checkpoint(checkpoint_path, fingerprint)

    if workers < 1:
        raise ValueError("workers must be >= 1")
    pending = [params for params in combos if _cell_key(params) not in done]
    executor = _pool(workers) if pending else None
    try:
        since_save = 0
        for params in pending:
            if executor is not None:
                futures = [
                    executor.submit(run, **params, **{seed_param: seed})
                    for seed in seeds
                ]
                values = [float(f.result()) for f in futures]
            else:
                values = _run_cell_serial(run, params, seeds, seed_param)
            done[_cell_key(params)] = values
            since_save += 1
            if checkpoint_path is not None and since_save >= checkpoint_every:
                _save_checkpoint(checkpoint_path, fingerprint, done)
                since_save = 0
        if checkpoint_path is not None and since_save:
            _save_checkpoint(checkpoint_path, fingerprint, done)
    finally:
        if executor is not None:
            executor.shutdown()

    cells = [SweepCell(params=dict(params), values=list(done[_cell_key(params)]))
             for params in combos]
    return SweepResult(grid_keys=keys, cells=cells)

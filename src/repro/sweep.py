"""Parameter sweeps over experiments.

Benchmark deliverables need parameter sweeps with seed replication; this
module provides the small harness: a grid of named parameters, N seeds
per cell, a run function producing a scalar metric, and per-cell
mean/min/max aggregation.

>>> result = run_sweep(
...     run=lambda rate, seed: simulate(rate, seed),
...     grid={"rate": [0.01, 0.05]},
...     seeds=[1, 2, 3],
... )
>>> result.cell(rate=0.01).mean
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple


@dataclass
class SweepCell:
    """Aggregated metric values for one parameter combination."""

    params: Dict[str, Any]
    values: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


@dataclass
class SweepResult:
    """All cells of a sweep, addressable by parameter values."""

    grid_keys: Tuple[str, ...]
    cells: List[SweepCell]

    def cell(self, **params: Any) -> SweepCell:
        for candidate in self.cells:
            if all(candidate.params.get(k) == v for k, v in params.items()):
                return candidate
        raise KeyError(f"no cell matching {params}")

    def series(self, over: str, **fixed: Any) -> List[Tuple[Any, float]]:
        """Mean metric as a function of one parameter, others fixed."""
        out = []
        for candidate in self.cells:
            if all(candidate.params.get(k) == v for k, v in fixed.items()):
                out.append((candidate.params[over], candidate.mean))
        return sorted(out, key=lambda pair: pair[0])

    def rows(self) -> List[List[Any]]:
        """Tabular dump: one row per cell (params..., mean, min, max)."""
        return [
            [cell.params[k] for k in self.grid_keys]
            + [cell.mean, cell.minimum, cell.maximum]
            for cell in self.cells
        ]


def run_sweep(
    run: Callable[..., float],
    grid: Dict[str, Sequence[Any]],
    seeds: Sequence[int],
    seed_param: str = "seed",
) -> SweepResult:
    """Run ``run(**params, seed=s)`` for every grid cell x seed.

    ``run`` must return the scalar metric for that execution.  Cells are
    produced in deterministic grid order (itertools.product over the
    given key order).
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    if not seeds:
        raise ValueError("need at least one seed")
    keys = tuple(grid.keys())
    cells = []
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        cell = SweepCell(params=dict(params))
        for seed in seeds:
            cell.values.append(float(run(**params, **{seed_param: seed})))
        cells.append(cell)
    return SweepResult(grid_keys=keys, cells=cells)

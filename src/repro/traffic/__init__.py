"""Request serving, load generation at scale, and client-side resilience.

The paper's vision is systems that keep *delivering service to users*
under disruption (§II-§IV); this package adds the missing serving layer:

* :mod:`~repro.traffic.loadgen` -- open-loop (Poisson/deterministic) and
  closed-loop (think-time) generators, plus :class:`ClientCohort`, which
  represents thousands-to-millions of users as weighted batched arrivals
  so kernel event counts scale with aggregate rate, not population.
* :mod:`~repro.traffic.server` -- bounded-queue servers on devices,
  cloudlets or the cloud, with configurable concurrency, service-time
  distributions, admission control and backpressure signals MAPE loops
  can act on.
* :mod:`~repro.traffic.patterns` -- deadline/timeout, retry with
  jittered exponential backoff under a retry budget, hedged requests and
  a three-state circuit breaker: the client-side mechanism families of
  the resilience-survey taxonomy.
* :mod:`~repro.traffic.scenarios` -- the canonical ``overload`` and
  ``retry-storm`` experiments, registered with the persistence scenario
  registry and exposed through ``python -m repro traffic``.

Everything draws randomness from named :class:`~repro.simulation.rng.RngRegistry`
streams and snapshots its dynamic state, so traffic runs are
deterministic, checkpointable and bit-identical on resume.
"""

from repro.traffic.admission import AdmissionPolicy, QueueLengthAdmission
from repro.traffic.client import TrafficClient
from repro.traffic.loadgen import (
    ClientCohort,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    cohort_batching,
)
from repro.traffic.patterns import (
    CircuitBreaker,
    HedgePolicy,
    RetryBudget,
    RetryPolicy,
)
from repro.traffic.request import REQUEST_KIND, Request
from repro.traffic.server import Server, ServiceModel
from repro.traffic.stats import TrafficRegistry, TrafficStats, windowed_rate

__all__ = [
    "AdmissionPolicy",
    "QueueLengthAdmission",
    "TrafficClient",
    "ClientCohort",
    "ClosedLoopGenerator",
    "OpenLoopGenerator",
    "cohort_batching",
    "CircuitBreaker",
    "HedgePolicy",
    "RetryBudget",
    "RetryPolicy",
    "REQUEST_KIND",
    "Request",
    "Server",
    "ServiceModel",
    "TrafficRegistry",
    "TrafficStats",
    "windowed_rate",
]

"""Server-side admission control: refuse early, fail fast.

Admission policies decide whether an arriving request may even enter the
queue.  Rejecting at the door costs one cheap reply; accepting a request
the server cannot finish before the client's deadline costs the full
service time *and* still fails the client -- the mechanism behind
overload collapse.  Policies are intentionally tiny state machines so
MAPE actions can tighten them at runtime (load shedding).
"""

from __future__ import annotations

from typing import Any, Dict


class AdmissionPolicy:
    """Interface: may this request enter the server's queue?"""

    def admit(self, server: Any, payload: Dict[str, Any]) -> bool:
        raise NotImplementedError

    def tighten(self, factor: float) -> None:
        """Shed load: shrink whatever this policy bounds by ``factor``."""

    def snapshot_state(self) -> Dict[str, Any]:
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        pass


class QueueLengthAdmission(AdmissionPolicy):
    """Admit only while the queue is shorter than ``limit``.

    A queue of length L at service rate mu imposes ~L/mu of waiting on
    the last admitted request; choosing ``limit`` so that L/mu stays
    below the client timeout is what keeps goodput at capacity during
    overload instead of serving only requests that have already timed
    out.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self._initial_limit = limit

    def admit(self, server: Any, payload: Dict[str, Any]) -> bool:
        return server.queue_depth < self.limit

    def tighten(self, factor: float) -> None:
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        self.limit = max(1, int(self.limit * factor))

    def relax(self) -> None:
        self.limit = self._initial_limit

    def snapshot_state(self) -> Dict[str, Any]:
        return {"limit": self.limit, "initial_limit": self._initial_limit}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.limit = int(state["limit"])
        self._initial_limit = int(state["initial_limit"])

"""The client side of the request lifecycle.

A :class:`TrafficClient` owns *calls*: a call is submitted once, may
fan out into several attempts (retries, hedges), and ends in exactly one
of completed / failed / short-circuited.  All the resilience patterns
compose here, in the order real clients apply them:

1. circuit breaker gate (fast-fail without touching the network),
2. attempt timeout bounded by the overall call deadline,
3. retry with jittered exponential backoff, spending the retry budget,
4. speculative hedging after a tail-latency delay.

Counters go through both the local :class:`~repro.traffic.stats.TrafficStats`
(weighted, KPI-facing) and ``metrics.increment`` (digest-visible, so any
divergence in traffic outcomes fails the persistence digest check).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.network.transport import Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog
from repro.traffic.patterns import (
    CircuitBreaker,
    HedgePolicy,
    RetryBudget,
    RetryPolicy,
)
from repro.traffic.request import REQUEST_KIND, reply_kind
from repro.traffic.stats import TrafficStats

#: Sample series carrying weighted completions, for windowed goodput.
COMPLETIONS_SERIES = "traffic.completions"

OnComplete = Callable[[int, bool], None]


class TrafficClient:
    """Issues requests from ``origin`` to ``target`` with resilience patterns."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        origin: str,
        target: str,
        rng: random.Random,
        timeout: float = 0.25,
        deadline: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        budget: Optional[RetryBudget] = None,
        breaker: Optional[CircuitBreaker] = None,
        hedge: Optional[HedgePolicy] = None,
        metrics: Optional[MetricsRecorder] = None,
        trace: Optional[TraceLog] = None,
        on_complete: Optional[OnComplete] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if deadline is not None and deadline < timeout:
            raise ValueError("deadline must be >= the attempt timeout")
        self.sim = sim
        self.network = network
        self.name = name
        self.origin = origin
        self.target = target   # mutable: MAPE re-route actions repoint it
        self.rng = rng
        self.timeout = timeout
        self.deadline = deadline
        self.retry = retry
        self.budget = budget
        self.breaker = breaker
        self.hedge = hedge
        self.metrics = metrics
        self.trace = trace
        self.on_complete = on_complete
        self.stats = TrafficStats()
        self._next_id = 0
        self._open: Dict[int, Dict[str, Any]] = {}
        network.register(origin, reply_kind(name), self._on_reply)

    # -- submission --------------------------------------------------------- #
    def submit(self, weight: int = 1, priority: int = 0) -> int:
        """Start one call of ``weight`` user-requests; returns its id."""
        now = self.sim.now
        req_id = self._next_id
        self._next_id += 1
        self.stats.offered += weight
        self._count("offered", weight)
        if self.breaker is not None and not self.breaker.allow(now):
            # Fast-fail: no network traffic, no open call, no events.
            self.stats.short_circuited += weight
            self._count("short_circuited", weight)
            self._completed(req_id, False)
            return req_id
        if self.budget is not None:
            self.budget.deposit(weight)
        call = {
            "req_id": req_id,
            "weight": weight,
            "priority": priority,
            "created": now,
            "deadline_at": None if self.deadline is None else now + self.deadline,
            "attempt": 1,
            "hedges_sent": 0,
            "timeout_event": None,
            "hedge_event": None,
            "retry_event": None,
            # Telemetry only (excluded from snapshot_state, digest-neutral):
            # the request span carries the critical-path segment breakdown
            # read by repro.observability.profile, and attempt_started
            # anchors the current attempt for that decomposition.
            "span": None,
            "attempt_started": now,
        }
        spans = self.network.spans
        if spans is not None:
            call["span"] = spans.start(
                f"request:{self.name}", "request", now,
                req_id=req_id, weight=weight, target=self.target)
        self._open[req_id] = call
        self._send_attempt(call)
        return req_id

    def _send_attempt(self, call: Dict[str, Any],
                      destination: Optional[str] = None,
                      hedged: bool = False) -> None:
        now = self.sim.now
        if not hedged:
            call["attempt_started"] = now
        payload = {
            "req_id": call["req_id"],
            "client": self.name,
            "origin": self.origin,
            "created_at": call["created"],
            "weight": call["weight"],
            "priority": call["priority"],
            "attempt": call["attempt"],
            "hedged": hedged,
        }
        self.network.send(self.origin, destination or self.target,
                          REQUEST_KIND, payload=payload)
        if hedged:
            return  # the primary attempt's timeout still governs the call
        timeout_at = now + self.timeout
        if call["deadline_at"] is not None:
            timeout_at = min(timeout_at, call["deadline_at"])
        call["timeout_event"] = self.sim.schedule(
            max(0.0, timeout_at - now),
            lambda _s, r=call["req_id"], a=call["attempt"]: self._on_timeout(r, a),
            label=f"traffic.timeout:{self.name}",
        )
        if (self.hedge is not None and call["attempt"] == 1
                and call["hedges_sent"] < self.hedge.max_hedges
                and self.hedge.delay < timeout_at - now):
            call["hedge_event"] = self.sim.schedule(
                self.hedge.delay,
                lambda _s, r=call["req_id"]: self._on_hedge(r),
                label=f"traffic.hedge:{self.name}",
            )

    # -- outcomes ----------------------------------------------------------- #
    def _on_reply(self, message) -> None:
        payload = message.payload
        call = self._open.get(payload["req_id"])
        weight = int(payload["weight"])
        if call is None or call["retry_event"] is not None:
            # The call already ended (or gave up on this attempt and is
            # waiting out a backoff): a reply now is wasted server work.
            self.stats.late += weight
            self._count("late", weight)
            return
        now = self.sim.now
        if payload["status"] == "ok":
            latency = now - call["created"]
            self.stats.completed += weight
            self.stats.latency.observe(latency, weight)
            self._count("completed", weight)
            if self.metrics is not None:
                self.metrics.record(COMPLETIONS_SERIES, now, float(weight))
                self.metrics.record(f"traffic.latency:{self.name}", now, latency)
            if self.breaker is not None:
                self.breaker.record_success(now)
            span = call["span"]
            if span is not None:
                # Segment decomposition: retry covers everything before the
                # answering attempt started (backoffs + failed attempts),
                # queue/service come from the server's reply, and network is
                # the residual -- so the four segments sum to the measured
                # end-to-end latency by construction.
                queue_s = float(payload.get("queued_for", 0.0))
                service_s = float(payload.get("service_time", 0.0))
                retry_s = call["attempt_started"] - call["created"]
                network_s = max(0.0, latency - retry_s - queue_s - service_s)
                self.network.spans.finish(
                    span, now, status="ok",
                    queue_s=queue_s, service_s=service_s,
                    network_s=network_s, retry_s=retry_s,
                    attempts=call["attempt"] + call["hedges_sent"])
            self._close(call)
            self._completed(call["req_id"], True)
        else:  # rejected at the server door
            self.stats.rejected += weight
            self._count("rejected", weight)
            if self.breaker is not None:
                self.breaker.record_failure(now)
            self._attempt_failed(call)

    def _on_timeout(self, req_id: int, attempt: int) -> None:
        call = self._open.get(req_id)
        if call is None or call["attempt"] != attempt:
            return  # stale timer of a superseded attempt
        call["timeout_event"] = None
        weight = call["weight"]
        self.stats.timed_out += weight
        self._count("timed_out", weight)
        if self.breaker is not None:
            self.breaker.record_failure(self.sim.now)
        self._attempt_failed(call)

    def _on_hedge(self, req_id: int) -> None:
        call = self._open.get(req_id)
        if call is None:
            return
        call["hedge_event"] = None
        call["hedges_sent"] += 1
        self.stats.hedges += call["weight"]
        self._count("hedges", call["weight"])
        self._send_attempt(call, destination=self.hedge.target, hedged=True)

    def _attempt_failed(self, call: Dict[str, Any]) -> None:
        self._cancel_timers(call)
        now = self.sim.now
        retry = self.retry
        if retry is not None and call["attempt"] < retry.max_attempts:
            delay = retry.backoff(call["attempt"], self.rng)
            within_deadline = (call["deadline_at"] is None
                               or now + delay < call["deadline_at"])
            funded = self.budget is None or self.budget.withdraw(call["weight"])
            if within_deadline and funded:
                weight = call["weight"]
                self.stats.retries += weight
                self._count("retries", weight)
                call["attempt"] += 1
                call["retry_event"] = self.sim.schedule(
                    delay,
                    lambda _s, r=call["req_id"]: self._retry_fire(r),
                    label=f"traffic.retry:{self.name}",
                )
                return
        self._fail(call)

    def _retry_fire(self, req_id: int) -> None:
        call = self._open.get(req_id)
        if call is None:
            return
        call["retry_event"] = None
        self._send_attempt(call)

    def _fail(self, call: Dict[str, Any]) -> None:
        weight = call["weight"]
        self.stats.failed += weight
        self._count("failed", weight)
        span = call["span"]
        if span is not None:
            # No reply to read queue/service from: time in the last attempt
            # counts as network (sent, never usefully answered), everything
            # before it as retry -- still summing to end-to-end elapsed.
            now = self.sim.now
            retry_s = call["attempt_started"] - call["created"]
            self.network.spans.finish(
                span, now, status="failed",
                queue_s=0.0, service_s=0.0,
                network_s=max(0.0, now - call["attempt_started"]),
                retry_s=retry_s,
                attempts=call["attempt"] + call["hedges_sent"])
        self._close(call)
        self._completed(call["req_id"], False)

    def _close(self, call: Dict[str, Any]) -> None:
        self._cancel_timers(call)
        if call["retry_event"] is not None:
            self.sim.cancel(call["retry_event"])
            call["retry_event"] = None
        del self._open[call["req_id"]]

    def _cancel_timers(self, call: Dict[str, Any]) -> None:
        for key in ("timeout_event", "hedge_event"):
            if call[key] is not None:
                self.sim.cancel(call[key])
                call[key] = None

    def _completed(self, req_id: int, ok: bool) -> None:
        if self.on_complete is not None:
            self.on_complete(req_id, ok)

    def _count(self, outcome: str, weight: int) -> None:
        if self.metrics is not None:
            self.metrics.increment(f"traffic.{outcome}:{self.name}", weight)

    @property
    def open_calls(self) -> int:
        return len(self._open)

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        calls = []
        for req_id in sorted(self._open):
            call = self._open[req_id]
            calls.append({
                "req_id": call["req_id"],
                "weight": call["weight"],
                "priority": call["priority"],
                "created": call["created"],
                "deadline_at": call["deadline_at"],
                "attempt": call["attempt"],
                "hedges_sent": call["hedges_sent"],
                "timeout_event": event_ref(call["timeout_event"]),
                "hedge_event": event_ref(call["hedge_event"]),
                "retry_event": event_ref(call["retry_event"]),
            })
        return {
            "next_id": self._next_id,
            "target": self.target,
            "open": calls,
            "stats": self.stats.snapshot_state(),
            "budget": (self.budget.snapshot_state()
                       if self.budget is not None else None),
            "breaker": (self.breaker.snapshot_state()
                        if self.breaker is not None else None),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._next_id = int(state["next_id"])
        self.target = str(state["target"])
        self.stats.restore_state(state["stats"])
        if state["budget"] is not None and self.budget is not None:
            self.budget.restore_state(state["budget"])
        if state["breaker"] is not None and self.breaker is not None:
            self.breaker.restore_state(state["breaker"])
        self._open = {}
        for saved in state["open"]:
            req_id = int(saved["req_id"])
            call = {
                "req_id": req_id,
                "weight": int(saved["weight"]),
                "priority": int(saved["priority"]),
                "created": float(saved["created"]),
                "deadline_at": saved["deadline_at"],
                "attempt": int(saved["attempt"]),
                "hedges_sent": int(saved["hedges_sent"]),
                "timeout_event": None,
                "hedge_event": None,
                "retry_event": None,
                # Telemetry-only fields restart cold: spans are digest-
                # neutral, and a post-restore decomposition that folds the
                # pre-crash wait into retry_s still sums to end-to-end.
                "span": None,
                "attempt_started": float(saved["created"]),
            }
            if saved["timeout_event"] is not None:
                call["timeout_event"] = restore_event_ref(
                    self.sim, saved["timeout_event"],
                    lambda _s, r=req_id, a=call["attempt"]: self._on_timeout(r, a))
            if saved["hedge_event"] is not None:
                call["hedge_event"] = restore_event_ref(
                    self.sim, saved["hedge_event"],
                    lambda _s, r=req_id: self._on_hedge(r))
            if saved["retry_event"] is not None:
                call["retry_event"] = restore_event_ref(
                    self.sim, saved["retry_event"],
                    lambda _s, r=req_id: self._retry_fire(r))
            self._open[req_id] = call

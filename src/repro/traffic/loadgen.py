"""Load generation: open-loop, closed-loop, and cohorts at scale.

Open-loop generators model an outside population that does not slow
down when the system does -- the demand regime where overload and
metastable failures live.  Closed-loop generators model a fixed worker
pool with think time (demand self-limits, classic benchmark shape).

:class:`ClientCohort` is the scale mechanism: a population of ``users``
each issuing ``rate_per_user`` req/s is represented as batched arrivals
of ``weight`` user-requests, with the *event* rate capped at
``max_event_rate``.  Kernel cost is therefore O(aggregate rate x
duration) regardless of population -- a 100k-user cohort costs the same
events as a 1k-user cohort at equal aggregate rate, which is what lets
"millions of users" (ROADMAP north star) fit in a unit test.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Optional

from repro.simulation.kernel import Simulator
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.traffic.client import TrafficClient


def cohort_batching(users: int, rate_per_user: float,
                    max_event_rate: float = 2000.0) -> Dict[str, float]:
    """Weight/event-rate split for a user population.

    Returns ``{"aggregate", "weight", "event_rate"}`` such that
    ``weight * event_rate == aggregate`` and ``event_rate <= max_event_rate``.
    """
    if users < 1:
        raise ValueError("users must be >= 1")
    if rate_per_user <= 0 or max_event_rate <= 0:
        raise ValueError("rates must be positive")
    aggregate = users * rate_per_user
    weight = max(1, math.ceil(aggregate / max_event_rate))
    return {"aggregate": aggregate, "weight": float(weight),
            "event_rate": aggregate / weight}


class OpenLoopGenerator:
    """Arrivals at a fixed rate, independent of system state.

    ``process`` is ``"poisson"`` (exponential gaps) or
    ``"deterministic"`` (fixed gaps).  Arrivals start at ``start`` plus
    one gap and stop after ``stop`` (None = run forever).
    """

    def __init__(
        self,
        sim: Simulator,
        client: TrafficClient,
        rate: float,
        rng: random.Random,
        process: str = "poisson",
        start: float = 0.0,
        stop: Optional[float] = None,
        weight: int = 1,
        priority: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if process not in ("poisson", "deterministic"):
            raise ValueError(f"unknown arrival process {process!r}")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self.sim = sim
        self.client = client
        self.rate = rate
        self.rng = rng
        self.process = process
        self.start_at = start
        self.stop_at = stop
        self.weight = weight
        self.priority = priority
        self.arrivals = 0          # arrival events fired
        self._event = None

    def _gap(self) -> float:
        if self.process == "deterministic":
            return 1.0 / self.rate
        return self.rng.expovariate(self.rate)

    def start(self) -> None:
        if self._event is not None:
            return
        self._schedule_next(self.start_at + self._gap())

    def _schedule_next(self, at: float) -> None:
        if self.stop_at is not None and at > self.stop_at:
            self._event = None
            return
        self._event = self.sim.schedule_at(
            at, self._fire, label=f"traffic.arrival:{self.client.name}")

    def _fire(self, sim: Simulator) -> None:
        self.arrivals += 1
        self.client.submit(weight=self.weight, priority=self.priority)
        self._schedule_next(sim.now + self._gap())

    # -- persistence ------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        return {"arrivals": self.arrivals, "event": event_ref(self._event)}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.arrivals = int(state["arrivals"])
        if state["event"] is not None:
            self._event = restore_event_ref(self.sim, state["event"], self._fire)


class ClientCohort(OpenLoopGenerator):
    """An open-loop population batched to a bounded event rate."""

    def __init__(
        self,
        sim: Simulator,
        client: TrafficClient,
        users: int,
        rate_per_user: float,
        rng: random.Random,
        max_event_rate: float = 2000.0,
        process: str = "poisson",
        start: float = 0.0,
        stop: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        batching = cohort_batching(users, rate_per_user, max_event_rate)
        super().__init__(
            sim, client, rate=batching["event_rate"], rng=rng,
            process=process, start=start, stop=stop,
            weight=int(batching["weight"]), priority=priority,
        )
        self.users = users
        self.rate_per_user = rate_per_user
        self.aggregate_rate = batching["aggregate"]


class ClosedLoopGenerator:
    """A fixed worker pool: each worker submits, thinks, submits again.

    Workers take over the client's ``on_complete`` hook; a completed (or
    failed) call schedules the next submission after an exponential
    think time.  Demand self-limits: a slow system slows its own load.
    """

    def __init__(
        self,
        sim: Simulator,
        client: TrafficClient,
        workers: int,
        think_time: float,
        rng: random.Random,
        start: float = 0.0,
        stop: Optional[float] = None,
        weight: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if think_time <= 0:
            raise ValueError("think_time must be positive")
        self.sim = sim
        self.client = client
        self.workers = workers
        self.think_time = think_time
        self.rng = rng
        self.start_at = start
        self.stop_at = stop
        self.weight = weight
        self.cycles = 0            # completed submit->response cycles
        self._think_events: Dict[int, Any] = {}   # worker index -> event
        self._worker_of_call: Dict[int, int] = {} # req_id -> worker index
        self._submitting: Optional[int] = None    # worker inside submit()
        client.on_complete = self._completed

    def start(self) -> None:
        for worker in range(self.workers):
            self._think(worker, self.start_at + self.rng.expovariate(
                1.0 / self.think_time))

    def _think(self, worker: int, at: float) -> None:
        if self.stop_at is not None and at > self.stop_at:
            return
        self._think_events[worker] = self.sim.schedule_at(
            at, lambda _s, w=worker: self._submit(w),
            label=f"traffic.think:{self.client.name}")

    def _submit(self, worker: int) -> None:
        self._think_events.pop(worker, None)
        # A breaker fast-fail completes synchronously inside submit();
        # the handshake via _submitting lets _completed attribute that
        # completion to this worker without a recorded call mapping.
        self._submitting = worker
        req_id = self.client.submit(weight=self.weight)
        if self._submitting is None:
            return  # completed synchronously; worker already rescheduled
        self._submitting = None
        self._worker_of_call[req_id] = worker

    def _completed(self, req_id: int, ok: bool) -> None:
        worker = self._worker_of_call.pop(req_id, None)
        if worker is None:
            worker = self._submitting
            self._submitting = None
        if worker is None:
            return  # not a call this generator issued
        self.cycles += 1
        self._think(worker, self.sim.now + self.rng.expovariate(
            1.0 / self.think_time))

    # -- persistence ------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "cycles": self.cycles,
            "think": {str(w): event_ref(e)
                      for w, e in sorted(self._think_events.items())},
            "calls": {str(r): w
                      for r, w in sorted(self._worker_of_call.items())},
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.cycles = int(state["cycles"])
        self._think_events = {}
        for worker_str, ref in state["think"].items():
            worker = int(worker_str)
            if ref is not None:
                self._think_events[worker] = restore_event_ref(
                    self.sim, ref, lambda _s, w=worker: self._submit(w))
        self._worker_of_call = {int(r): int(w)
                                for r, w in state["calls"].items()}

"""Client-side resilience patterns: retry, budget, breaker, hedging.

These are the mechanism families the resilience survey catalogs for
keeping service delivery alive through transient faults -- and the ones
whose *misuse* creates metastable failures (the retry-storm scenario).
All randomness comes from the caller's seeded stream; every object
snapshots its dynamic state so checkpointed runs resume bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

# Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff schedule.

    The delay before retry ``n`` (n=1 for the first retry) is
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a
    uniform factor in ``[1-jitter, 1]``.  Jitter decorrelates retries
    across clients so a synchronized failure does not produce a
    synchronized retry spike.
    """

    max_attempts: int = 3      # total attempts, including the first
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5        # fraction of the delay randomized away

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


class RetryBudget:
    """Token bucket bounding retries to a fraction of fresh traffic.

    Every initial request deposits ``ratio`` tokens (times its weight);
    every retry withdraws one token per unit of weight.  Under steady
    load the budget allows ``ratio`` retries per request -- enough to
    absorb sporadic failures -- but during a mass failure the bucket
    drains and retries are refused, cutting the positive feedback loop
    that turns a transient outage into a retry storm.
    """

    def __init__(self, ratio: float = 0.1, cap: float = 100.0,
                 initial: float = 10.0) -> None:
        if ratio < 0:
            raise ValueError("ratio must be non-negative")
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.ratio = ratio
        self.cap = cap
        self.tokens = min(float(initial), cap)
        self.refused = 0   # weighted retries refused (for KPIs)

    def deposit(self, weight: int = 1) -> None:
        self.tokens = min(self.cap, self.tokens + self.ratio * weight)

    def withdraw(self, weight: int = 1) -> bool:
        """Spend ``weight`` tokens; False (and no spend) if underfunded."""
        if self.tokens >= weight:
            self.tokens -= weight
            return True
        self.refused += weight
        return False

    def snapshot_state(self) -> Dict[str, Any]:
        return {"tokens": self.tokens, "refused": self.refused}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.tokens = float(state["tokens"])
        self.refused = int(state["refused"])


class CircuitBreaker:
    """Three-state circuit breaker (closed / open / half-open).

    ``failure_threshold`` consecutive failures trip the breaker OPEN:
    :meth:`allow` then fast-fails every call (no network traffic) until
    ``recovery_time`` has passed, after which the breaker goes HALF_OPEN
    and admits up to ``half_open_probes`` concurrent probe calls.
    ``success_threshold`` consecutive probe successes re-close it; any
    probe failure re-opens it immediately.  State transitions are logged
    in :attr:`transitions` as ``(time, state)`` pairs so tests can assert
    the full state machine.
    """

    def __init__(self, failure_threshold: int = 5, recovery_time: float = 1.0,
                 half_open_probes: int = 1, success_threshold: int = 1) -> None:
        if failure_threshold < 1 or half_open_probes < 1 or success_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        if recovery_time < 0:
            raise ValueError("recovery_time must be non-negative")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self.success_threshold = success_threshold
        self.state = CLOSED
        self.opened_at: Optional[float] = None
        self.trips = 0                         # CLOSED/HALF_OPEN -> OPEN count
        self.transitions: List[Tuple[float, str]] = []
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0

    def _transition(self, state: str, now: float) -> None:
        self.state = state
        self.transitions.append((now, state))

    # -- the gate ---------------------------------------------------------- #
    def allow(self, now: float) -> bool:
        """May a call be sent now?  (HALF_OPEN: reserves a probe slot.)"""
        if self.state == OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.recovery_time:
                self._transition(HALF_OPEN, now)
                self._probes_in_flight = 0
                self._probe_successes = 0
            else:
                return False
        if self.state == HALF_OPEN:
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True
        return True

    # -- outcome feedback -------------------------------------------------- #
    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.success_threshold:
                self._transition(CLOSED, now)
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._trip(now)
        elif self.state == CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip(now)
        # OPEN: failures of already-in-flight calls don't extend the window.

    def _trip(self, now: float) -> None:
        self._transition(OPEN, now)
        self.opened_at = now
        self.trips += 1
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0

    # -- persistence ------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "opened_at": self.opened_at,
            "trips": self.trips,
            "transitions": [[t, s] for t, s in self.transitions],
            "consecutive_failures": self._consecutive_failures,
            "probes_in_flight": self._probes_in_flight,
            "probe_successes": self._probe_successes,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.state = str(state["state"])
        self.opened_at = state["opened_at"]
        self.trips = int(state["trips"])
        self.transitions = [(float(t), str(s)) for t, s in state["transitions"]]
        self._consecutive_failures = int(state["consecutive_failures"])
        self._probes_in_flight = int(state["probes_in_flight"])
        self._probe_successes = int(state["probe_successes"])


@dataclass(frozen=True)
class HedgePolicy:
    """Speculative duplicate requests against tail latency.

    If the first attempt has no reply after ``delay``, send up to
    ``max_hedges`` duplicates (to ``target`` if set, else the call's
    normal destination).  First reply wins; the loser's reply is counted
    late and discarded.
    """

    delay: float
    max_hedges: int = 1
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")

"""The request lifecycle's wire format.

A :class:`Request` is what a client attempt puts on the network: enough
identity for the server to reply (``client`` names the reply kind,
``origin`` the reply destination) and enough context for both sides to
account for it (``weight`` user-requests per batched arrival,
``attempt`` for retry bookkeeping, ``hedged`` for duplicate-suppression
stats).  Payloads are plain dicts so messages stay JSON-able for
journals and snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Message kind servers register for.
REQUEST_KIND = "traffic.request"

#: Reply kind prefix; the full kind is ``traffic.reply:<client-name>`` so
#: several clients can share one origin node without handler clashes.
REPLY_KIND_PREFIX = "traffic.reply:"


def reply_kind(client_name: str) -> str:
    return REPLY_KIND_PREFIX + client_name


@dataclass(frozen=True)
class Request:
    """One attempt of one (possibly batched) user request."""

    req_id: int
    client: str            # owning client name (reply routing key)
    origin: str            # node the reply goes back to
    created_at: float      # submit time of the *call*, not this attempt
    weight: int = 1        # user-requests this arrival represents
    priority: int = 0      # lower runs first in priority queues
    attempt: int = 1       # 1 = initial attempt, >1 = retries
    hedged: bool = False   # True for speculative duplicates

    def to_payload(self) -> Dict[str, Any]:
        return {
            "req_id": self.req_id,
            "client": self.client,
            "origin": self.origin,
            "created_at": self.created_at,
            "weight": self.weight,
            "priority": self.priority,
            "attempt": self.attempt,
            "hedged": self.hedged,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Request":
        return cls(
            req_id=int(payload["req_id"]),
            client=str(payload["client"]),
            origin=str(payload["origin"]),
            created_at=float(payload["created_at"]),
            weight=int(payload.get("weight", 1)),
            priority=int(payload.get("priority", 0)),
            attempt=int(payload.get("attempt", 1)),
            hedged=bool(payload.get("hedged", False)),
        )

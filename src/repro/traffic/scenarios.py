"""Canonical traffic experiments: overload and retry-storm.

Both scenarios put numbers on the paper's availability/elasticity story
(§II-§IV): what users actually experience when demand exceeds an edge
site's capacity, and when a transient fault meets naive retries.

``overload``
    An open-loop cohort offers ~1.6x an edge server's capacity.  The
    *naive* variant queues blindly: waiting time at a full queue exceeds
    the client timeout, so almost every served reply arrives late and
    goodput collapses far below capacity.  The *admission* variant
    bounds the queue so admitted requests finish in time -- goodput sits
    at capacity and the rest is rejected cheaply.  The *adaptive*
    variant starts naive but runs a MAPE loop with a
    :class:`~repro.adaptation.analyzer.BackpressureAnalyzer`: sustained
    backpressure re-routes the cohort to the elastic cloud pool.

``retry-storm``
    Demand is comfortably below capacity (~0.7x), but the edge server
    crashes for a while.  The *naive* variant retries every timeout up
    to 4 attempts with no budget or breaker: after the server heals, the
    retry amplification keeps the queue saturated, waiting time stays
    above the timeout, and goodput never recovers -- a metastable
    failure sustained by its own mitigation.  The *resilient* variant
    adds a retry budget and circuit breaker: the breaker fast-fails
    during the outage (no backlog forms), probes the healed server, and
    closes -- goodput recovers to the offered rate within seconds.

Deterministic by construction: all randomness comes from named RNG
streams, so these runs checkpoint/resume bit-identically like every
other registered scenario.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.adaptation import (
    BackpressureAnalyzer,
    Executor,
    MapeLoop,
    RuleBasedPlanner,
)
from repro.core.system import IoTSystem
from repro.faults.models import CrashRecoveryFault
from repro.persistence.scenarios import PreparedRun
from repro.traffic.admission import QueueLengthAdmission
from repro.traffic.client import COMPLETIONS_SERIES, TrafficClient
from repro.traffic.loadgen import ClientCohort
from repro.traffic.patterns import CircuitBreaker, RetryBudget, RetryPolicy
from repro.traffic.server import Server, ServiceModel
from repro.traffic.stats import TrafficRegistry, windowed_rate

OVERLOAD_HORIZON = 30.0
OVERLOAD_VARIANTS = ("naive", "admission", "adaptive")

RETRY_STORM_HORIZON = 45.0
RETRY_STORM_VARIANTS = ("naive", "resilient")
RETRY_STORM_OUTAGE = (10.0, 8.0)     # (start, duration) of the edge crash

#: Edge serving capacity: 4 slots x 50 req/s each = 200 req/s.
_EDGE_CONCURRENCY = 4
_EDGE_QUEUE = 64
_SERVICE_MEAN = 0.02
_CLIENT_TIMEOUT = 0.25


def _serving_system(seed: int) -> tuple:
    """One edge site under test plus an elastic cloud pool."""
    system = IoTSystem.with_edge_cloud_landscape(2, 2, seed=seed)
    registry = TrafficRegistry(system)
    edge = registry.add_server(Server(
        system.sim, system.network, "edge0",
        rng=system.rngs.stream("traffic:server:edge0"),
        concurrency=_EDGE_CONCURRENCY, queue_capacity=_EDGE_QUEUE,
        service=ServiceModel(mean=_SERVICE_MEAN),
        metrics=system.metrics, trace=system.trace,
    ))
    cloud = registry.add_server(Server(
        system.sim, system.network, "cloud",
        rng=system.rngs.stream("traffic:server:cloud"),
        concurrency=32, queue_capacity=512,
        service=ServiceModel(mean=_SERVICE_MEAN),
        metrics=system.metrics, trace=system.trace,
    ))
    return system, registry, edge, cloud


def prepare_overload(seed: int = 23, variant: str = "admission",
                     users: int = 8000, rate_per_user: float = 0.04,
                     horizon: float = OVERLOAD_HORIZON) -> PreparedRun:
    """Wire (but do not run) one overload variant.

    The cohort offers ``users * rate_per_user`` req/s (default 320/s)
    against a 200 req/s edge server; variants differ only in the
    overload countermeasure.
    """
    if variant not in OVERLOAD_VARIANTS:
        raise ValueError(f"unknown overload variant {variant!r}; "
                         f"expected one of {OVERLOAD_VARIANTS}")
    system, registry, edge, _cloud = _serving_system(seed)
    if variant == "admission":
        # Bound waiting below the client timeout: 8 entries / 200 req/s
        # = 40ms worst-case wait against a 250ms deadline.
        edge.admission = QueueLengthAdmission(8)
    client = registry.add_client(TrafficClient(
        system.sim, system.network, "cohort", "d0.0", "edge0",
        rng=system.rngs.stream("traffic:client"),
        timeout=_CLIENT_TIMEOUT,
        metrics=system.metrics, trace=system.trace,
    ))
    cohort = registry.add_generator(ClientCohort(
        system.sim, client, users=users, rate_per_user=rate_per_user,
        rng=system.rngs.stream("traffic:arrivals"),
        stop=horizon,
    ))
    aux: Dict[str, Any] = {"registry": registry, "client": client,
                           "cohort": cohort, "edge": edge,
                           "variant": variant, "horizon": horizon}
    if variant == "adaptive":
        loop = MapeLoop(
            system.sim, system.network, system.fleet, "edge0", ["d0.0"],
            analyzers=[BackpressureAnalyzer()],
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet,
                              "edge0", system.rngs.stream("exec:edge0"),
                              trace=system.trace),
            period=1.0, metrics=system.metrics, trace=system.trace,
        )
        # The elasticity escape hatch the overload rule consults.
        loop.knowledge.facts["offload_target"] = "cloud"
        edge.attach_backpressure(loop.knowledge)
        loop.start()
        aux["loop"] = loop
    cohort.start()
    return PreparedRun(system=system, horizon=horizon, aux=aux)


def prepare_retry_storm(seed: int = 29, variant: str = "resilient",
                        users: int = 3500, rate_per_user: float = 0.04,
                        horizon: float = RETRY_STORM_HORIZON) -> PreparedRun:
    """Wire (but do not run) one retry-storm variant.

    Offered load (default 140/s) is well under the 200/s capacity; an
    8s crash of the edge server plus aggressive retries is what makes
    the naive variant metastable.
    """
    if variant not in RETRY_STORM_VARIANTS:
        raise ValueError(f"unknown retry-storm variant {variant!r}; "
                         f"expected one of {RETRY_STORM_VARIANTS}")
    system, registry, edge, _cloud = _serving_system(seed)
    retry = RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0,
                        max_delay=1.0, jitter=0.3)
    budget: Optional[RetryBudget] = None
    breaker: Optional[CircuitBreaker] = None
    if variant == "resilient":
        budget = RetryBudget(ratio=0.1, cap=50.0, initial=10.0)
        breaker = CircuitBreaker(failure_threshold=5, recovery_time=1.0,
                                 half_open_probes=1, success_threshold=3)
    client = registry.add_client(TrafficClient(
        system.sim, system.network, "cohort", "d0.0", "edge0",
        rng=system.rngs.stream("traffic:client"),
        timeout=_CLIENT_TIMEOUT, retry=retry, budget=budget, breaker=breaker,
        metrics=system.metrics, trace=system.trace,
    ))
    cohort = registry.add_generator(ClientCohort(
        system.sim, client, users=users, rate_per_user=rate_per_user,
        rng=system.rngs.stream("traffic:arrivals"),
        stop=horizon,
    ))
    cohort.start()
    outage_at, outage_for = RETRY_STORM_OUTAGE
    system.injector.inject_at(outage_at, CrashRecoveryFault(
        name="edge0-crash", device_id="edge0", duration=outage_for))
    aux = {"registry": registry, "client": client, "cohort": cohort,
           "edge": edge, "variant": variant, "horizon": horizon,
           "outage": RETRY_STORM_OUTAGE}
    return PreparedRun(system=system, horizon=horizon, aux=aux)


# --------------------------------------------------------------------------- #
# Result extraction
# --------------------------------------------------------------------------- #
def recovery_window(horizon: float) -> tuple:
    """The measurement window for post-heal goodput recovery.

    Starts a grace period after the fault heals (breaker re-close plus
    queue drain time), ends at the horizon.
    """
    heal = RETRY_STORM_OUTAGE[0] + RETRY_STORM_OUTAGE[1]
    return (heal + 3.0, horizon)


def overload_result(prepared: PreparedRun) -> Dict[str, Any]:
    """KPIs of one finished overload run, plus the capacity yardsticks."""
    system = prepared.system
    aux = prepared.aux
    horizon = aux["horizon"]
    cohort = aux["cohort"]
    client = aux["client"]
    capacity = _EDGE_CONCURRENCY / _SERVICE_MEAN
    stats = client.stats
    goodput = stats.completed / horizon
    return {
        "variant": aux["variant"],
        "offered_rate": cohort.aggregate_rate,
        "capacity": capacity,
        "goodput": goodput,
        "goodput_vs_capacity": goodput / capacity,
        "success_ratio": stats.success_ratio,
        "p99_latency": stats.latency.quantile(0.99),
        "timed_out": stats.timed_out,
        "rejected": stats.rejected,
        "late": stats.late,
        "edge": aux["edge"].summary(),
        "events": system.sim.fired_count,
    }


def retry_storm_result(prepared: PreparedRun) -> Dict[str, Any]:
    """KPIs of one finished retry-storm run, centered on recovery."""
    system = prepared.system
    aux = prepared.aux
    horizon = aux["horizon"]
    cohort = aux["cohort"]
    client = aux["client"]
    start, end = recovery_window(horizon)
    recovered_goodput = windowed_rate(system.metrics, COMPLETIONS_SERIES,
                                      start, end)
    offered = cohort.aggregate_rate
    stats = client.stats
    out = {
        "variant": aux["variant"],
        "offered_rate": offered,
        "recovery_window": [start, end],
        "recovered_goodput": recovered_goodput,
        "recovery_ratio": recovered_goodput / offered,
        "goodput": stats.completed / horizon,
        "success_ratio": stats.success_ratio,
        "retries": stats.retries,
        "timed_out": stats.timed_out,
        "short_circuited": stats.short_circuited,
        "late": stats.late,
        "events": system.sim.fired_count,
    }
    breaker = client.breaker
    if breaker is not None:
        out["breaker"] = {"state": breaker.state, "trips": breaker.trips}
    return out


def run_overload(variant: str, seed: int = 23, **params: Any) -> Dict[str, Any]:
    prepared = prepare_overload(seed=seed, variant=variant, **params)
    prepared.system.run(until=prepared.horizon)
    return overload_result(prepared)


def run_retry_storm(variant: str, seed: int = 29, **params: Any) -> Dict[str, Any]:
    prepared = prepare_retry_storm(seed=seed, variant=variant, **params)
    prepared.system.run(until=prepared.horizon)
    return retry_storm_result(prepared)

"""The serving model: bounded queues, concurrency, service times.

A :class:`Server` attaches to one node (device, cloudlet or cloud) and
serves ``traffic.request`` messages through a bounded queue feeding
``concurrency`` service slots.  Service times come from a configurable
distribution sampled off a seeded stream and scale with request weight,
so one weighted cohort arrival occupies a slot for exactly the aggregate
work its users represent -- capacity math is invariant under batching.

Overload behaviour is explicit: a full queue (or a refusing admission
policy) rejects at the door with a cheap reply, and sustained high
occupancy raises backpressure facts on attached MAPE knowledge bases --
the signal the planner's overload rule (shed / re-route) consumes.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Dict, List, Optional

from repro.network.transport import Network
from repro.persistence.snapshot import event_ref, restore_event_ref
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog
from repro.traffic.admission import AdmissionPolicy, QueueLengthAdmission
from repro.traffic.request import REQUEST_KIND, reply_kind


class ServiceModel:
    """A service-time distribution with unit mean work per user-request."""

    KINDS = ("exponential", "deterministic", "lognormal")

    def __init__(self, mean: float = 0.02, kind: str = "exponential",
                 sigma: float = 0.5) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if kind not in self.KINDS:
            raise ValueError(f"unknown service-time kind {kind!r}")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mean = mean
        self.kind = kind
        self.sigma = sigma

    def sample(self, rng: random.Random, weight: int = 1) -> float:
        """Service duration for one (possibly batched) request.

        One draw scaled by ``weight``: a weight-50 arrival holds its slot
        for 50 users' worth of work, so batching preserves utilization
        without 50 RNG draws per arrival.
        """
        if self.kind == "deterministic":
            unit = self.mean
        elif self.kind == "lognormal":
            import math
            mu = math.log(self.mean) - self.sigma ** 2 / 2.0
            unit = rng.lognormvariate(mu, self.sigma)
        else:
            unit = rng.expovariate(1.0 / self.mean)
        return unit * max(1, weight)


class Server:
    """A bounded-queue request server on one node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node: str,
        rng: random.Random,
        concurrency: int = 1,
        queue_capacity: int = 64,
        service: Optional[ServiceModel] = None,
        admission: Optional[AdmissionPolicy] = None,
        metrics: Optional[MetricsRecorder] = None,
        trace: Optional[TraceLog] = None,
        backpressure_watermark: float = 0.8,
        backpressure_sustain: float = 1.0,
        backpressure_cooldown: float = 5.0,
        backpressure_period: float = 0.5,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.sim = sim
        self.network = network
        self.node = node
        self.rng = rng
        self.concurrency = concurrency
        self.queue_capacity = queue_capacity
        self.service = service or ServiceModel()
        self.admission = admission
        self.metrics = metrics
        self.trace = trace
        # (priority, seq, payload) heap: FIFO within a priority class.
        self._queue: List[Any] = []
        self._queue_seq = 0
        self._in_service: Dict[int, Dict[str, Any]] = {}
        self._serving_seq = 0
        # Weighted server-side counters (client-independent view).
        self.accepted = 0
        self.served = 0
        self.rejected = 0
        # Backpressure config/state: sustained occupancy above the
        # watermark raises facts on attached knowledge bases.
        self.backpressure_watermark = backpressure_watermark
        self.backpressure_sustain = backpressure_sustain
        self.backpressure_cooldown = backpressure_cooldown
        self.backpressure_period = backpressure_period
        self.backpressure_signals = 0
        self._sinks: List[Any] = []
        self._above_since: Optional[float] = None
        self._last_signal: Optional[float] = None
        self._bp_event = None
        network.register(node, REQUEST_KIND, self._on_request)

    # -- queue state ------------------------------------------------------- #
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> int:
        return len(self._in_service)

    # -- arrival ----------------------------------------------------------- #
    def _on_request(self, message) -> None:
        payload = message.payload
        weight = int(payload.get("weight", 1))
        if self.admission is not None and not self.admission.admit(self, payload):
            self._reject(payload, weight, "admission")
            return
        if len(self._queue) >= self.queue_capacity:
            self._reject(payload, weight, "queue_full")
            return
        self.accepted += weight
        heapq.heappush(self._queue, (int(payload.get("priority", 0)),
                                     self._queue_seq, self.sim.now, payload))
        self._queue_seq += 1
        self._record_depth()
        self._maybe_start()

    def _reject(self, payload: Dict[str, Any], weight: int, reason: str) -> None:
        self.rejected += weight
        if self.metrics is not None:
            self.metrics.increment(f"traffic.server.rejected:{self.node}", weight)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "traffic", "reject",
                            subject=self.node, reason=reason,
                            client=payload.get("client"),
                            req_id=payload.get("req_id"))
        self._reply(payload, "rejected", reason=reason)

    # -- service ----------------------------------------------------------- #
    def _maybe_start(self) -> None:
        while self._queue and len(self._in_service) < self.concurrency:
            _, _, enqueued_at, payload = heapq.heappop(self._queue)
            self._start_service(payload, enqueued_at)
        self._record_depth()

    def _start_service(self, payload: Dict[str, Any], enqueued_at: float) -> None:
        weight = int(payload.get("weight", 1))
        duration = self.service.sample(self.rng, weight)
        token = self._serving_seq
        self._serving_seq += 1
        done = self.sim.schedule(
            duration, lambda _s, t=token: self._complete(t),
            label=f"traffic.serve:{self.node}",
        )
        self._in_service[token] = {
            "payload": payload,
            "enqueued_at": enqueued_at,
            "started": self.sim.now,
            "event": done,
        }

    def _complete(self, token: int) -> None:
        entry = self._in_service.pop(token)
        payload = entry["payload"]
        weight = int(payload.get("weight", 1))
        self.served += weight
        if self.metrics is not None:
            self.metrics.increment(f"traffic.server.served:{self.node}", weight)
        spans = self.network.spans
        if spans is not None:
            spans.record(
                f"serve:{self.node}", "traffic", self.sim.now,
                client=payload.get("client"), req_id=payload.get("req_id"),
                queued_for=entry["started"] - entry["enqueued_at"],
                service_time=self.sim.now - entry["started"], weight=weight,
            )
        self._reply(payload, "ok",
                    queued_for=entry["started"] - entry["enqueued_at"],
                    service_time=self.sim.now - entry["started"])
        self._maybe_start()

    def _reply(self, payload: Dict[str, Any], status: str, **extra: Any) -> None:
        body = {
            "req_id": payload["req_id"],
            "client": payload["client"],
            "weight": int(payload.get("weight", 1)),
            "attempt": int(payload.get("attempt", 1)),
            "status": status,
            "server": self.node,
        }
        body.update(extra)
        self.network.send(self.node, payload["origin"],
                          reply_kind(payload["client"]), payload=body,
                          size_bytes=128)

    def _record_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.set_level(f"traffic.qdepth:{self.node}",
                                   self.sim.now, float(len(self._queue)))

    # -- load shedding / backpressure -------------------------------------- #
    def shed(self, factor: float = 0.5) -> None:
        """Tighten admission (installing queue-length admission if absent)."""
        if self.admission is None:
            self.admission = QueueLengthAdmission(
                max(1, int(self.queue_capacity * factor)))
        else:
            self.admission.tighten(factor)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "traffic", "shed",
                            subject=self.node, factor=factor)

    def attach_backpressure(self, knowledge: Any) -> None:
        """Raise ``facts["backpressure"]`` on ``knowledge`` under sustained load."""
        self._sinks.append(knowledge)
        if self._bp_event is None:
            self._bp_event = self.sim.schedule(
                self.backpressure_period, self._bp_tick,
                label=f"traffic.backpressure:{self.node}")

    def _bp_tick(self, sim: Simulator) -> None:
        depth = len(self._queue)
        threshold = self.backpressure_watermark * self.queue_capacity
        if depth >= threshold:
            if self._above_since is None:
                self._above_since = sim.now
            sustained = sim.now - self._above_since >= self.backpressure_sustain
            cooled = (self._last_signal is None or
                      sim.now - self._last_signal >= self.backpressure_cooldown)
            if sustained and cooled:
                self._last_signal = sim.now
                self.backpressure_signals += 1
                signal = {"node": self.node, "depth": depth,
                          "capacity": self.queue_capacity,
                          "since": self._above_since}
                for sink in self._sinks:
                    sink.facts.setdefault("backpressure", []).append(dict(signal))
                if self.trace is not None:
                    self.trace.emit(sim.now, "traffic", "backpressure",
                                    subject=self.node, depth=depth,
                                    capacity=self.queue_capacity)
        else:
            self._above_since = None
        self._bp_event = sim.schedule(
            self.backpressure_period, self._bp_tick,
            label=f"traffic.backpressure:{self.node}")

    # -- reporting ---------------------------------------------------------- #
    def summary(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "served": self.served,
            "rejected": self.rejected,
            "queue_depth": self.queue_depth,
            "busy": self.busy,
            "backpressure_signals": self.backpressure_signals,
        }

    # -- persistence --------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "queue": [[p, s, t, dict(payload)]
                      for p, s, t, payload in sorted(self._queue)],
            "queue_seq": self._queue_seq,
            "serving_seq": self._serving_seq,
            "accepted": self.accepted,
            "served": self.served,
            "rejected": self.rejected,
            "in_service": [
                {"token": token,
                 "payload": dict(entry["payload"]),
                 "enqueued_at": entry["enqueued_at"],
                 "started": entry["started"],
                 "event": event_ref(entry["event"])}
                for token, entry in sorted(self._in_service.items())
            ],
            "admission": (self.admission.snapshot_state()
                          if self.admission is not None else None),
            "backpressure": {
                "signals": self.backpressure_signals,
                "above_since": self._above_since,
                "last_signal": self._last_signal,
                "event": event_ref(self._bp_event),
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._queue = [(int(p), int(s), float(t), dict(payload))
                       for p, s, t, payload in state["queue"]]
        heapq.heapify(self._queue)
        self._queue_seq = int(state["queue_seq"])
        self.accepted = int(state["accepted"])
        self.served = int(state["served"])
        self.rejected = int(state["rejected"])
        self._serving_seq = 0
        self._in_service = {}
        for entry in state["in_service"]:
            ref = entry["event"]
            if ref is None:
                continue
            token = int(entry["token"])
            done = restore_event_ref(
                self.sim, ref, lambda _s, t=token: self._complete(t))
            self._in_service[token] = {
                "payload": dict(entry["payload"]),
                "enqueued_at": float(entry["enqueued_at"]),
                "started": float(entry["started"]),
                "event": done,
            }
        self._serving_seq = int(state["serving_seq"])
        if state["admission"] is not None and self.admission is not None:
            self.admission.restore_state(state["admission"])
        bp = state["backpressure"]
        self.backpressure_signals = int(bp["signals"])
        self._above_since = bp["above_since"]
        self._last_signal = bp["last_signal"]
        if bp["event"] is not None:
            self._bp_event = restore_event_ref(self.sim, bp["event"],
                                               self._bp_tick)

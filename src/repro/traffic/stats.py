"""Traffic accounting: weighted counters, latency, and the registry.

:class:`TrafficStats` is the client-observed outcome ledger -- every
counter is weighted by the batched-arrival weight, so a cohort entry
standing for 50 users moves the numbers by 50.  :class:`TrafficRegistry`
is the per-system directory of servers, clients and generators; it lives
in ``sim.context["traffic"]`` so MAPE executors and KPI reporting reach
the traffic plane without import cycles, exactly like the fault
injector's context registration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.observability.histogram import StreamingHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.metrics import MetricsRecorder
    from repro.traffic.client import TrafficClient
    from repro.traffic.server import Server

#: Key under which the registry installs itself in ``sim.context``.
CONTEXT_KEY = "traffic"

_COUNTERS = ("offered", "completed", "failed", "rejected", "timed_out",
             "short_circuited", "retries", "hedges", "late")


class TrafficStats:
    """Weighted outcome counters plus a latency histogram.

    ``offered`` counts submitted user-requests; every submission ends in
    exactly one of ``completed``, ``failed`` (attempts/deadline/budget
    exhausted) or ``short_circuited`` (breaker fast-fail).  The other
    counters are per-attempt observations (``rejected``/``timed_out``)
    or amplification measures (``retries``/``hedges``/``late``).
    """

    def __init__(self) -> None:
        self.offered = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.timed_out = 0
        self.short_circuited = 0
        self.retries = 0
        self.hedges = 0
        self.late = 0            # replies that arrived after the call ended
        self.latency = StreamingHistogram()

    # -- derived ----------------------------------------------------------- #
    def goodput(self, horizon: float) -> Optional[float]:
        """Completed user-requests per second over ``[0, horizon]``."""
        return self.completed / horizon if horizon > 0 else None

    @property
    def success_ratio(self) -> Optional[float]:
        return self.completed / self.offered if self.offered else None

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        for name in _COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.latency.merge(other.latency)
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {name: getattr(self, name) for name in _COUNTERS}
        out["success_ratio"] = self.success_ratio
        out["latency"] = {
            "count": self.latency.count,
            "mean": self.latency.mean,
            "p50": self.latency.quantile(0.5),
            "p99": self.latency.quantile(0.99),
            "p999": self.latency.quantile(0.999),
            "max": self.latency.max,
        }
        return out

    # -- persistence ------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {name: getattr(self, name) for name in _COUNTERS}
        state["latency"] = self.latency.to_dict()
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        for name in _COUNTERS:
            setattr(self, name, int(state[name]))
        self.latency = StreamingHistogram.from_dict(state["latency"])


def windowed_rate(metrics: "MetricsRecorder", name: str,
                  start: float, end: float) -> float:
    """Sum of a sample series' values over ``[start, end]`` per second.

    Used for recovery measurement: completions are recorded as weighted
    samples on ``traffic.completions``, so goodput *within a window*
    (e.g. after a fault heals) is separable from whole-run goodput.
    """
    if end <= start:
        return 0.0
    if not metrics.has_series(name):
        return 0.0
    total = sum(v for _, v in metrics.series(name).window(start, end))
    return total / (end - start)


class TrafficRegistry:
    """Directory of the traffic plane, reachable via ``sim.context``.

    MAPE executors use :meth:`shed` and :meth:`reroute` to actuate
    overload countermeasures; :func:`~repro.observability.kpis.kpi_report_for_system`
    uses :meth:`kpis` to fold traffic outcomes into the KPI report.
    """

    def __init__(self, system: Any) -> None:
        self.system = system
        self.servers: Dict[str, "Server"] = {}
        self.clients: Dict[str, "TrafficClient"] = {}
        self.generators: List[Any] = []
        system.sim.context[CONTEXT_KEY] = self

    # -- membership --------------------------------------------------------- #
    def add_server(self, server: "Server") -> "Server":
        if server.node in self.servers:
            raise ValueError(f"server already registered on {server.node!r}")
        self.servers[server.node] = server
        return server

    def add_client(self, client: "TrafficClient") -> "TrafficClient":
        if client.name in self.clients:
            raise ValueError(f"client {client.name!r} already registered")
        self.clients[client.name] = client
        return client

    def add_generator(self, generator: Any) -> Any:
        self.generators.append(generator)
        return generator

    # -- actuation (MAPE executor hooks) ------------------------------------ #
    def shed(self, node: str, factor: float = 0.5) -> bool:
        """Tighten admission on ``node``'s server; False if none exists."""
        server = self.servers.get(node)
        if server is None:
            return False
        server.shed(factor)
        return True

    def reroute(self, node: str, destination: str) -> int:
        """Point clients targeting ``node`` at ``destination``; returns count."""
        moved = 0
        for name in sorted(self.clients):
            client = self.clients[name]
            if client.target == node:
                client.target = destination
                moved += 1
        return moved

    # -- reporting ----------------------------------------------------------- #
    def aggregate(self) -> TrafficStats:
        total = TrafficStats()
        for name in sorted(self.clients):
            total.merge(self.clients[name].stats)
        return total

    def kpis(self, horizon: float) -> Dict[str, Any]:
        out = self.aggregate().to_dict()
        out["goodput"] = (out["completed"] / horizon) if horizon > 0 else None
        out["offered_rate"] = (out["offered"] / horizon) if horizon > 0 else None
        out["servers"] = {
            node: self.servers[node].summary()
            for node in sorted(self.servers)
        }
        out["breakers"] = {
            name: {"state": client.breaker.state,
                   "trips": client.breaker.trips}
            for name, client in sorted(self.clients.items())
            if client.breaker is not None
        }
        return out

    # -- persistence ---------------------------------------------------------- #
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "servers": {node: self.servers[node].snapshot_state()
                        for node in sorted(self.servers)},
            "clients": {name: self.clients[name].snapshot_state()
                        for name in sorted(self.clients)},
            "generators": [g.snapshot_state() for g in self.generators],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        for node, server_state in state["servers"].items():
            self.servers[node].restore_state(server_state)
        for name, client_state in state["clients"].items():
            self.clients[name].restore_state(client_state)
        for generator, generator_state in zip(self.generators,
                                              state["generators"]):
            generator.restore_state(generator_state)

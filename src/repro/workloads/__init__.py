"""Workload generators for the application domains the paper motivates.

"Providing solutions for smart cities, healthcare, energy, and mobility"
(abstract).  Each builder returns a wired :class:`~repro.core.system.IoTSystem`
plus domain objects (services, policies, requirements) that examples and
benchmarks drive.
"""

from repro.workloads.smart_city import SmartCityWorkload
from repro.workloads.healthcare import HealthcareWorkload
from repro.workloads.energy import EnergyGridWorkload
from repro.workloads.mobility import MobilityWorkload

__all__ = [
    "EnergyGridWorkload",
    "HealthcareWorkload",
    "MobilityWorkload",
    "SmartCityWorkload",
]

"""Energy-grid workload: smart meters, feeder balancing, islanding.

A distribution grid with feeders (edge sites) of smart meters.  Each
feeder's controller balances load by commanding curtailment when demand
exceeds capacity; when the WAN to the utility cloud fails, feeders keep
balancing locally ("islanded" operation) -- decentralized control keeping
a safety-relevant invariant (demand <= capacity) during disruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.system import IoTSystem
from repro.devices.base import DeviceClass
from repro.devices.software import Service


@dataclass
class EnergyStats:
    meter_reports: int = 0
    curtailments: int = 0
    overload_seconds: float = 0.0
    balanced_checks: int = 0
    total_checks: int = 0

    @property
    def balanced_fraction(self) -> float:
        return self.balanced_checks / self.total_checks if self.total_checks else 1.0


class EnergyGridWorkload:
    """Feeders of smart meters balanced by edge controllers."""

    def __init__(
        self,
        n_feeders: int = 3,
        meters_per_feeder: int = 5,
        seed: int = 23,
        report_period: float = 1.0,
        feeder_capacity: float = 100.0,
    ) -> None:
        self.n_feeders = n_feeders
        self.meters_per_feeder = meters_per_feeder
        self.report_period = report_period
        self.feeder_capacity = feeder_capacity
        self.system = IoTSystem.with_edge_cloud_landscape(
            n_feeders, meters_per_feeder, seed=seed,
            device_class=DeviceClass.GATEWAY, domain_per_site=True,
        )
        self.stats = EnergyStats()
        self._rng = self.system.rngs.stream("demand")
        self._demand: Dict[str, float] = {}
        self._curtailed: Dict[str, bool] = {}
        self._feeder_load: Dict[int, Dict[str, float]] = {
            f: {} for f in range(n_feeders)
        }
        self._wire()

    def _wire(self) -> None:
        for feeder in range(self.n_feeders):
            edge = f"edge{feeder}"
            self.system.fleet.get(edge).host(Service(
                f"balancer{feeder}", runtime="python", cpu=200.0,
                provides={"feeder-balancing"},
            ))
            self._register_balancer(feeder, edge)
            for meter_id in self.system.sites[edge]:
                base = self._rng.uniform(
                    0.6, 1.1
                ) * self.feeder_capacity / self.meters_per_feeder
                self._demand[meter_id] = base
                self._curtailed[meter_id] = False
                self._start_meter(feeder, meter_id, edge)
        self._start_balance_probe()

    def _start_meter(self, feeder: int, meter_id: str, edge: str) -> None:
        sim = self.system.sim
        offset = self._rng.uniform(0.0, self.report_period)

        def tick(s) -> None:
            device = self.system.fleet.get(meter_id)
            if device.up:
                drift = self._rng.gauss(0.0, 1.5)
                self._demand[meter_id] = max(0.0, self._demand[meter_id] + drift)
                reported = self._demand[meter_id] * (0.5 if self._curtailed[meter_id] else 1.0)
                self.system.network.send(
                    meter_id, edge, f"meter:{feeder}",
                    payload={"meter": meter_id, "load": reported, "t": s.now},
                    size_bytes=48,
                )
            s.schedule(self.report_period, tick, label=f"meter:{meter_id}")

        sim.schedule(offset, tick, label=f"meter:{meter_id}")

    def _register_balancer(self, feeder: int, edge: str) -> None:
        def handle(message) -> None:
            device = self.system.fleet.get(edge)
            service = device.stack.service(f"balancer{feeder}")
            if not device.up or service is None or service.state.value != "running":
                return
            payload = message.payload
            self.stats.meter_reports += 1
            self._feeder_load[feeder][payload["meter"]] = payload["load"]
            total = sum(self._feeder_load[feeder].values())
            if total > self.feeder_capacity:
                # Curtail the largest consumer (a command to the meter).
                target = max(self._feeder_load[feeder],
                             key=lambda m: self._feeder_load[feeder][m])
                if not self._curtailed[target]:
                    self._curtailed[target] = True
                    self.stats.curtailments += 1
                    self.system.trace.emit(
                        self.system.sim.now, "actuation", "curtail",
                        subject=target, feeder=feeder,
                    )
            elif total < 0.8 * self.feeder_capacity:
                # Head-room: lift one curtailment.
                for meter_id in sorted(self._feeder_load[feeder]):
                    if self._curtailed[meter_id]:
                        self._curtailed[meter_id] = False
                        break

        self.system.network.register(edge, f"meter:{feeder}", handle)

    def _start_balance_probe(self) -> None:
        sim = self.system.sim
        period = 0.5

        def probe(s) -> None:
            for feeder in range(self.n_feeders):
                effective = sum(
                    self._demand[m] * (0.5 if self._curtailed[m] else 1.0)
                    for m in self.system.sites[f"edge{feeder}"]
                )
                self.stats.total_checks += 1
                if effective <= self.feeder_capacity * 1.05:
                    self.stats.balanced_checks += 1
                else:
                    self.stats.overload_seconds += period
                self.system.metrics.set_level(
                    f"feeder.balanced:{feeder}", s.now,
                    1.0 if effective <= self.feeder_capacity * 1.05 else 0.0,
                )
            s.schedule(period, probe, label="balance-probe")

        sim.schedule(period, probe, label="balance-probe")

    def surge_demand(self, factor: float, feeder: Optional[int] = None) -> None:
        """Multiply current meter demand (an environmental change, e.g. an
        evening peak).  Restricted to one feeder when given."""
        if factor <= 0:
            raise ValueError("surge factor must be positive")
        meters = (
            self.system.sites[f"edge{feeder}"] if feeder is not None
            else list(self._demand)
        )
        for meter_id in meters:
            self._demand[meter_id] *= factor

    def schedule_surge(self, time: float, factor: float,
                       feeder: Optional[int] = None) -> None:
        """Apply :meth:`surge_demand` at a simulated time."""
        self.system.sim.schedule_at(
            time, lambda _s: self.surge_demand(factor, feeder=feeder),
            label="demand-surge",
        )

    def run(self, horizon: float) -> EnergyStats:
        self.system.run(until=horizon)
        return self.stats

"""Healthcare workload: wearables, an edge privacy scope, cross-domain research.

The §VI.B closing example made runnable: a patient's phone acts as the
edge device enforcing privacy preferences over wearable data.  Vitals are
PERSONAL; the hospital domain (GDPR) may receive them; a research lab in
another jurisdiction may only receive anonymized aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import IoTSystem
from repro.data.item import DataItem, DataSensitivity
from repro.data.lineage import LineageTracker
from repro.devices.base import Device, DeviceClass
from repro.governance.domains import (
    CCPA,
    GDPR,
    AdministrativeDomain,
    DomainRegistry,
    TrustLevel,
)
from repro.governance.policy import FlowPolicy, PolicyEngine, PrivacyScope


@dataclass
class HealthcareStats:
    vitals_produced: int = 0
    vitals_shared_hospital: int = 0
    flows_denied: int = 0
    anonymized_shared_lab: int = 0


class HealthcareWorkload:
    """Patients with wearables; phone-edge enforces the privacy scope."""

    def __init__(self, n_patients: int = 4, seed: int = 13,
                 vitals_period: float = 2.0) -> None:
        self.n_patients = n_patients
        self.vitals_period = vitals_period
        self.system = IoTSystem(seed=seed)
        self.lineage = LineageTracker()
        self.stats = HealthcareStats()
        self._rng = self.system.rngs.stream("vitals")
        self._build_topology()
        self._build_governance()
        self._wire_sensing()

    # -- construction ----------------------------------------------------------- #
    def _build_topology(self) -> None:
        topo = self.system.topology
        topo.add_node("hospital-server", tier="edge")
        topo.add_node("lab-server", tier="cloud")
        topo.add_link("hospital-server", "lab-server", profile="wan")
        self.system.fleet.add(Device("hospital-server", DeviceClass.EDGE,
                                     domain="hospital", location="hospital"))
        self.system.fleet.add(Device("lab-server", DeviceClass.CLOUD,
                                     domain="lab", location="lab"))
        for patient in range(self.n_patients):
            phone = f"phone{patient}"
            wearable = f"wearable{patient}"
            topo.add_node(phone, tier="edge")
            topo.add_node(wearable, tier="device")
            topo.add_link(wearable, phone, profile="wireless")
            topo.add_link(phone, "hospital-server", profile="cellular")
            self.system.fleet.add(Device(phone, DeviceClass.MOBILE,
                                         domain="patients", location=f"home{patient}"))
            self.system.fleet.add(Device(wearable, DeviceClass.SENSOR,
                                         domain="patients", location=f"home{patient}"))

    def _build_governance(self) -> None:
        registry = DomainRegistry()
        registry.add(AdministrativeDomain("patients", GDPR, TrustLevel.TRUSTED))
        registry.add(AdministrativeDomain("hospital", GDPR, TrustLevel.TRUSTED))
        registry.add(AdministrativeDomain("lab", CCPA, TrustLevel.PARTNER))
        registry.set_mutual_trust("patients", "hospital", TrustLevel.TRUSTED)
        registry.set_mutual_trust("hospital", "lab", TrustLevel.PARTNER)
        self.domains = registry
        self.policy_engine = PolicyEngine(
            registry,
            min_trust=TrustLevel.PARTNER,
            device_domain=lambda d: self.system.fleet.get(d).domain,
            environment_trusted=lambda d: self.system.fleet.get(d).environment_trusted,
        )
        # Each patient's phone manages the privacy scope of their wearables.
        for patient in range(self.n_patients):
            self.policy_engine.add_scope(PrivacyScope(
                name=f"patient{patient}",
                members={f"wearable{patient}", f"phone{patient}",
                         "hospital-server"},
                min_sensitivity=DataSensitivity.PERSONAL,
            ))
        # The lab refuses inbound personal data outright (defense in depth).
        self.policy_engine.set_policy(FlowPolicy(
            device_id="lab-server",
            max_in_sensitivity=DataSensitivity.INTERNAL,
        ))

    # -- sensing / flows ----------------------------------------------------------#
    def _wire_sensing(self) -> None:
        sim = self.system.sim
        for patient in range(self.n_patients):
            self._start_wearable(patient)

    def _start_wearable(self, patient: int) -> None:
        sim = self.system.sim
        wearable = f"wearable{patient}"
        phone = f"phone{patient}"
        offset = self._rng.uniform(0.0, self.vitals_period)

        def tick(s) -> None:
            device = self.system.fleet.get(wearable)
            if device.up:
                item = DataItem(
                    key=f"hr:{patient}", value=60 + self._rng.gauss(10, 8),
                    producer=wearable, domain="patients", created_at=s.now,
                    sensitivity=DataSensitivity.PERSONAL,
                    subject=f"patient{patient}",
                )
                self.lineage.record_created(item, s.now, wearable)
                self.stats.vitals_produced += 1
                self._flow(item, wearable, phone)
            s.schedule(self.vitals_period, tick, label=f"vitals:{wearable}")

        sim.schedule(offset, tick, label=f"vitals:{wearable}")

    def _flow(self, item: DataItem, src: str, dst: str) -> bool:
        """Governed transfer: evaluate, then move or record denial."""
        decision = self.policy_engine.evaluate(item, src, dst, now=self.system.sim.now)
        if not decision.allowed:
            self.stats.flows_denied += 1
            self.lineage.record_denied(item, self.system.sim.now, dst,
                                       self.system.fleet.get(dst).domain,
                                       reason=decision.reason)
            return False
        self.lineage.record_moved(item, self.system.sim.now, dst,
                                  self.system.fleet.get(dst).domain)
        self._on_arrival(item, dst)
        return True

    def _on_arrival(self, item: DataItem, device_id: str) -> None:
        now = self.system.sim.now
        if device_id.startswith("phone"):
            # Phone-edge forwards vitals to the hospital (still in scope)...
            self._flow(item, device_id, "hospital-server")
            return
        if device_id == "hospital-server":
            self.stats.vitals_shared_hospital += 1
            # ...and the hospital shares only anonymized derivations with
            # the research lab.
            anonymized = item.anonymize(producer="hospital-server", created_at=now)
            self.lineage.record_created(anonymized, now, "hospital-server")
            if self._flow(anonymized, "hospital-server", "lab-server"):
                self.stats.anonymized_shared_lab += 1

    def try_raw_export_to_lab(self, item: DataItem) -> bool:
        """Attempt the forbidden flow (used by tests/examples to show the
        policy engine refusing raw personal data across jurisdictions)."""
        return self._flow(item, "hospital-server", "lab-server")

    # -- execution ------------------------------------------------------------ #
    def run(self, horizon: float) -> HealthcareStats:
        self.system.run(until=horizon)
        return self.stats

"""Mobility workload: vehicles roaming between edge sites and domains.

Vehicles periodically hand over between edge sites (locality change) and
occasionally cross administrative borders (domain transfer, the §I
disruption).  Exercises: dynamic topology rewiring, governed domain
transfer with data sanitation, and continuity of telemetry across
handovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.system import IoTSystem
from repro.data.item import DataItem, DataSensitivity
from repro.data.lineage import LineageTracker
from repro.devices.base import Device, DeviceClass
from repro.governance.domains import (
    CCPA,
    GDPR,
    AdministrativeDomain,
    DomainRegistry,
    TrustLevel,
)
from repro.governance.policy import PolicyEngine
from repro.governance.transfer import DomainTransferProtocol


@dataclass
class MobilityStats:
    telemetry_sent: int = 0
    telemetry_received: int = 0
    handovers: int = 0
    border_crossings: int = 0
    items_sanitized: int = 0


class MobilityWorkload:
    """Vehicles handing over between edge sites across two domains."""

    def __init__(
        self,
        n_vehicles: int = 4,
        n_sites: int = 3,
        seed: int = 31,
        telemetry_period: float = 1.0,
        handover_period: float = 10.0,
    ) -> None:
        if n_sites < 2:
            raise ValueError("mobility needs at least two sites")
        self.n_vehicles = n_vehicles
        self.n_sites = n_sites
        self.telemetry_period = telemetry_period
        self.handover_period = handover_period
        self.system = IoTSystem.with_edge_cloud_landscape(
            n_sites, 1, seed=seed, device_class=DeviceClass.GATEWAY,
            domain_per_site=False,
        )
        self.lineage = LineageTracker()
        self.stats = MobilityStats()
        self._rng = self.system.rngs.stream("mobility")
        self._vehicle_site: Dict[str, int] = {}
        self._site_domain = {
            s: ("euroland" if s < (n_sites + 1) // 2 else "otherland")
            for s in range(n_sites)
        }
        self._build_governance()
        self._spawn_vehicles()

    # -- governance ------------------------------------------------------------- #
    def _build_governance(self) -> None:
        registry = DomainRegistry()
        registry.add(AdministrativeDomain("euroland", GDPR, TrustLevel.TRUSTED))
        registry.add(AdministrativeDomain("otherland", CCPA, TrustLevel.PARTNER))
        registry.set_mutual_trust("euroland", "otherland", TrustLevel.PARTNER)
        self.domains = registry
        self.policy_engine = PolicyEngine(
            registry,
            min_trust=TrustLevel.PARTNER,
            device_domain=lambda d: self.system.fleet.get(d).domain,
            environment_trusted=lambda d: self.system.fleet.get(d).environment_trusted,
        )
        self.transfer_protocol = DomainTransferProtocol(
            self.system.sim, self.system.fleet, self.policy_engine,
            lineage=self.lineage, trace=self.system.trace,
        )

    # -- vehicles -------------------------------------------------------------- #
    def _spawn_vehicles(self) -> None:
        for index in range(self.n_vehicles):
            vehicle_id = f"vehicle{index}"
            site = index % self.n_sites
            self._vehicle_site[vehicle_id] = site
            edge = f"edge{site}"
            self.system.topology.add_link(vehicle_id, edge, profile="cellular")
            self.system.fleet.add(Device(
                vehicle_id, DeviceClass.MOBILE,
                domain=self._site_domain[site], location=f"site{site}",
            ))
            self._start_telemetry(vehicle_id)
            self._start_roaming(vehicle_id)
        for site in range(self.n_sites):
            self._register_edge(site)

    def _register_edge(self, site: int) -> None:
        edge = f"edge{site}"

        def handle(message) -> None:
            if self.system.fleet.get(edge).up:
                self.stats.telemetry_received += 1

        self.system.network.register(edge, "telemetry", handle)

    def _start_telemetry(self, vehicle_id: str) -> None:
        sim = self.system.sim
        offset = self._rng.uniform(0.0, self.telemetry_period)

        def tick(s) -> None:
            device = self.system.fleet.get(vehicle_id)
            if device.up:
                site = self._vehicle_site[vehicle_id]
                item = DataItem(
                    key=f"trip:{vehicle_id}", value={"speed": self._rng.uniform(0, 130)},
                    producer=vehicle_id, domain=device.domain, created_at=s.now,
                    sensitivity=DataSensitivity.PERSONAL, subject=vehicle_id,
                )
                self.lineage.record_created(item, s.now, vehicle_id)
                self.transfer_protocol.register_resident_data(vehicle_id, item)
                self.system.network.send(
                    vehicle_id, f"edge{site}", "telemetry",
                    payload={"vehicle": vehicle_id, "t": s.now}, size_bytes=96,
                )
                self.stats.telemetry_sent += 1
            s.schedule(self.telemetry_period, tick, label=f"telemetry:{vehicle_id}")

        sim.schedule(offset, tick, label=f"telemetry:{vehicle_id}")

    def _start_roaming(self, vehicle_id: str) -> None:
        sim = self.system.sim
        offset = self._rng.uniform(0.0, self.handover_period)

        def roam(s) -> None:
            device = self.system.fleet.get(vehicle_id)
            if device.up:
                self._handover(vehicle_id)
            s.schedule(self.handover_period, roam, label=f"roam:{vehicle_id}")

        sim.schedule(offset + self.handover_period, roam, label=f"roam:{vehicle_id}")

    def _handover(self, vehicle_id: str) -> None:
        old_site = self._vehicle_site[vehicle_id]
        new_site = (old_site + 1) % self.n_sites
        old_edge, new_edge = f"edge{old_site}", f"edge{new_site}"
        # Rewire connectivity.
        link = self.system.topology.link_between(vehicle_id, old_edge)
        if link is not None:
            link.set_up(False)
        if self.system.topology.link_between(vehicle_id, new_edge) is None:
            self.system.topology.add_link(vehicle_id, new_edge, profile="cellular")
        else:
            self.system.topology.link_between(vehicle_id, new_edge).set_up(True)
        self._vehicle_site[vehicle_id] = new_site
        device = self.system.fleet.get(vehicle_id)
        device.location = f"site{new_site}"
        self.stats.handovers += 1
        self.system.trace.emit(
            self.system.sim.now, "mobility", "handover", subject=vehicle_id,
            src=old_edge, dst=new_edge,
        )
        # Border crossing: governed domain transfer sanitizes resident data.
        old_domain = self._site_domain[old_site]
        new_domain = self._site_domain[new_site]
        if old_domain != new_domain:
            counters = self.transfer_protocol.transfer(vehicle_id, new_domain)
            self.stats.border_crossings += 1
            self.stats.items_sanitized += counters["anonymized"] + counters["purged"]

    def run(self, horizon: float) -> MobilityStats:
        self.system.run(until=horizon)
        return self.stats

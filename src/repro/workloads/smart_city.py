"""Smart-city workload: traffic sensing, edge analytics, actuated signals.

The scenario of Fig. 1 in miniature: per-district traffic sensors feed an
edge analytics service which issues timing commands to signal actuators;
a city dashboard aggregates district summaries.  Used by the quickstart
bench (F1) and the smart-city example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.system import IoTSystem
from repro.devices.base import DeviceClass
from repro.devices.sensor import Actuator
from repro.devices.software import Service
from repro.simulation.kernel import Simulator


@dataclass
class SmartCityStats:
    readings_processed: int = 0
    commands_issued: int = 0
    per_district_readings: Dict[int, int] = field(default_factory=dict)


class SmartCityWorkload:
    """Builds and drives the smart-city scenario on an IoTSystem."""

    def __init__(
        self,
        n_districts: int = 3,
        sensors_per_district: int = 4,
        seed: int = 7,
        sensor_period: float = 1.0,
        command_threshold: float = 30.0,
    ) -> None:
        self.n_districts = n_districts
        self.sensors_per_district = sensors_per_district
        self.sensor_period = sensor_period
        self.command_threshold = command_threshold
        self.system = IoTSystem.with_edge_cloud_landscape(
            n_districts, sensors_per_district, seed=seed,
            device_class=DeviceClass.GATEWAY, domain_per_site=True,
        )
        self.stats = SmartCityStats()
        self._traffic_level: Dict[str, float] = {}
        self._actuators: Dict[int, str] = {}
        self._rng = self.system.rngs.stream("traffic")
        self._wire()

    # -- construction ------------------------------------------------------------#
    def _wire(self) -> None:
        for district in range(self.n_districts):
            edge = f"edge{district}"
            analytics = Service(f"traffic-analytics{district}", runtime="python",
                                cpu=300.0, memory=256.0,
                                provides={"traffic-analytics"})
            self.system.fleet.get(edge).host(analytics)
            # One signal actuator per district, attached to the edge LAN.
            actuator_id = f"signal{district}"
            self.system.topology.add_link(actuator_id, edge, profile="wireless")
            actuator = Actuator(actuator_id, domain=f"dom{district}",
                                location=f"site{district}")
            self.system.fleet.add(actuator)
            actuator.attach(self.system.sim, self.system.network,
                            metrics=self.system.metrics, trace=self.system.trace)
            self._actuators[district] = actuator_id
            self._register_analytics(district, edge)
            for device_id in self.system.sites[edge]:
                self._traffic_level[device_id] = self._rng.uniform(10.0, 40.0)
                self._start_sensor(district, device_id, edge)

    def _start_sensor(self, district: int, device_id: str, edge: str) -> None:
        sim = self.system.sim
        offset = self._rng.uniform(0.0, self.sensor_period)

        def tick(s: Simulator) -> None:
            device = self.system.fleet.get(device_id)
            if device.up:
                level = self._traffic_level[device_id]
                level = max(0.0, level + self._rng.gauss(0.0, 3.0))
                self._traffic_level[device_id] = level
                self.system.network.send(
                    device_id, edge, f"traffic:{district}",
                    payload={"device": device_id, "level": level, "t": s.now},
                    size_bytes=64,
                )
            s.schedule(self.sensor_period, tick, label=f"traffic:{device_id}")

        sim.schedule(offset, tick, label=f"traffic:{device_id}")

    def _register_analytics(self, district: int, edge: str) -> None:
        def handle(message) -> None:
            device = self.system.fleet.get(edge)
            service = device.stack.service(f"traffic-analytics{district}")
            if not device.up or service is None or service.state.value != "running":
                return
            now = self.system.sim.now
            payload = message.payload
            self.stats.readings_processed += 1
            self.stats.per_district_readings[district] = (
                self.stats.per_district_readings.get(district, 0) + 1
            )
            self.system.metrics.record("city.ingest", now, 1.0)
            self.system.metrics.record("city.latency", now, now - payload["t"])
            # Congestion control: command the district's signal when the
            # reading crosses the threshold.
            if payload["level"] > self.command_threshold:
                self.system.network.send(
                    edge, self._actuators[district], "actuator.command",
                    payload={"plan": "extend-green", "issued_at": now},
                    size_bytes=48,
                )
                self.stats.commands_issued += 1

        self.system.network.register(edge, f"traffic:{district}", handle)

    # -- execution --------------------------------------------------------------- #
    def run(self, horizon: float) -> SmartCityStats:
        self.system.run(until=horizon)
        return self.stats

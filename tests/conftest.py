"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.topology import Topology, build_edge_cloud_topology, build_mesh_topology
from repro.network.transport import Network
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def trace() -> TraceLog:
    return TraceLog()


@pytest.fixture
def metrics() -> MetricsRecorder:
    return MetricsRecorder()


@pytest.fixture
def mesh5(sim, rngs, trace):
    """A 5-node full mesh with its network, for protocol tests."""
    nodes = ["n1", "n2", "n3", "n4", "n5"]
    topology = build_mesh_topology(nodes, rng=rngs.stream("net"))
    network = Network(sim, topology, trace=trace)
    return nodes, topology, network


@pytest.fixture
def landscape(sim, rngs, trace):
    """A 2-site x 3-device edge-cloud landscape with its network."""
    topology, sites = build_edge_cloud_topology(2, 3, rng=rngs.stream("net"))
    network = Network(sim, topology, trace=trace)
    return topology, sites, network

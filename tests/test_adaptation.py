"""Unit tests for the MAPE-K components and loop."""

import pytest

from repro.adaptation.actions import (
    MigrateServiceAction,
    NoopAction,
    RebootDeviceAction,
    RestartServiceAction,
)
from repro.adaptation.analyzer import (
    BatteryAnalyzer,
    DeviceLivenessAnalyzer,
    ServiceHealthAnalyzer,
    StaleKnowledgeAnalyzer,
)
from repro.adaptation.executor import Executor
from repro.adaptation.knowledge import DeviceSnapshot, Issue, KnowledgeBase
from repro.adaptation.mape import MapeLoop
from repro.adaptation.planner import RuleBasedPlanner
from repro.devices.base import Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.devices.software import Service, ServiceState
from repro.network.partition import PartitionManager
from repro.network.topology import build_mesh_topology
from repro.network.transport import Network


def snapshot(device_id, t, up=True, battery=1.0, running=(), failed=()):
    return DeviceSnapshot(
        device_id=device_id, observed_at=t, up=up, battery_fraction=battery,
        running_services=frozenset(running), failed_services=frozenset(failed),
    )


class TestKnowledgeBase:
    def test_observe_and_age(self):
        kb = KnowledgeBase(["d1", "d2"])
        kb.observe(snapshot("d1", 5.0))
        assert kb.age_of("d1", 8.0) == 3.0
        assert kb.age_of("d2", 8.0) is None
        assert kb.unobserved() == ["d2"]

    def test_issue_dedup(self):
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="k", subject="d1", detected_at=1.0)
        assert kb.open_issue(issue)
        assert not kb.open_issue(Issue(kind="k", subject="d1", detected_at=2.0))
        assert len(kb.open_issues()) == 1

    def test_issue_close(self):
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="k", subject="d1", detected_at=1.0, service="svc")
        kb.open_issue(issue)
        kb.close_matching("k", "d1", "svc")
        assert kb.open_issues() == []

    def test_issues_ordered_by_severity(self):
        kb = KnowledgeBase(["d1"])
        kb.open_issue(Issue(kind="minor", subject="d1", detected_at=1.0, severity=1))
        kb.open_issue(Issue(kind="major", subject="d1", detected_at=2.0, severity=5))
        assert [i.kind for i in kb.open_issues()] == ["major", "minor"]


class TestAnalyzers:
    def test_service_health_opens_and_closes(self):
        kb = KnowledgeBase(["d1"])
        analyzer = ServiceHealthAnalyzer()
        kb.observe(snapshot("d1", 1.0, failed={"svc"}))
        opened = analyzer.analyze(kb, 1.0)
        assert [i.kind for i in opened] == ["service-failed"]
        # Same failure again: no duplicate issue.
        assert analyzer.analyze(kb, 2.0) == []
        kb.observe(snapshot("d1", 3.0, running={"svc"}))
        analyzer.analyze(kb, 3.0)
        assert kb.open_issues() == []

    def test_device_liveness(self):
        kb = KnowledgeBase(["d1"])
        analyzer = DeviceLivenessAnalyzer()
        kb.observe(snapshot("d1", 1.0, up=False))
        opened = analyzer.analyze(kb, 1.0)
        assert [i.kind for i in opened] == ["device-down"]
        kb.observe(snapshot("d1", 2.0, up=True))
        analyzer.analyze(kb, 2.0)
        assert not kb.has_issue("device-down", "d1")

    def test_stale_knowledge(self):
        kb = KnowledgeBase(["d1", "d2"])
        analyzer = StaleKnowledgeAnalyzer(max_age=5.0)
        kb.observe(snapshot("d1", 0.0))
        opened = analyzer.analyze(kb, 10.0)
        kinds = {(i.kind, i.subject) for i in opened}
        assert ("knowledge-stale", "d1") in kinds   # too old
        assert ("knowledge-stale", "d2") in kinds   # never seen
        kb.observe(snapshot("d1", 11.0))
        analyzer.analyze(kb, 12.0)
        assert not kb.has_issue("knowledge-stale", "d1")

    def test_stale_invalid_age_raises(self):
        with pytest.raises(ValueError):
            StaleKnowledgeAnalyzer(max_age=0.0)

    def test_battery_analyzer(self):
        kb = KnowledgeBase(["d1"])
        analyzer = BatteryAnalyzer(threshold=0.3)
        kb.observe(snapshot("d1", 1.0, battery=0.1))
        opened = analyzer.analyze(kb, 1.0)
        assert [i.kind for i in opened] == ["battery-low"]
        kb.observe(snapshot("d1", 2.0, battery=0.9))
        analyzer.analyze(kb, 2.0)
        assert not kb.has_issue("battery-low", "d1")


class TestPlanner:
    def test_service_failed_restarts_first(self):
        planner = RuleBasedPlanner(max_restarts=2)
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="service-failed", subject="d1", detected_at=1.0,
                      service="svc")
        plan = planner.plan([issue], kb, 1.0)
        assert len(plan.actions) == 1
        assert isinstance(plan.actions[0], RestartServiceAction)

    def test_escalates_to_migration_after_failed_restarts(self):
        planner = RuleBasedPlanner(max_restarts=1)
        kb = KnowledgeBase(["d1", "d2"])
        kb.observe(snapshot("d2", 1.0))
        issue = Issue(kind="service-failed", subject="d1", detected_at=1.0,
                      service="svc")
        first = planner.plan([issue], kb, 1.0)
        planner.record_outcome(first.actions[0], success=False)
        second = planner.plan([issue], kb, 2.0)
        assert isinstance(second.actions[0], MigrateServiceAction)
        assert second.actions[0].destination == "d2"

    def test_successful_restart_resets_escalation(self):
        planner = RuleBasedPlanner(max_restarts=1)
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="service-failed", subject="d1", detected_at=1.0,
                      service="svc")
        action = planner.plan([issue], kb, 1.0).actions[0]
        planner.record_outcome(action, success=True)
        again = planner.plan([issue], kb, 2.0)
        assert isinstance(again.actions[0], RestartServiceAction)

    def test_device_down_reboots_and_migrates(self):
        planner = RuleBasedPlanner()
        kb = KnowledgeBase(["d1", "d2"])
        kb.observe(snapshot("d1", 1.0, up=False, running={"svc"}))
        kb.observe(snapshot("d2", 1.0))
        issue = Issue(kind="device-down", subject="d1", detected_at=1.0)
        plan = planner.plan([issue], kb, 1.0)
        assert isinstance(plan.actions[0], RebootDeviceAction)
        migrations = [a for a in plan.actions if isinstance(a, MigrateServiceAction)]
        assert [m.service for m in migrations] == ["svc"]

    def test_stale_knowledge_gets_no_action(self):
        planner = RuleBasedPlanner()
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="knowledge-stale", subject="d1", detected_at=1.0)
        plan = planner.plan([issue], kb, 1.0)
        assert plan.empty

    def test_picks_least_loaded_host(self):
        planner = RuleBasedPlanner(max_restarts=0)
        kb = KnowledgeBase(["d1", "d2", "d3"])
        kb.observe(snapshot("d2", 1.0, running={"a", "b"}))
        kb.observe(snapshot("d3", 1.0, running={"a"}))
        issue = Issue(kind="service-failed", subject="d1", detected_at=1.0,
                      service="svc")
        plan = planner.plan([issue], kb, 1.0)
        assert plan.actions[0].destination == "d3"


@pytest.fixture
def exec_rig(sim, rngs, trace):
    topology = build_mesh_topology(["host", "d1", "d2"], rng=rngs.stream("net"))
    network = Network(sim, topology, trace=trace)
    fleet = DeviceFleet(sim, network=network, trace=trace)
    fleet.add(Device("host", DeviceClass.EDGE))
    fleet.add(Device("d1", DeviceClass.GATEWAY))
    fleet.add(Device("d2", DeviceClass.GATEWAY))
    executor = Executor(sim, network, fleet, "host", rngs.stream("exec"),
                        trace=trace)
    return fleet, network, executor, topology


class TestExecutor:
    def test_restart_failed_service(self, exec_rig):
        fleet, _, executor, _ = exec_rig
        device = fleet.get("d1")
        device.host(Service("svc"))
        device.stack.mark_failed("svc")
        results = executor.execute([RestartServiceAction(target="d1", service="svc")])
        assert results[0].success
        assert device.stack.service("svc").state == ServiceState.RUNNING

    def test_restart_unreachable_target_fails(self, exec_rig, sim, rngs, trace):
        fleet, network, executor, topology = exec_rig
        fleet.get("d1").host(Service("svc"))
        fleet.get("d1").stack.mark_failed("svc")
        PartitionManager(sim, topology).isolate_node("d1")
        results = executor.execute([RestartServiceAction(target="d1", service="svc")])
        assert not results[0].success
        assert "unreachable" in results[0].detail

    def test_down_executor_host_fails_everything(self, exec_rig):
        fleet, network, executor, _ = exec_rig
        network.set_node_up("host", False)
        results = executor.execute([RebootDeviceAction(target="d1")])
        assert not results[0].success

    def test_migrate_moves_service(self, exec_rig):
        fleet, _, executor, _ = exec_rig
        fleet.get("d1").host(Service("svc"))
        results = executor.execute([
            MigrateServiceAction(target="d1", service="svc", destination="d2")
        ])
        assert results[0].success
        assert not fleet.get("d1").hosts("svc")
        assert fleet.get("d2").hosts("svc")
        assert fleet.get("d2").stack.service("svc").state == ServiceState.RUNNING

    def test_migrate_rolls_back_when_destination_full(self, exec_rig):
        fleet, _, executor, _ = exec_rig
        big = Service("svc", cpu=900.0)
        fleet.get("d1").host(big)
        fleet.get("d2").host(Service("filler", cpu=900.0))
        results = executor.execute([
            MigrateServiceAction(target="d1", service="svc", destination="d2")
        ])
        assert not results[0].success
        assert fleet.get("d1").hosts("svc")   # rolled back

    def test_migrate_to_down_destination_fails(self, exec_rig):
        fleet, network, executor, _ = exec_rig
        fleet.get("d1").host(Service("svc"))
        fleet.crash("d2")
        results = executor.execute([
            MigrateServiceAction(target="d1", service="svc", destination="d2")
        ])
        assert not results[0].success

    def test_reboot_respects_success_rate(self, exec_rig):
        fleet, _, executor, _ = exec_rig
        executor.reboot_success_rate = 1.0
        fleet.crash("d1")
        results = executor.execute([RebootDeviceAction(target="d1")])
        assert results[0].success
        assert fleet.get("d1").up

    def test_reboot_can_fail(self, exec_rig):
        fleet, _, executor, _ = exec_rig
        executor.reboot_success_rate = 0.0
        fleet.crash("d1")
        results = executor.execute([RebootDeviceAction(target="d1")])
        assert not results[0].success
        assert not fleet.get("d1").up

    def test_noop_always_succeeds(self, exec_rig):
        _, _, executor, _ = exec_rig
        results = executor.execute([NoopAction(target="d1", reason="observe")])
        assert results[0].success
        assert executor.success_count == 1


class TestMapeLoop:
    def _loop(self, sim, rngs, trace, metrics, host="edge"):
        topology = build_mesh_topology(["edge", "cloud", "d1", "d2"],
                                       rng=rngs.stream("net"))
        network = Network(sim, topology, trace=trace)
        fleet = DeviceFleet(sim, network=network, metrics=metrics, trace=trace)
        for node, cls in (("edge", DeviceClass.EDGE), ("cloud", DeviceClass.CLOUD),
                          ("d1", DeviceClass.GATEWAY), ("d2", DeviceClass.GATEWAY)):
            fleet.add(Device(node, cls))
        loop = MapeLoop(
            sim, network, fleet, host, ["d1", "d2"],
            analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer()],
            planner=RuleBasedPlanner(),
            executor=Executor(sim, network, fleet, host, rngs.stream("exec"),
                              reboot_success_rate=1.0, trace=trace),
            period=1.0, metrics=metrics, trace=trace,
        )
        loop.start()
        return loop, fleet, network, topology

    def test_repairs_failed_service(self, sim, rngs, trace, metrics):
        loop, fleet, _, _ = self._loop(sim, rngs, trace, metrics)
        fleet.get("d1").host(Service("svc"))
        sim.run(until=2.0)
        fleet.get("d1").stack.mark_failed("svc")
        sim.run(until=6.0)
        assert fleet.get("d1").stack.service("svc").state == ServiceState.RUNNING
        assert len(loop.repairs) >= 1

    def test_reboots_down_device(self, sim, rngs, trace, metrics):
        loop, fleet, _, _ = self._loop(sim, rngs, trace, metrics)
        sim.run(until=2.0)
        fleet.crash("d1")
        sim.run(until=6.0)
        assert fleet.get("d1").up

    def test_blind_when_host_partitioned(self, sim, rngs, trace, metrics):
        loop, fleet, network, topology = self._loop(sim, rngs, trace, metrics)
        fleet.get("d1").host(Service("svc"))
        sim.run(until=2.0)
        partitions = PartitionManager(sim, topology)
        name = partitions.isolate_node("edge")
        fleet.get("d1").stack.mark_failed("svc")
        sim.run(until=10.0)
        assert fleet.get("d1").stack.service("svc").state == ServiceState.FAILED
        assert loop.missed_observations > 0
        partitions.heal(name)
        sim.run(until=15.0)
        assert fleet.get("d1").stack.service("svc").state == ServiceState.RUNNING

    def test_down_host_does_not_iterate(self, sim, rngs, trace, metrics):
        loop, fleet, network, _ = self._loop(sim, rngs, trace, metrics)
        sim.run(until=2.0)
        iterations_before = loop.iterations
        network.set_node_up("edge", False)
        sim.run(until=10.0)
        assert loop.iterations == iterations_before

    def test_time_to_repair_pairs_fault_and_repair(self, sim, rngs, trace, metrics):
        loop, fleet, _, _ = self._loop(sim, rngs, trace, metrics)
        fleet.get("d1").host(Service("svc"))
        sim.run(until=2.0)
        fleet.get("d1").stack.mark_failed("svc")
        trace.emit(sim.now, "fault", "service-failure", subject="d1", service="svc")
        sim.run(until=8.0)
        delays = loop.time_to_repair(trace)
        assert len(delays) == 1
        assert 0.0 <= delays[0] <= 3.0

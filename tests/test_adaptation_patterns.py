"""Tests for decentralized MAPE coordination patterns."""

import pytest

from repro.adaptation import (
    DeviceLivenessAnalyzer,
    Executor,
    MapeLoop,
    RuleBasedPlanner,
    ServiceHealthAnalyzer,
)
from repro.adaptation.patterns import InformationSharing, RegionalPlanning
from repro.adaptation.planner import Plan, Planner
from repro.coordination.gossip import GossipNode
from repro.core.system import IoTSystem
from repro.devices.software import Service, ServiceState
from repro.faults.models import PartitionFault


class _NullPlanner(Planner):
    """Local loops under RegionalPlanning do not plan themselves."""

    def plan(self, issues, knowledge, now):
        return Plan()


def make_loop(system, host, scope, planner=None):
    return MapeLoop(
        system.sim, system.network, system.fleet, host, scope,
        analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer()],
        planner=planner or RuleBasedPlanner(),
        executor=Executor(system.sim, system.network, system.fleet, host,
                          system.rngs.stream(f"exec:{host}"),
                          trace=system.trace),
        period=1.0, trace=system.trace, metrics=system.metrics,
    )


def make_gossip(system, host, peers):
    return GossipNode(system.sim, system.network, host, peers,
                      system.rngs.stream(f"gossip:{host}"), period=0.5)


class TestInformationSharing:
    def _system(self):
        return IoTSystem.with_edge_cloud_landscape(2, 2, seed=15)

    def test_knowledge_spreads_between_loops(self):
        system = self._system()
        edges = system.edge_nodes
        loops = {e: make_loop(system, e, list(system.sites[e])) for e in edges}
        sharings = {}
        for edge in edges:
            loops[edge].start()
            sharings[edge] = InformationSharing(
                system.sim, loops[edge], make_gossip(system, edge, edges))
            sharings[edge].start()
        system.run(until=10.0)
        # edge1's loop only scopes site1, but sharing means its *gossip*
        # carries site0 snapshots published by edge0.
        assert sharings["edge0"].shared > 0
        assert sharings["edge1"].gossip.get("obs/d0.0") is not None

    def test_slow_loop_stays_fresh_through_peer(self):
        """A loop that monitors rarely (e.g. to spare constrained device
        batteries) keeps fresh knowledge by importing a fast peer's
        observations -- using 'information from other entities' (SV.A)."""
        system = self._system()
        edges = system.edge_nodes
        shared_scope = list(system.sites["edge0"])
        slow = make_loop(system, "edge0", shared_scope)
        slow.period = 20.0                     # observes site0 rarely
        fast = make_loop(system, "edge1", shared_scope)
        fast.period = 0.5                      # observes site0 constantly
        slow.start()
        fast.start()
        share_slow = InformationSharing(system.sim, slow,
                                        make_gossip(system, "edge0", edges),
                                        share_period=0.5)
        share_fast = InformationSharing(system.sim, fast,
                                        make_gossip(system, "edge1", edges),
                                        share_period=0.5)
        share_slow.start()
        share_fast.start()
        system.run(until=15.0)
        # The slow loop last observed at t~0/20, yet its knowledge of
        # d0.0 is at most a couple of sharing periods old.
        age = slow.knowledge.age_of("d0.0", system.sim.now)
        assert age is not None and age < 3.0
        assert share_slow.imported > 0

    def test_orphan_adoption_enables_peer_takeover(self):
        """edge0 dies entirely; edge1 adopts site0's devices and its
        executor repairs a service failure there."""
        system = self._system()
        edges = system.edge_nodes
        device = system.sites["edge0"][0]
        system.fleet.get(device).host(Service("svc"))
        loop0 = make_loop(system, "edge0", list(system.sites["edge0"]))
        loop1 = make_loop(system, "edge1", list(system.sites["edge1"]))
        loop0.start()
        loop1.start()
        share0 = InformationSharing(system.sim, loop0,
                                    make_gossip(system, "edge0", edges))
        share1 = InformationSharing(
            system.sim, loop1, make_gossip(system, "edge1", edges),
            adopt_orphans=True, orphan_staleness=4.0)
        share0.start()
        share1.start()
        system.run(until=5.0)
        system.fleet.crash("edge0")          # site0's manager dies
        system.fleet.get(device).stack.mark_failed("svc")
        system.run(until=30.0)
        assert device in share1.adopted
        assert device in loop1.scope
        # edge1 repaired the service through the inter-edge mesh route.
        assert system.fleet.get(device).stack.service("svc").state \
            == ServiceState.RUNNING

    def test_adoption_requires_reachability(self):
        system = self._system()
        edges = system.edge_nodes
        device = system.sites["edge0"][0]
        loop0 = make_loop(system, "edge0", list(system.sites["edge0"]))
        loop1 = make_loop(system, "edge1", list(system.sites["edge1"]))
        loop0.start()
        loop1.start()
        share0 = InformationSharing(system.sim, loop0,
                                    make_gossip(system, "edge0", edges))
        share1 = InformationSharing(
            system.sim, loop1, make_gossip(system, "edge1", edges),
            adopt_orphans=True, orphan_staleness=4.0)
        share0.start()
        share1.start()
        system.run(until=5.0)
        # Isolate site0 completely: edge1 hears the snapshots are stale
        # but cannot reach the devices, so it must NOT adopt.
        group_a = set(system.sites["edge0"]) | {"edge0"}
        group_b = set(system.sites["edge1"]) | {"edge1", "cloud"}
        system.partitions.cut_between(group_a, group_b, name="site0-island")
        system.run(until=30.0)
        assert device not in share1.adopted


class TestRegionalPlanning:
    def test_regional_planner_repairs_remote_site(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 2, seed=16)
        edges = system.edge_nodes
        device = system.sites["edge0"][0]
        system.fleet.get(device).host(Service("svc"))
        # Local loops monitor+analyze but do not plan.
        loops = {
            e: make_loop(system, e, list(system.sites[e]), planner=_NullPlanner())
            for e in edges
        }
        gossips = {e: make_gossip(system, e, edges) for e in edges}
        for loop in loops.values():
            loop.start()
        regional = RegionalPlanning(system.sim, loops, gossips,
                                    planner=RuleBasedPlanner(), period=1.0)
        regional.start()
        system.run(until=5.0)
        system.fleet.get(device).stack.mark_failed("svc")
        system.run(until=20.0)
        assert regional.plans_made > 0
        assert regional.actions_routed > 0
        assert system.fleet.get(device).stack.service("svc").state \
            == ServiceState.RUNNING

    def test_region_survives_planner_loss(self):
        """The elected planner (highest edge) dies; the next takes over."""
        system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=16)
        edges = system.edge_nodes               # edge0..edge2
        device = system.sites["edge0"][0]
        system.fleet.get(device).host(Service("svc"))
        loops = {
            e: make_loop(system, e, list(system.sites[e]), planner=_NullPlanner())
            for e in edges
        }
        gossips = {e: make_gossip(system, e, edges) for e in edges}
        for loop in loops.values():
            loop.start()
        regional = RegionalPlanning(system.sim, loops, gossips,
                                    planner=RuleBasedPlanner(), period=1.0)
        regional.start()
        system.run(until=5.0)
        system.fleet.crash("edge2")             # the initial leader
        system.fleet.get(device).stack.mark_failed("svc")
        system.run(until=25.0)
        assert system.fleet.get(device).stack.service("svc").state \
            == ServiceState.RUNNING

    def test_mismatched_hosts_raise(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 1, seed=16)
        loops = {"edge0": make_loop(system, "edge0", [])}
        gossips = {"edge1": make_gossip(system, "edge1", ["edge1"])}
        with pytest.raises(ValueError):
            RegionalPlanning(system.sim, loops, gossips,
                             planner=RuleBasedPlanner())

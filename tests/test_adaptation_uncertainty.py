"""Tests for the uncertainty taxonomy and confidence-gated planning."""

import math

import pytest

from repro.adaptation.knowledge import DeviceSnapshot, Issue, KnowledgeBase
from repro.adaptation.planner import RuleBasedPlanner
from repro.adaptation.uncertainty import (
    ConfidenceGatedPlanner,
    DEFAULT_UNCERTAINTIES,
    KnowledgeConfidence,
    Uncertainty,
    UncertaintyLevel,
    UncertaintyNature,
    UncertaintyRegistry,
    UncertaintySource,
    default_registry,
)


def snapshot(device_id, t, failed=()):
    return DeviceSnapshot(device_id=device_id, observed_at=t, up=True,
                          battery_fraction=1.0, running_services=frozenset(),
                          failed_services=frozenset(failed))


class TestRegistry:
    def test_default_registry_complete(self):
        registry = default_registry()
        assert len(registry) == len(DEFAULT_UNCERTAINTIES)
        assert "connectivity" in registry.names

    def test_classification_queries(self):
        registry = default_registry()
        environment = registry.by_source(UncertaintySource.ENVIRONMENT)
        assert {u.name for u in environment} == {"sensing-noise", "connectivity"}
        epistemic = registry.by_nature(UncertaintyNature.EPISTEMIC)
        assert {u.name for u in epistemic} == {"stale-knowledge",
                                               "emergent-behaviour"}
        assert registry.reducible() == epistemic

    def test_duplicate_registration_raises(self):
        registry = default_registry()
        with pytest.raises(ValueError):
            registry.register(DEFAULT_UNCERTAINTIES[0])

    def test_levels_ordered(self):
        assert UncertaintyLevel.KNOWN_PARAMETERS < UncertaintyLevel.UNKNOWN_OUTCOMES


class TestKnowledgeConfidence:
    def test_fresh_observation_full_confidence(self):
        kb = KnowledgeBase(["d1"])
        kb.observe(snapshot("d1", 10.0))
        confidence = KnowledgeConfidence(half_life=5.0)
        assert confidence.of(kb, "d1", 10.0) == pytest.approx(1.0)

    def test_half_life_semantics(self):
        kb = KnowledgeBase(["d1"])
        kb.observe(snapshot("d1", 0.0))
        confidence = KnowledgeConfidence(half_life=5.0)
        assert confidence.of(kb, "d1", 5.0) == pytest.approx(0.5)
        assert confidence.of(kb, "d1", 10.0) == pytest.approx(0.25)

    def test_unobserved_zero(self):
        kb = KnowledgeBase(["d1"])
        assert KnowledgeConfidence().of(kb, "d1", 10.0) == 0.0

    def test_mean_over_scope(self):
        kb = KnowledgeBase(["d1", "d2"])
        kb.observe(snapshot("d1", 10.0))
        confidence = KnowledgeConfidence(half_life=5.0)
        assert confidence.mean(kb, 10.0) == pytest.approx(0.5)   # (1.0 + 0) / 2

    def test_invalid_half_life_raises(self):
        with pytest.raises(ValueError):
            KnowledgeConfidence(half_life=0.0)


class TestConfidenceGatedPlanner:
    def _issue(self):
        return Issue(kind="service-failed", subject="d1", detected_at=0.0,
                     service="svc")

    def test_confident_actions_pass(self):
        kb = KnowledgeBase(["d1"])
        kb.observe(snapshot("d1", 10.0, failed={"svc"}))
        planner = ConfidenceGatedPlanner(RuleBasedPlanner(),
                                         KnowledgeConfidence(half_life=5.0),
                                         threshold=0.5)
        plan = planner.plan([self._issue()], kb, now=10.0)
        assert len(plan.actions) == 1
        assert planner.gated_actions == 0

    def test_stale_actions_gated(self):
        kb = KnowledgeBase(["d1"])
        kb.observe(snapshot("d1", 0.0, failed={"svc"}))
        planner = ConfidenceGatedPlanner(RuleBasedPlanner(),
                                         KnowledgeConfidence(half_life=5.0),
                                         threshold=0.5)
        plan = planner.plan([self._issue()], kb, now=20.0)   # 4 half-lives old
        assert plan.actions == []
        assert planner.gated_actions == 1

    def test_outcome_feedback_delegated(self):
        inner = RuleBasedPlanner(max_restarts=1)
        kb = KnowledgeBase(["d1", "d2"])
        kb.observe(snapshot("d1", 0.0, failed={"svc"}))
        kb.observe(snapshot("d2", 0.0))
        planner = ConfidenceGatedPlanner(inner, KnowledgeConfidence(half_life=50.0),
                                         threshold=0.1)
        first = planner.plan([self._issue()], kb, now=1.0)
        planner.record_outcome(first.actions[0], success=False)
        second = planner.plan([self._issue()], kb, now=2.0)
        # Escalation happened inside the wrapped planner.
        from repro.adaptation.actions import MigrateServiceAction

        assert isinstance(second.actions[0], MigrateServiceAction)

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            ConfidenceGatedPlanner(RuleBasedPlanner(), KnowledgeConfidence(),
                                   threshold=1.5)

"""Coverage of smaller public API surfaces not exercised elsewhere."""

import pytest

from repro.adaptation.actions import (
    MigrateServiceAction,
    NoopAction,
    RebootDeviceAction,
    RestartServiceAction,
)
from repro.adaptation.knowledge import Issue, KnowledgeBase
from repro.coordination.gossip import GossipNode
from repro.coordination.raft import RaftCluster
from repro.data.pubsub import PubSubNode
from repro.data.quorum import QuorumClient, QuorumReplica
from repro.data.sync import ReplicaStore, SyncProtocol
from repro.data.crdt import GCounter
from repro.devices.base import Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.modeling.goals import Goal
from repro.modeling.space import build_city_space
from repro.network.partition import PartitionManager
from repro.network.topology import build_mesh_topology
from repro.network.transport import Network


class TestActionDescriptions:
    def test_describe_strings(self):
        assert "restart" in RestartServiceAction(target="d", service="s").describe()
        migrate = MigrateServiceAction(target="a", service="s", destination="b")
        assert "'a'" in migrate.describe() and "'b'" in migrate.describe()
        assert "reboot" in RebootDeviceAction(target="d").describe()
        assert "why" in NoopAction(target="d", reason="why").describe()


class TestKnowledgeCloseIssue:
    def test_close_issue_object(self):
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="k", subject="d1", detected_at=0.0, service="s")
        kb.open_issue(issue)
        kb.close_issue(issue)
        assert kb.open_issues() == []


class TestGossipPeerManagement:
    def test_add_and_remove_peer(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        gossip = GossipNode(sim, network, "n1", ["n1"], rngs.stream("g"))
        gossip.add_peer("n2")
        gossip.add_peer("n2")          # idempotent
        gossip.add_peer("n1")          # self ignored
        assert gossip.peers == ["n2"]
        gossip.remove_peer("n2")
        gossip.remove_peer("n2")       # idempotent
        assert gossip.peers == []

    def test_added_peer_receives_state(self, sim, mesh5, rngs):
        # Neither node knows the other: no exchange happens at all.
        nodes, _, network = mesh5
        a = GossipNode(sim, network, "n1", ["n1"], rngs.stream("a"), period=0.5)
        b = GossipNode(sim, network, "n2", ["n2"], rngs.stream("b"), period=0.5)
        a.start()
        b.start()
        a.set("k", "v")
        sim.run(until=5.0)
        assert b.get("k") is None
        a.add_peer("n2")               # a now gossips toward b
        sim.run(until=10.0)
        assert b.get("k") == "v"


class TestRaftCommittedCommands:
    def test_committed_prefix_exposed(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        cluster = RaftCluster(sim, network, nodes, rngs.stream("raft"))
        cluster.start()
        sim.run(until=10.0)
        cluster.propose("a")
        cluster.propose("b")
        sim.run(until=15.0)
        leader = cluster.leader()
        assert leader.committed_commands() == ["a", "b"]


class TestQuorumReadAvailability:
    def test_read_availability_tracks_failures(self, sim, mesh5, rngs, trace):
        nodes, topology, network = mesh5
        for node in nodes[:3]:
            QuorumReplica(sim, network, node)
        client = QuorumClient(sim, network, "n4", nodes[:3], 2, 2, timeout=1.0)
        assert client.read_availability == 1.0
        client.read("k")
        sim.run(until=2.0)
        assert client.read_availability == 1.0
        partitions = PartitionManager(sim, topology, trace=trace)
        partitions.isolate_node("n1")
        partitions.isolate_node("n2")
        client.read("k")
        sim.run(until=4.0)
        assert client.read_availability == 0.5


class TestSyncNow:
    def test_immediate_targeted_exchange(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        a, b = ReplicaStore("n1"), ReplicaStore("n2")
        a.register("c", GCounter("n1"))
        b.register("c", GCounter("n2"))
        # No periodic start: only the explicit sync_now moves data.
        protocol_a = SyncProtocol(sim, network, a, ["n2"], rngs.stream("a"),
                                  period=1000.0)
        SyncProtocol(sim, network, b, ["n1"], rngs.stream("b"), period=1000.0)
        a.get("c").increment(3)
        protocol_a.sync_now("n2")
        sim.run(until=1.0)
        assert b.get("c").value == 3


class TestPubSubTopics:
    def test_subscribed_topics_listed(self, sim, mesh5):
        nodes, _, network = mesh5
        node = PubSubNode(sim, network, "n1")
        node.subscribe("b-topic", lambda *a: None)
        node.subscribe("a-topic", lambda *a: None)
        assert node.subscribed_topics() == ["a-topic", "b-topic"]


class TestPartitionConvenience:
    def test_disconnect_cloud_and_is_active(self, sim, rngs):
        topology = build_mesh_topology(["cloud", "e1", "e2"],
                                       rng=rngs.stream("net"))
        manager = PartitionManager(sim, topology)
        name = manager.disconnect_cloud("cloud")
        assert manager.is_active(name)
        assert not topology.reachable("cloud", "e1")
        manager.heal(name)
        assert not manager.is_active(name)


class TestSpaceAccessors:
    def test_has_place_and_parent(self):
        city = build_city_space(2, 1)
        assert city.has_place("district0")
        assert not city.has_place("atlantis")
        assert city.parent_of("district0") == "city"
        assert city.parent_of("city") is None


class TestTransportUnregister:
    def test_unregistered_node_drops(self, sim, mesh5):
        nodes, _, network = mesh5
        got = []
        network.register("n2", "ping", lambda m: got.append(m))
        network.unregister_node("n2")
        network.send("n1", "n2", "ping")
        sim.run(until=1.0)
        assert got == []
        assert network.stats.dropped_unreachable == 1


class TestFleetDeviceIds:
    def test_sorted_ids(self, sim):
        fleet = DeviceFleet(sim)
        fleet.add(Device("zeta", DeviceClass.GATEWAY))
        fleet.add(Device("alpha", DeviceClass.GATEWAY))
        assert fleet.device_ids == ["alpha", "zeta"]


class TestGoalIsLeaf:
    def test_leaf_and_refined(self):
        goal = Goal("g")
        assert goal.is_leaf
        goal.children = ["a"]
        assert not goal.is_leaf

"""Tests for the benchmark regression harness (benchmarks/regress.py):
snapshot round-trip, tolerance-aware comparison, and regression
detection."""

import copy
import importlib.util
import json
import os
import sys

import pytest

_REGRESS_PATH = os.path.join(os.path.dirname(__file__), "..",
                             "benchmarks", "regress.py")


def _load_regress():
    spec = importlib.util.spec_from_file_location("repro_bench_regress",
                                                  _REGRESS_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


regress = _load_regress()


@pytest.fixture
def snapshot():
    return {
        "schema": regress.SCHEMA, "quick": True, "label": "test",
        "benches": {
            "smart_city": {"wall_s": 0.4, "availability": 1.0,
                           "messages_delivered": 488.0},
            "kernel": {"wall_s": 0.1, "events": 20000.0,
                       "events_per_s": 200000.0},
        },
    }


class TestTolerances:
    def test_timings_get_generous_higher_only_tolerance(self):
        tol, direction = regress.tolerance_for("kernel.wall_s")
        assert tol == 1.0 and direction == "higher"

    def test_throughput_flags_drops_only(self):
        tol, direction = regress.tolerance_for("kernel.events_per_s")
        assert direction == "lower"

    def test_everything_else_is_deterministic(self):
        tol, direction = regress.tolerance_for("smart_city.availability")
        assert tol < 1e-6 and direction == "both"


class TestCompare:
    def test_identical_snapshots_are_clean(self, snapshot):
        assert regress.compare_snapshots(snapshot,
                                         copy.deepcopy(snapshot)) == []

    def test_deterministic_kpi_drift_is_flagged(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["benches"]["smart_city"]["messages_delivered"] = 487.0
        (reg,) = regress.compare_snapshots(snapshot, current)
        assert reg["bench"] == "smart_city"
        assert reg["metric"] == "messages_delivered"
        assert reg["kind"] == "drift"

    def test_timing_regression_beyond_tolerance_is_flagged(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["benches"]["kernel"]["wall_s"] = 0.25   # 2.5x slower
        regs = regress.compare_snapshots(snapshot, current)
        assert [(r["bench"], r["metric"]) for r in regs] == [("kernel",
                                                              "wall_s")]

    def test_timing_wobble_and_speedup_are_tolerated(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["benches"]["kernel"]["wall_s"] = 0.15    # +50%: within 100%
        current["benches"]["smart_city"]["wall_s"] = 0.1  # faster: fine
        assert regress.compare_snapshots(snapshot, current) == []

    def test_throughput_drop_is_flagged_increase_is_not(self, snapshot):
        slower = copy.deepcopy(snapshot)
        slower["benches"]["kernel"]["events_per_s"] = 50000.0
        assert regress.compare_snapshots(snapshot, slower)
        faster = copy.deepcopy(snapshot)
        faster["benches"]["kernel"]["events_per_s"] = 900000.0
        assert regress.compare_snapshots(snapshot, faster) == []

    def test_missing_bench_and_metric_are_flagged(self, snapshot):
        current = copy.deepcopy(snapshot)
        del current["benches"]["kernel"]
        del current["benches"]["smart_city"]["availability"]
        kinds = {(r["bench"], r["kind"])
                 for r in regress.compare_snapshots(snapshot, current)}
        assert ("kernel", "missing") in kinds
        assert ("smart_city", "missing") in kinds

    def test_quick_and_full_snapshots_never_compare(self, snapshot):
        current = copy.deepcopy(snapshot)
        current["quick"] = False
        (reg,) = regress.compare_snapshots(snapshot, current)
        assert reg["kind"] == "incomparable"


class TestSnapshotIo:
    def test_write_load_round_trip(self, snapshot, tmp_path):
        path = regress.write_snapshot(snapshot, str(tmp_path), number=7)
        assert os.path.basename(path) == "BENCH_7.json"
        assert regress.load_snapshot(path) == snapshot

    def test_numbering_advances_past_existing(self, snapshot, tmp_path):
        regress.write_snapshot(snapshot, str(tmp_path), number=3)
        path = regress.write_snapshot(snapshot, str(tmp_path))
        assert os.path.basename(path) == "BENCH_4.json"

    def test_load_rejects_unknown_schema(self, snapshot, tmp_path):
        snapshot["schema"] = 999
        path = regress.write_snapshot(snapshot, str(tmp_path), number=1)
        with pytest.raises(ValueError):
            regress.load_snapshot(path)


class TestHarness:
    def test_self_test_detects_injected_regressions(self, tmp_path):
        assert regress.self_test(str(tmp_path))

    def test_micro_scenarios_are_deterministic(self):
        first = regress.bench_histogram(quick=True)
        second = regress.bench_histogram(quick=True)
        assert first["p50"] == second["p50"]
        assert first["p99"] == second["p99"]
        assert first["count"] == second["count"]

    def test_main_compare_exit_codes(self, snapshot, tmp_path):
        base = regress.write_snapshot(snapshot, str(tmp_path), number=1)
        drifted = copy.deepcopy(snapshot)
        drifted["benches"]["smart_city"]["availability"] = 0.5
        cur = regress.write_snapshot(drifted, str(tmp_path), number=2)
        assert regress.main(["--compare", base, base]) == 0
        assert regress.main(["--compare", base, cur]) == 1

    def test_seeded_baselines_are_loadable(self):
        # Older snapshots may predate newer benches (that is what the
        # trajectory view exists to show); the NEWEST baseline must
        # cover the full scenario set.
        import glob
        import re

        baselines_dir = os.path.join(os.path.dirname(_REGRESS_PATH),
                                     "baselines")
        paths = sorted(
            glob.glob(os.path.join(baselines_dir, "BENCH_*.json")),
            key=lambda p: int(re.fullmatch(
                r"BENCH_(\d+)\.json", os.path.basename(p)).group(1)))
        assert paths
        for path in paths:
            snapshot = regress.load_snapshot(path)
            assert set(snapshot["benches"]) <= set(regress.SCENARIOS)
            for metrics in snapshot["benches"].values():
                assert "wall_s" in metrics
        newest = regress.load_snapshot(paths[-1])
        assert set(newest["benches"]) == set(regress.SCENARIOS)


class TestTrajectory:
    def test_trajectory_prints_drift_and_exits_clean(self, snapshot,
                                                     tmp_path, capsys):
        regress.write_snapshot(snapshot, str(tmp_path), number=1)
        newer = copy.deepcopy(snapshot)
        newer["benches"]["kernel"]["wall_s"] = 0.2
        regress.write_snapshot(newer, str(tmp_path), number=2)
        assert regress.main(["--trajectory", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trajectory over 2 snapshot(s)" in out
        assert "kernel.wall_s" in out
        assert "+100.0%" in out

    def test_trajectory_refuses_mixed_quick_and_full(self, snapshot,
                                                     tmp_path, capsys):
        regress.write_snapshot(snapshot, str(tmp_path), number=1)
        full = copy.deepcopy(snapshot)
        full["quick"] = False
        regress.write_snapshot(full, str(tmp_path), number=2)
        assert regress.main(["--trajectory", str(tmp_path)]) == 1
        assert "refused" in capsys.readouterr().out

    def test_trajectory_with_no_snapshots_fails(self, tmp_path, capsys):
        assert regress.main(["--trajectory", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().out

    def test_observability_bench_is_deterministic(self):
        first = regress.bench_observability(quick=True)
        second = regress.bench_observability(quick=True)
        for metric in ("spans_full", "spans_sampled", "spans_sampled_out",
                       "metric_points_full", "metric_points_sampled",
                       "ticks_counted"):
            assert first[metric] == second[metric], metric
        assert first["ticks_counted"] == 6000.0
        assert first["spans_full"] == first["spans_sampled"] + \
            first["spans_sampled_out"]

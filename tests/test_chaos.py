"""The chaos plane: specs, compiler, campaigns, shrinking and the corpus."""

import json
import os

import pytest

from repro.chaos import (
    AdversaryAxis,
    ChaosSpec,
    CompileError,
    FaultEvent,
    SpecSampler,
    SplitMix64,
    TopologyAxis,
    TrafficAxis,
    compile_spec,
    corpus_bundles,
    emit_bundle,
    load_bundle_spec,
    persistence_spec,
    replay_corpus,
    run_case,
    shrink_spec,
)
from repro.chaos.shrink import ShrinkReport

#: The canonical rediscovery target: a naive edge under aggressive
#: retries loses its server mid-storm and never recovers (EXPERIMENTS
#: CHAOS-1 finds this same shape from campaign seed 84).
COLLAPSE = ChaosSpec(
    topology=TopologyAxis(sites=2, devices_per_site=1),
    traffic=TrafficAxis(pattern="retry-storm", users=3500),
    faults=(FaultEvent(kind="crash", at=6.0, duration=4.0, target="edge0"),),
    maturity=1, horizon=25.0, seed=7)

#: A small healthy spec for determinism / round-trip / corpus plumbing.
SMALL = ChaosSpec(
    topology=TopologyAxis(sites=2, devices_per_site=1),
    traffic=TrafficAxis(pattern="steady", users=500),
    horizon=8.0, seed=5)

#: A many-axis spec for round-trip and shrink-order tests.
BIG = ChaosSpec(
    workload="smart-city",
    topology=TopologyAxis(sites=3, devices_per_site=2),
    traffic=TrafficAxis(pattern="retry-storm", users=3200),
    faults=(FaultEvent(kind="crash", at=6.0, duration=4.0, target="edge0"),
            FaultEvent(kind="latency", at=9.0, duration=3.0,
                       target="edge1:cloud")),
    adversary=AdversaryAxis(attack="sybil-flood", at=5.0, rate=500.0),
    maturity=2, horizon=25.0, seed=13)


class TestSplitMix64:
    def test_same_seed_same_stream(self):
        a = [SplitMix64(99).next_u64() for _ in range(8)]
        b = [SplitMix64(99).next_u64() for _ in range(8)]
        assert a == b

    def test_randint_is_inclusive_and_in_range(self):
        rng = SplitMix64(3)
        draws = {rng.randint(1, 4) for _ in range(200)}
        assert draws == {1, 2, 3, 4}


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", [ChaosSpec(), SMALL, COLLAPSE, BIG])
    def test_dict_round_trip_is_identity(self, spec):
        assert ChaosSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", [ChaosSpec(), SMALL, COLLAPSE, BIG])
    def test_json_round_trip_is_identity(self, spec):
        assert ChaosSpec.from_json(spec.to_json()) == spec

    def test_json_is_canonical(self):
        # Same value -> same bytes -> same digest, regardless of how the
        # spec was constructed.
        rebuilt = ChaosSpec.from_dict(json.loads(BIG.to_json()))
        assert rebuilt.to_json() == BIG.to_json()
        assert rebuilt.digest() == BIG.digest()

    def test_digest_distinguishes_specs(self):
        assert SMALL.digest() != SMALL.with_seed(6).digest()

    def test_validate_rejects_out_of_domain_axes(self):
        bad = [
            ChaosSpec(workload="volcano"),
            ChaosSpec(topology=TopologyAxis(sites=1)),
            ChaosSpec(traffic=TrafficAxis(pattern="steady", users=0)),
            ChaosSpec(faults=(FaultEvent(kind="meteor", at=1.0,
                                         duration=1.0, target="edge0"),)),
            ChaosSpec(faults=(FaultEvent(kind="link", at=1.0,
                                         duration=1.0, target="edge0"),)),
            ChaosSpec(adversary=AdversaryAxis(attack="ddos")),
            ChaosSpec(maturity=5),
        ]
        for spec in bad:
            with pytest.raises(ValueError):
                spec.validate()


class TestSampler:
    def test_sampling_is_deterministic(self):
        a = [SpecSampler(84).sample(i) for i in range(6)]
        b = [SpecSampler(84).sample(i) for i in range(6)]
        assert a == b

    def test_samples_are_valid_and_distinct(self):
        specs = [SpecSampler(7).sample(i) for i in range(10)]
        for spec in specs:
            spec.validate()
        assert len({spec.digest() for spec in specs}) == len(specs)


class TestCompiler:
    def test_compile_is_deterministic(self):
        a = run_case(SMALL)
        b = run_case(SMALL)
        assert a.digest == b.digest
        assert a.events == b.events

    def test_campaign_run_matches_journaled_scenario_run(self, tmp_path):
        # The digest-neutrality contract: a case driven by the campaign
        # harness is byte-for-byte the run the persistence runner
        # journals for the same spec -- that equality is what makes
        # corpus bundles replayable.
        from repro.persistence import run_scenario

        case = run_case(SMALL)
        journaled = run_scenario(persistence_spec(SMALL),
                                 journal_path=str(tmp_path / "j.jsonl"))
        assert journaled.final_digest == case.digest

    def test_compile_rejects_unknown_fault_target(self):
        spec = ChaosSpec(faults=(FaultEvent(
            kind="crash", at=1.0, duration=1.0, target="edge99"),))
        with pytest.raises(CompileError):
            compile_spec(spec)

    def test_naive_collapse_is_found_and_maturity_fixes_it(self):
        naive = run_case(COLLAPSE)
        assert "slo:chaos-goodput" in naive.violations
        hardened = run_case(ChaosSpec.from_dict(
            {**COLLAPSE.to_dict(), "maturity": 3}))
        assert "slo:chaos-goodput" not in hardened.violations
        assert "gate:goodput-recovery" not in hardened.violations


class TestShrinker:
    def test_converges_on_synthetic_failing_axis(self):
        # Oracle: the spec fails iff any fault is scheduled.  The
        # shrinker must strip every other axis and keep exactly the
        # first fault.
        def oracle(spec):
            return ("synthetic:fault",) if spec.faults else ()

        report = shrink_spec(BIG, oracle=oracle)
        assert isinstance(report, ShrinkReport)
        assert report.spec.faults and len(report.spec.faults) == 1
        assert report.spec.workload == "none"
        assert report.spec.traffic.pattern == "none"
        assert report.spec.adversary.attack == "none"
        assert report.spec.topology == TopologyAxis(sites=2,
                                                    devices_per_site=1)
        assert report.spec.axis_count() == 1
        assert report.violations == ("synthetic:fault",)

    def test_is_deterministic(self):
        def oracle(spec):
            return ("x",) if spec.adversary.attack != "none" else ()

        a = shrink_spec(BIG, oracle=oracle)
        b = shrink_spec(BIG, oracle=oracle)
        assert a.spec == b.spec
        assert a.attempts == b.attempts
        assert a.accepted == b.accepted

    def test_refuses_passing_spec(self):
        with pytest.raises(ValueError):
            shrink_spec(SMALL, oracle=lambda spec: ())

    def test_never_touches_maturity_or_horizon(self):
        def oracle(spec):
            return ("x",)

        report = shrink_spec(BIG, oracle=oracle)
        assert report.spec.maturity == BIG.maturity
        assert report.spec.horizon == BIG.horizon


class TestCorpus:
    def test_emit_and_replay_bitwise_identity(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        bundle = emit_bundle(SMALL, corpus, violations=("test:gate",),
                             campaign_seed=84, case_index=0)
        assert corpus_bundles(corpus) == [bundle]
        assert load_bundle_spec(bundle) == SMALL

        verdicts, ok = replay_corpus(corpus)
        assert ok
        assert len(verdicts) == 1
        manifest = json.load(open(os.path.join(bundle, "manifest.json")))
        assert verdicts[0].digest == manifest["barrier"]["digest"]
        assert verdicts[0].barrier_fired == manifest["barrier"]["fired"]

    def test_emission_is_deterministic_bytes(self, tmp_path):
        # Two emissions of the same spec produce identical artifacts --
        # no wall clock anywhere in a bundle.
        first = emit_bundle(SMALL, str(tmp_path / "a"))
        second = emit_bundle(SMALL, str(tmp_path / "b"))
        for name in ("spec.json", "manifest.json", "journal.jsonl",
                     "checkpoint.json"):
            with open(os.path.join(first, name), "rb") as fh:
                a = fh.read()
            with open(os.path.join(second, name), "rb") as fh:
                b = fh.read()
            assert a == b, name

    def test_empty_corpus_is_vacuously_ok(self, tmp_path):
        verdicts, ok = replay_corpus(str(tmp_path / "nothing"))
        assert verdicts == [] and ok

    def test_corrupt_bundle_fails_replay_not_corpus(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        bundle = emit_bundle(SMALL, corpus)
        with open(os.path.join(bundle, "checkpoint.json"), "w") as fh:
            fh.write("{not json")
        verdicts, ok = replay_corpus(corpus)
        assert not ok
        assert verdicts[0].error


class TestUnifiedRegistry:
    def test_catalog_covers_every_registered_scenario(self):
        from repro.scenarios import catalog, scenario_names

        names = {info.name for info in catalog()}
        assert names == set(scenario_names())
        assert "chaos" in names

    def test_catalog_attributes_planes_and_variants(self):
        from repro.scenarios import describe_scenario

        overload = describe_scenario("traffic-overload")
        assert overload.plane == "traffic"
        assert "admission" in overload.variants
        assert overload.description
        assert describe_scenario("chaos").plane == "chaos"

    def test_unknown_scenario_raises_with_available(self):
        from repro.scenarios import UnknownScenarioError, describe_scenario

        with pytest.raises(UnknownScenarioError) as excinfo:
            describe_scenario("no-such")
        assert excinfo.value.name == "no-such"
        assert "chaos" in excinfo.value.available

    def test_chaos_spec_runs_via_registry(self):
        from repro.persistence import prepare

        prepared = prepare(persistence_spec(SMALL))
        assert prepared.horizon == SMALL.horizon
        assert prepared.aux["chaos_spec"] == SMALL

"""Smoke tests for the CLI front-end."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_verify_command(self, capsys):
        assert main(["verify", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "analytic availability" in out

    def test_maturity_quick(self, capsys):
        assert main(["maturity", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "resilience score" in out
        assert "ML4" in out

    def test_landscape_quick(self, capsys):
        assert main(["landscape", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "edge vs cloud" in out
        assert "during" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])


class TestTraceCommand:
    def test_trace_writes_artifacts(self, tmp_path, capsys):
        assert main(["trace", "smart-city-partition", "--quick",
                     "--out", str(tmp_path)]) == 0
        for artifact in ("spans.jsonl", "events.jsonl", "trace.chrome.json",
                         "metrics.json", "profile.json"):
            assert (tmp_path / artifact).exists(), artifact
        out = capsys.readouterr().out
        assert "spans (JSONL)" in out
        assert "causal summary" in out

    def test_recovery_spans_join_injection_traces(self, tmp_path, capsys):
        main(["trace", "smart-city-partition", "--quick",
              "--out", str(tmp_path)])
        spans = [json.loads(line)
                 for line in (tmp_path / "spans.jsonl").read_text().splitlines()]
        injected = {s["trace_id"] for s in spans if s["category"] == "injection"}
        recoveries = [s for s in spans if s["category"] == "recovery"]
        assert injected and recoveries
        for span in recoveries:
            assert span["trace_id"] in injected

    def test_chrome_trace_is_loadable_json(self, tmp_path, capsys):
        main(["trace", "smart-city-partition", "--quick",
              "--out", str(tmp_path)])
        doc = json.loads((tmp_path / "trace.chrome.json").read_text())
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert {"M", "X"} <= phases

    def test_trace_mape_outage_scenario(self, tmp_path, capsys):
        assert main(["trace", "mape-outage", "--quick",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "spans.jsonl").stat().st_size > 0

    def test_unknown_scenario_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "warp-core-breach", "--out", str(tmp_path)])

    def test_json_output_mode(self, capsys):
        assert main(["verify", "--quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tables"]
        table = doc["tables"][0]
        assert set(table) == {"title", "headers", "rows"}

    def test_json_mode_trace(self, tmp_path, capsys):
        assert main(["trace", "smart-city-partition", "--quick", "--json",
                     "--out", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        titles = " ".join(t["title"] for t in doc["tables"])
        assert "smart-city-partition" in titles
        assert "causal summary" in titles

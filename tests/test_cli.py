"""Smoke tests for the CLI front-end."""

import pytest

from repro.cli import main


class TestCli:
    def test_verify_command(self, capsys):
        assert main(["verify", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "analytic availability" in out

    def test_maturity_quick(self, capsys):
        assert main(["maturity", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "resilience score" in out
        assert "ML4" in out

    def test_landscape_quick(self, capsys):
        assert main(["landscape", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "edge vs cloud" in out
        assert "during" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])

"""Smoke tests for the CLI front-end."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_verify_command(self, capsys):
        assert main(["verify", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "analytic availability" in out

    def test_maturity_quick(self, capsys):
        assert main(["maturity", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "resilience score" in out
        assert "ML4" in out

    def test_landscape_quick(self, capsys):
        assert main(["landscape", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "edge vs cloud" in out
        assert "during" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])


class TestTraceCommand:
    def test_trace_writes_artifacts(self, tmp_path, capsys):
        assert main(["trace", "smart-city-partition", "--quick",
                     "--out", str(tmp_path)]) == 0
        for artifact in ("spans.jsonl", "events.jsonl", "trace.chrome.json",
                         "metrics.json", "profile.json"):
            assert (tmp_path / artifact).exists(), artifact
        out = capsys.readouterr().out
        assert "spans (JSONL)" in out
        assert "causal summary" in out

    def test_recovery_spans_join_injection_traces(self, tmp_path, capsys):
        main(["trace", "smart-city-partition", "--quick",
              "--out", str(tmp_path)])
        spans = [json.loads(line)
                 for line in (tmp_path / "spans.jsonl").read_text().splitlines()]
        injected = {s["trace_id"] for s in spans if s["category"] == "injection"}
        recoveries = [s for s in spans if s["category"] == "recovery"]
        assert injected and recoveries
        for span in recoveries:
            assert span["trace_id"] in injected

    def test_chrome_trace_is_loadable_json(self, tmp_path, capsys):
        main(["trace", "smart-city-partition", "--quick",
              "--out", str(tmp_path)])
        doc = json.loads((tmp_path / "trace.chrome.json").read_text())
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert {"M", "X"} <= phases

    def test_trace_mape_outage_scenario(self, tmp_path, capsys):
        assert main(["trace", "mape-outage", "--quick",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "spans.jsonl").stat().st_size > 0

    def test_unknown_scenario_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "warp-core-breach", "--out", str(tmp_path)])

    def test_json_output_mode(self, capsys):
        assert main(["verify", "--quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tables"]
        table = doc["tables"][0]
        assert set(table) == {"title", "headers", "rows"}

    def test_json_mode_trace(self, tmp_path, capsys):
        assert main(["trace", "smart-city-partition", "--quick", "--json",
                     "--out", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        titles = " ".join(t["title"] for t in doc["tables"])
        assert "smart-city-partition" in titles
        assert "causal summary" in titles


class TestMonitorCommand:
    def test_monitor_passes_nonstrict_gate(self, capsys):
        assert main(["monitor", "smart-city-partition", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "resilience KPIs by disruption vector" in out
        assert "SLO GATE: OK" in out

    def test_monitor_strict_breaches_and_exits_nonzero(self, capsys):
        assert main(["monitor", "smart-city-partition", "--quick",
                     "--strict"]) == 1
        out = capsys.readouterr().out
        assert "cloud-reachability" in out
        assert "BREACH" in out
        assert "SLO GATE: FAIL" in out

    def test_monitor_json_emits_kpis_per_vector(self, capsys):
        assert main(["--json", "monitor", "smart-city-partition",
                     "--quick"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 0
        kpis = next(t["data"] for t in doc["tables"]
                    if t.get("title") == "monitor: kpis")
        vectors = kpis["vectors"]
        assert "pervasiveness" in vectors and "services" in vectors
        arc = vectors["pervasiveness"]
        assert arc["mttd_mean"] is not None
        assert arc["mttr_mean"] is not None
        assert kpis["availability"] is not None
        assert "convergence" in kpis
        slos = next(t["data"] for t in doc["tables"]
                    if t.get("title") == "monitor: slos")
        assert slos["evaluations"] > 0

    def test_monitor_json_strict_reports_breach_exit(self, capsys):
        assert main(["--json", "monitor", "smart-city-partition", "--quick",
                     "--strict"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 1

    def test_monitor_mape_outage_scenario(self, capsys):
        assert main(["monitor", "mape-outage", "--quick"]) == 0
        assert "SLO GATE: OK" in capsys.readouterr().out


class TestReportCommand:
    def test_report_writes_artifacts(self, tmp_path, capsys):
        assert main(["report", "smart-city-partition", "--quick",
                     "--out", str(tmp_path)]) == 0
        html = (tmp_path / "resilience-report.html").read_text()
        assert "<html" in html and "pervasiveness" in html
        prom = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE" in prom
        kpis = json.loads((tmp_path / "kpis.json").read_text())
        assert "kpis" in kpis and "slos" in kpis


class TestTrafficCommand:
    def test_overload_gate_passes(self, capsys):
        assert main(["traffic", "overload", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "TRAFFIC GATE: OK" in out
        assert "admission" in out

    def test_retry_storm_gate_passes(self, capsys):
        assert main(["traffic", "retry-storm", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "TRAFFIC GATE: OK" in out

    def test_json_mode_reports_all_variants(self, capsys):
        assert main(["traffic", "overload", "--quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 0
        data = next(t for t in doc["tables"]
                    if t.get("title") == "traffic: overload")
        variants = [r["variant"] for r in data["data"]["results"]]
        assert variants == ["naive", "admission", "adaptive"]

    def test_json_output_deterministic(self, capsys):
        assert main(["traffic", "retry-storm", "--quick", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["traffic", "retry-storm", "--quick", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_unknown_traffic_scenario_exits(self):
        with pytest.raises(SystemExit):
            main(["traffic", "mape-outage"])


class TestScenariosCommand:
    def test_list_prints_unified_registry(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("chaos", "traffic-overload", "smart-city-partition",
                     "security-sybil-flood"):
            assert name in out

    def test_list_json_carries_planes_and_variants(self, capsys):
        assert main(["scenarios", "list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        data = next(t for t in doc["tables"]
                    if t.get("title") == "scenarios")
        rows = {row["name"]: row for row in data["data"]["scenarios"]}
        assert rows["traffic-overload"]["plane"] == "traffic"
        assert "admission" in rows["traffic-overload"]["variants"]
        assert rows["chaos"]["plane"] == "chaos"

    def test_rejects_unknown_verb(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run"])


class TestUnknownScenarioHandling:
    def _forged_journal(self, tmp_path, name="no-such-scenario"):
        header = {"type": "header", "version": 1, "digest_every": 0,
                  "scenario": {"name": name, "seed": 1, "params": {}}}
        (tmp_path / "journal.jsonl").write_text(json.dumps(header) + "\n")

    def test_replay_of_unknown_scenario_exits_2_with_listing(
            self, tmp_path, capsys):
        self._forged_journal(tmp_path)
        assert main(["replay", "--out", str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "unknown scenario 'no-such-scenario'" in out
        assert "available scenarios" in out
        assert "smart-city-partition" in out
        assert "Traceback" not in out

    def test_json_mode_reports_available_scenarios(self, tmp_path, capsys):
        self._forged_journal(tmp_path)
        assert main(["--json", "replay", "--out", str(tmp_path)]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 2
        error = next(t for t in doc["tables"] if t.get("title") == "error")
        assert "chaos" in error["data"]["available"]


class TestChaosCommand:
    def test_run_clean_campaign_writes_report(self, tmp_path, capsys):
        # Seed 84 case 0 passes, so a 1-run campaign is the cheap path:
        # no shrink, no bundle, empty corpus.
        assert main(["chaos", "run", "--seed", "84", "--runs", "1",
                     "--out", str(tmp_path / "out"),
                     "--corpus", str(tmp_path / "corpus")]) == 0
        out = capsys.readouterr().out
        assert "chaos campaign: cases" in out
        assert "0/1 specs violated" in out
        html = (tmp_path / "out" / "chaos-report.html").read_text()
        assert "Chaos campaign" in html

    def test_corpus_empty_is_ok(self, tmp_path, capsys):
        assert main(["chaos", "corpus",
                     "--corpus", str(tmp_path / "corpus")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_shrink_missing_spec_exits_2(self, tmp_path, capsys):
        assert main(["chaos", "shrink", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path)]) == 2

    def test_shrink_requires_path(self):
        with pytest.raises(SystemExit):
            main(["chaos", "shrink"])

    def test_rejects_unknown_verb(self):
        with pytest.raises(SystemExit):
            main(["chaos", "diff"])

"""Coordination protocols under adversarial inputs.

SWIM refutation and incarnation discipline against forged piggybacks,
the trust-gated update filter, and Raft's quorum-intersection safety
argument -- both as an exhaustive combinatorial property and as
simulated runs with compromised voters.
"""

import itertools

import pytest

from repro.coordination.membership import MemberState, MembershipProtocol
from repro.coordination.raft import RaftNode, RaftRole


@pytest.fixture
def swim_cluster(sim, mesh5, rngs):
    nodes, _, network = mesh5

    def build(**kwargs):
        cluster = {
            node: MembershipProtocol(sim, network, node, nodes,
                                     rngs.stream(f"m:{node}"),
                                     probe_period=1.0, **kwargs)
            for node in nodes
        }
        for protocol in cluster.values():
            protocol.start()
        return cluster

    return build, nodes, network


def _forge(network, src, dst, updates, seq=-1):
    """Send one crafted swim.ping carrying forged piggyback updates."""
    network.send(src, dst, "swim.ping",
                 payload={"seq": seq, "from": src, "updates": updates})


class TestSwimRefutation:
    def test_false_death_rumor_is_refuted(self, sim, swim_cluster):
        """A forged DEAD rumor about a live node is beaten back by the
        victim's higher-incarnation refutation."""
        build, nodes, network = swim_cluster
        cluster = build()
        sim.run(until=5.0)
        _forge(network, "n5", "n1",
               [("n2", MemberState.DEAD.value, 0)])
        sim.run(until=20.0)
        # n2 refuted with incarnation > 0; every view returns to ALIVE.
        assert cluster["n2"].incarnation > 0
        for node in nodes:
            assert cluster[node].considers_alive("n2")

    def test_refutation_charges_the_carrier(self, sim, swim_cluster):
        build, nodes, network = swim_cluster
        evidence = []
        cluster = build(
            evidence=lambda subject, kind: evidence.append((subject, kind)))
        sim.run(until=5.0)
        _forge(network, "n5", "n2",
               [("n2", MemberState.SUSPECT.value, 0)])
        sim.run(until=10.0)
        assert ("n5", "refuted-piggyback") in evidence

    def test_repeated_rumors_do_not_stick(self, sim, swim_cluster):
        """An adversary spamming suspicion rumors cannot keep a live,
        refuting node out of the membership."""
        build, nodes, network = swim_cluster
        cluster = build()

        def spam(s):
            inc = cluster["n2"].incarnation
            for dst in ("n1", "n3", "n4"):
                _forge(network, "n5", dst,
                       [("n2", MemberState.SUSPECT.value, inc)])
            if s.now < 15.0:
                s.schedule(1.0, spam)

        sim.schedule(2.0, spam)
        sim.run(until=30.0)
        for node in nodes:
            assert cluster[node].considers_alive("n2")


class TestSwimUpdateFilter:
    def test_naive_cluster_adopts_forged_join(self, sim, swim_cluster):
        build, nodes, network = swim_cluster
        cluster = build()
        sim.run(until=2.0)
        _forge(network, "n5", "n1", [("sybil-0", "alive", 1)])
        sim.run(until=4.0)
        assert "sybil-0" in cluster["n1"].members()

    def test_filter_rejects_unknown_identity(self, sim, swim_cluster):
        build, nodes, network = swim_cluster
        known = set(nodes)
        rejected = []

        def update_filter(src, node, state, incarnation):
            if node in known:
                return True
            rejected.append((src, node))
            return False

        cluster = build(update_filter=update_filter)
        sim.run(until=2.0)
        _forge(network, "n5", "n1", [("sybil-0", "alive", 1)])
        sim.run(until=10.0)
        assert "sybil-0" not in cluster["n1"].members()
        assert ("n5", "sybil-0") in rejected
        # Honest membership is intact despite the filter.
        assert cluster["n1"].alive_members() == sorted(nodes)

    def test_impossible_incarnation_jump_rejected(self, sim, swim_cluster):
        build, nodes, network = swim_cluster
        evidence = []
        cluster = build(
            max_incarnation_jump=8,
            evidence=lambda subject, kind: evidence.append((subject, kind)))
        sim.run(until=2.0)
        # Forged DEAD at an absurd incarnation: a real node's incarnation
        # advances by one per refutation, so +1000 is a forged counter.
        _forge(network, "n5", "n1", [("n3", MemberState.DEAD.value, 1000)])
        sim.run(until=4.0)
        assert ("n5", "impossible-incarnation") in evidence
        assert cluster["n1"].considers_alive("n3")

    def test_plausible_incarnation_still_accepted(self, sim, mesh5, rngs):
        """A small (legitimate) incarnation advance passes the jump guard.

        The protocol is deliberately not started: no probes run, so the
        applied rumor cannot be immediately overwritten by a live ack.
        """
        nodes, _, network = mesh5
        protocol = MembershipProtocol(sim, network, "n1", nodes,
                                      rngs.stream("m:n1"),
                                      max_incarnation_jump=8)
        _forge(network, "n4", "n1", [("n3", MemberState.SUSPECT.value, 2)])
        sim.run(until=1.0)
        assert protocol.state_of("n3") == MemberState.SUSPECT


class TestRaftQuorumIntersection:
    """The combinatorial core of leader safety, checked exhaustively."""

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_any_two_quorums_intersect(self, n):
        nodes = list(range(n))
        quorum = n // 2 + 1
        for q1 in itertools.combinations(nodes, quorum):
            for q2 in itertools.combinations(nodes, quorum):
                assert set(q1) & set(q2)

    @pytest.mark.parametrize("n,f", [(5, 2), (7, 3)])
    def test_honest_single_votes_cannot_grant_two_quorums(self, n, f):
        """With liar votes discarded (authenticated replies) and every
        honest node granting at most one vote per term, no assignment of
        honest votes yields two same-term quorums -- exhaustively, for
        every candidate pair and every honest-vote assignment."""
        nodes = list(range(n))
        liars = set(nodes[-f:])
        honest = [v for v in nodes if v not in liars]
        quorum = n // 2 + 1
        for a, b in itertools.combinations(honest, 2):
            voters = [v for v in honest if v not in (a, b)]
            # Each honest non-candidate votes for a, for b, or abstains.
            for assignment in itertools.product((a, b, None),
                                                repeat=len(voters)):
                votes_a = 1 + sum(1 for v in assignment if v == a)
                votes_b = 1 + sum(1 for v in assignment if v == b)
                assert not (votes_a >= quorum and votes_b >= quorum)

    @pytest.mark.parametrize("n,f", [(5, 2), (7, 3)])
    def test_forged_votes_break_intersection(self, n, f):
        """The attack the scenario stages: liars voting for everyone give
        two candidates disjoint honest support plus the same f forged
        votes -- both reach quorum.  This is why replies must be
        authenticated, not why quorums are too small."""
        quorum = n // 2 + 1
        votes_a = 1 + f          # self + every liar
        votes_b = 1 + f
        honest_spare = n - f - 2  # honest non-candidates
        votes_a += (honest_spare + 1) // 2
        votes_b += honest_spare // 2
        assert votes_a >= quorum and votes_b >= quorum

    def test_won_terms_unique_without_adversary(self, sim, mesh5, rngs):
        """Simulated safety: across an honest run, each term is won by at
        most one node (leader-safety invariant on real message flow)."""
        nodes, _, network = mesh5
        cluster = {
            node: RaftNode(sim, network, node, nodes,
                           rngs.stream(f"r:{node}"),
                           heartbeat_interval=0.3,
                           election_timeout=(0.8, 1.1))
            for node in nodes
        }
        for raft in cluster.values():
            raft.start()
        # Force churn: crash whichever node currently leads, twice.
        def crash_leader(s):
            leaders = [n for n in nodes if cluster[n].role == RaftRole.LEADER]
            if leaders:
                network.set_node_up(leaders[0], False)

        sim.schedule(5.0, crash_leader)
        sim.schedule(12.0, crash_leader)
        sim.run(until=25.0)
        winners = {}
        for node in nodes:
            for term in cluster[node].won_terms:
                winners.setdefault(term, []).append(node)
        assert winners   # elections actually happened
        assert all(len(v) == 1 for v in winners.values())

    @pytest.mark.parametrize("seed", [41, 101, 202])
    def test_defended_scenario_safe_across_seeds(self, seed):
        """The defended raft-equivocation run never double-elects, at the
        canonical seed and off-canonical ones."""
        from repro.security.scenarios import run_raft_equivocation

        result = run_raft_equivocation("defended", seed=seed)
        assert not result["safety_violated"]

"""Unit tests for gossip, bully election, Raft and the service registry."""

import pytest

from repro.coordination.election import BullyElection
from repro.coordination.gossip import GossipNode, GossipValue
from repro.coordination.raft import RaftCluster, RaftNode, RaftRole
from repro.coordination.registry import ServiceRecord, ServiceRegistry
from repro.network.partition import PartitionManager


@pytest.fixture
def gossip_cluster(sim, mesh5, rngs):
    nodes, _, network = mesh5
    cluster = {
        node: GossipNode(sim, network, node, nodes, rngs.stream(f"g:{node}"),
                         period=0.5)
        for node in nodes
    }
    for g in cluster.values():
        g.start()
    return cluster, network


class TestGossip:
    def test_value_spreads_to_all(self, sim, gossip_cluster):
        cluster, _ = gossip_cluster
        cluster["n1"].set("config", "v1")
        sim.run(until=10.0)
        assert all(g.get("config") == "v1" for g in cluster.values())

    def test_newer_version_wins(self, sim, gossip_cluster):
        cluster, _ = gossip_cluster
        cluster["n1"].set("key", "old")
        sim.run(until=10.0)
        cluster["n1"].set("key", "new")
        sim.run(until=20.0)
        assert all(g.get("key") == "new" for g in cluster.values())

    def test_concurrent_writes_converge_deterministically(self, sim, gossip_cluster):
        cluster, _ = gossip_cluster
        cluster["n1"].set("key", "from-n1")
        cluster["n5"].set("key", "from-n5")   # same version 1; owner n5 > n1
        sim.run(until=15.0)
        values = {g.get("key") for g in cluster.values()}
        assert values == {"from-n5"}

    def test_update_callback(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        seen = []
        receiver = GossipNode(sim, network, "n1", nodes, rngs.stream("g:n1"),
                              on_update=lambda k, v: seen.append((k, v.value)))
        sender = GossipNode(sim, network, "n2", nodes, rngs.stream("g:n2"))
        receiver.start()
        sender.start()
        sender.set("x", 42)
        sim.run(until=10.0)
        assert ("x", 42) in seen

    def test_partitioned_node_catches_up(self, sim, gossip_cluster, trace):
        cluster, network = gossip_cluster
        partitions = PartitionManager(sim, network.topology, trace=trace)
        partitions.schedule_outage(1.0, 10.0, "n3")
        sim.schedule(5.0, lambda s: cluster["n1"].set("during", "partition"))
        sim.run(until=8.0)
        assert cluster["n3"].get("during") is None
        sim.run(until=25.0)
        assert cluster["n3"].get("during") == "partition"

    def test_dominates_ordering(self):
        low = GossipValue("a", 1, "n1")
        high = GossipValue("b", 2, "n1")
        assert high.dominates(low) and not low.dominates(high)
        tie_a = GossipValue("a", 1, "n1")
        tie_b = GossipValue("b", 1, "n2")
        assert tie_b.dominates(tie_a)

    def test_invalid_fanout(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        with pytest.raises(ValueError):
            GossipNode(sim, network, "n1", nodes, rngs.stream("x"), fanout=0)


class TestBullyElection:
    def _elections(self, sim, mesh5):
        nodes, _, network = mesh5
        return {
            node: BullyElection(sim, network, node, nodes)
            for node in nodes
        }, network

    def test_highest_id_wins(self, sim, mesh5):
        elections, _ = self._elections(sim, mesh5)
        elections["n1"].start_election()
        sim.run(until=10.0)
        assert all(e.leader == "n5" for e in elections.values())
        assert elections["n5"].is_leader

    def test_leader_crash_reelection(self, sim, mesh5):
        elections, network = self._elections(sim, mesh5)
        elections["n1"].start_election()
        sim.run(until=10.0)
        network.set_node_up("n5", False)
        elections["n2"].start_election()
        sim.run(until=20.0)
        live = [e for n, e in elections.items() if n != "n5"]
        assert all(e.leader == "n4" for e in live)

    def test_down_node_does_not_campaign(self, sim, mesh5):
        elections, network = self._elections(sim, mesh5)
        network.set_node_up("n1", False)
        elections["n1"].start_election()
        sim.run(until=5.0)
        assert elections["n1"].leader is None

    def test_on_leader_callback(self, sim, mesh5):
        nodes, _, network = mesh5
        seen = []
        elections = {
            node: BullyElection(sim, network, node, nodes,
                                on_leader=lambda l, n=node: seen.append((n, l)))
            for node in nodes
        }
        elections["n3"].start_election()
        sim.run(until=10.0)
        assert ("n1", "n5") in seen


class TestRaft:
    def _cluster(self, sim, mesh5, rngs, nodes=None):
        all_nodes, _, network = mesh5
        nodes = nodes or all_nodes
        cluster = RaftCluster(sim, network, nodes, rngs.stream("raft"))
        cluster.start()
        return cluster, network

    def test_single_leader_elected(self, sim, mesh5, rngs):
        cluster, _ = self._cluster(sim, mesh5, rngs)
        sim.run(until=10.0)
        leaders = [n for n in cluster.nodes.values() if n.is_leader]
        assert len(leaders) == 1

    def test_commands_replicate_to_all(self, sim, mesh5, rngs):
        cluster, _ = self._cluster(sim, mesh5, rngs)
        sim.run(until=10.0)
        for i in range(10):
            assert cluster.propose(f"cmd{i}")
            sim.run(until=sim.now + 1.0)
        sim.run(until=sim.now + 5.0)
        assert cluster.state_machine_consistent()
        assert all(len(applied) == 10 for applied in cluster.applied.values())

    def test_leader_crash_new_leader_and_progress(self, sim, mesh5, rngs):
        cluster, network = self._cluster(sim, mesh5, rngs)
        sim.run(until=10.0)
        old_leader = cluster.leader().node_id
        cluster.propose("before-crash")
        sim.run(until=sim.now + 2.0)
        network.set_node_up(old_leader, False)
        sim.run(until=sim.now + 15.0)
        new_leader = cluster.leader()
        assert new_leader is not None and new_leader.node_id != old_leader
        assert cluster.propose("after-crash")
        sim.run(until=sim.now + 5.0)
        assert cluster.state_machine_consistent()
        live_applied = [cluster.applied[n] for n in cluster.nodes if n != old_leader]
        assert all("after-crash" in applied for applied in live_applied)

    def test_minority_partition_no_commit(self, sim, mesh5, rngs, trace):
        cluster, network = self._cluster(sim, mesh5, rngs)
        sim.run(until=10.0)
        leader = cluster.leader()
        # Partition the leader alone: it cannot commit new entries.
        partitions = PartitionManager(sim, network.topology, trace=trace)
        partitions.isolate_node(leader.node_id)
        before = leader.commit_index
        leader.propose("doomed")
        sim.run(until=sim.now + 10.0)
        assert leader.commit_index == before
        # The majority side elects a fresh leader and can commit.
        majority_leader = max(
            (n for n in cluster.nodes.values()
             if n.node_id != leader.node_id and n.is_leader),
            key=lambda n: n.current_term, default=None,
        )
        assert majority_leader is not None
        majority_leader.propose("survives")
        sim.run(until=sim.now + 5.0)
        assert "survives" in cluster.applied[majority_leader.node_id]
        assert "doomed" not in cluster.applied[majority_leader.node_id]

    def test_partition_heals_consistently(self, sim, mesh5, rngs, trace):
        cluster, network = self._cluster(sim, mesh5, rngs)
        sim.run(until=10.0)
        leader = cluster.leader()
        partitions = PartitionManager(sim, network.topology, trace=trace)
        name = partitions.isolate_node(leader.node_id)
        leader.propose("uncommitted-minority")
        sim.run(until=sim.now + 10.0)
        new_leader = cluster.leader()
        new_leader.propose("majority-entry")
        sim.run(until=sim.now + 5.0)
        partitions.heal(name)
        sim.run(until=sim.now + 10.0)
        # The old leader's uncommitted entry is overwritten; logs agree.
        assert cluster.state_machine_consistent()
        assert "uncommitted-minority" not in cluster.applied[leader.node_id]
        assert "majority-entry" in cluster.applied[leader.node_id]

    def test_propose_on_follower_rejected(self, sim, mesh5, rngs):
        cluster, _ = self._cluster(sim, mesh5, rngs)
        sim.run(until=10.0)
        follower = next(n for n in cluster.nodes.values() if not n.is_leader)
        assert follower.propose("nope") is None

    def test_election_timeout_validation(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        with pytest.raises(ValueError):
            RaftNode(sim, network, "n1", nodes, rngs.stream("r"),
                     heartbeat_interval=1.0, election_timeout=(1.5, 3.0))


class TestRegistry:
    def test_advertise_and_lookup_across_nodes(self, sim, gossip_cluster):
        cluster, _ = gossip_cluster
        registries = {n: ServiceRegistry(g) for n, g in cluster.items()}
        registries["n1"].advertise(ServiceRecord("db", "n1", capabilities=("sql",)))
        registries["n2"].advertise(ServiceRecord("db", "n2", capabilities=("sql",)))
        sim.run(until=10.0)
        instances = registries["n5"].instances("db")
        assert [r.device_id for r in instances] == ["n1", "n2"]
        assert registries["n5"].lookup("db").device_id == "n1"

    def test_withdraw_hides_instance(self, sim, gossip_cluster):
        cluster, _ = gossip_cluster
        registries = {n: ServiceRegistry(g) for n, g in cluster.items()}
        registries["n1"].advertise(ServiceRecord("db", "n1"))
        sim.run(until=10.0)
        registries["n1"].withdraw("db", "n1")
        sim.run(until=20.0)
        assert registries["n5"].lookup("db") is None
        assert len(registries["n5"].instances("db", healthy_only=False)) == 1

    def test_capability_search(self, sim, gossip_cluster):
        cluster, _ = gossip_cluster
        registries = {n: ServiceRegistry(g) for n, g in cluster.items()}
        registries["n1"].advertise(ServiceRecord("ml", "n1", capabilities=("inference",)))
        registries["n2"].advertise(ServiceRecord("db", "n2", capabilities=("sql",)))
        sim.run(until=10.0)
        records = registries["n3"].by_capability("inference")
        assert [r.service_name for r in records] == ["ml"]
        assert registries["n3"].known_services() == ["db", "ml"]

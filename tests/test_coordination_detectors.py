"""Unit tests for failure detectors and SWIM membership."""

import pytest

from repro.coordination.failure_detector import (
    HeartbeatFailureDetector,
    PhiAccrualFailureDetector,
)
from repro.coordination.membership import MemberState, MembershipProtocol


class TestHeartbeatDetector:
    def _pair(self, sim, mesh5):
        nodes, _, network = mesh5
        events = []
        detectors = {
            node: HeartbeatFailureDetector(
                sim, network, node, nodes, period=0.5, timeout=2.0,
                on_suspect=lambda peer, n=node: events.append(("suspect", n, peer)),
                on_alive=lambda peer, n=node: events.append(("alive", n, peer)),
            )
            for node in nodes
        }
        return detectors, events, network

    def test_no_suspicion_in_healthy_cluster(self, sim, mesh5):
        detectors, events, _ = self._pair(sim, mesh5)
        for detector in detectors.values():
            detector.start()
        sim.run(until=20.0)
        assert events == []
        assert detectors["n1"].alive_peers == ["n2", "n3", "n4", "n5"]

    def test_crashed_node_suspected(self, sim, mesh5):
        detectors, events, network = self._pair(sim, mesh5)
        for detector in detectors.values():
            detector.start()
        sim.schedule(5.0, lambda s: network.set_node_up("n3", False))
        sim.run(until=15.0)
        suspecters = {n for kind, n, peer in events if kind == "suspect" and peer == "n3"}
        assert suspecters == {"n1", "n2", "n4", "n5"}
        assert detectors["n1"].suspects("n3")

    def test_recovered_node_unsuspected(self, sim, mesh5):
        detectors, events, network = self._pair(sim, mesh5)
        for detector in detectors.values():
            detector.start()
        sim.schedule(5.0, lambda s: network.set_node_up("n3", False))
        sim.schedule(12.0, lambda s: network.set_node_up("n3", True))
        sim.run(until=25.0)
        assert not detectors["n1"].suspects("n3")
        assert any(kind == "alive" and peer == "n3" for kind, n, peer in events)

    def test_timeout_must_exceed_period(self, sim, mesh5):
        nodes, _, network = mesh5
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(sim, network, "n1", nodes,
                                     period=1.0, timeout=0.5)


class TestPhiAccrualDetector:
    def test_phi_grows_with_silence(self, sim, mesh5):
        nodes, _, network = mesh5
        detectors = {
            node: PhiAccrualFailureDetector(sim, network, node, nodes, period=0.5)
            for node in nodes
        }
        for detector in detectors.values():
            detector.start()
        sim.run(until=10.0)
        phi_alive = detectors["n1"].phi("n2")
        network.set_node_up("n2", False)
        sim.run(until=20.0)
        phi_dead = detectors["n1"].phi("n2")
        assert phi_dead > phi_alive
        assert phi_dead > 8.0

    def test_suspect_callback_fires(self, sim, mesh5):
        nodes, _, network = mesh5
        suspected = []
        detectors = {
            node: PhiAccrualFailureDetector(
                sim, network, node, nodes, period=0.5, threshold=8.0,
                on_suspect=lambda peer, n=node: suspected.append((n, peer)),
            )
            for node in nodes
        }
        for detector in detectors.values():
            detector.start()
        sim.schedule(10.0, lambda s: network.set_node_up("n5", False))
        sim.run(until=30.0)
        assert ("n1", "n5") in suspected
        assert detectors["n1"].suspects("n5")
        assert "n5" not in detectors["n1"].alive_peers

    def test_no_history_is_not_suspicious(self, sim, mesh5):
        nodes, _, network = mesh5
        detector = PhiAccrualFailureDetector(sim, network, "n1", nodes)
        assert detector.phi("n2") == 0.0

    def test_recovery_clears_suspicion(self, sim, mesh5):
        nodes, _, network = mesh5
        detectors = {
            node: PhiAccrualFailureDetector(sim, network, node, nodes, period=0.5)
            for node in nodes
        }
        for detector in detectors.values():
            detector.start()
        sim.schedule(10.0, lambda s: network.set_node_up("n5", False))
        sim.schedule(25.0, lambda s: network.set_node_up("n5", True))
        sim.run(until=35.0)
        assert not detectors["n1"].suspects("n5")


class TestMembership:
    def _cluster(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        members = {
            node: MembershipProtocol(sim, network, node, nodes,
                                     rngs.stream(f"swim:{node}"))
            for node in nodes
        }
        for protocol in members.values():
            protocol.start()
        return members, network

    def test_stable_cluster_stays_alive(self, sim, mesh5, rngs):
        members, _ = self._cluster(sim, mesh5, rngs)
        sim.run(until=30.0)
        for protocol in members.values():
            assert protocol.alive_members() == ["n1", "n2", "n3", "n4", "n5"]

    def test_crashed_member_declared_dead_everywhere(self, sim, mesh5, rngs):
        members, network = self._cluster(sim, mesh5, rngs)
        sim.run(until=5.0)
        network.set_node_up("n2", False)
        sim.run(until=40.0)
        for node, protocol in members.items():
            if node != "n2":
                assert protocol.state_of("n2") == MemberState.DEAD, node

    def test_changes_reported_via_callback(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        changes = []
        protocol = MembershipProtocol(
            sim, network, "n1", nodes, rngs.stream("swim:n1"),
            on_change=lambda node, state: changes.append((node, state)),
        )
        others = {
            node: MembershipProtocol(sim, network, node, nodes,
                                     rngs.stream(f"swim:{node}"))
            for node in nodes if node != "n1"
        }
        protocol.start()
        for p in others.values():
            p.start()
        sim.run(until=5.0)
        network.set_node_up("n3", False)
        sim.run(until=40.0)
        assert (("n3", MemberState.SUSPECT) in changes
                or ("n3", MemberState.DEAD) in changes)

    def test_recovered_member_rejoins_alive(self, sim, mesh5, rngs):
        members, network = self._cluster(sim, mesh5, rngs)
        sim.run(until=5.0)
        network.set_node_up("n2", False)
        sim.run(until=20.0)
        network.set_node_up("n2", True)
        sim.run(until=80.0)
        alive_views = [p.considers_alive("n2") for n, p in members.items() if n != "n2"]
        # Refutation via incarnation bump: the cluster re-admits n2.
        assert all(alive_views)

    def test_considers_alive_unknown_node(self, sim, mesh5, rngs):
        members, _ = self._cluster(sim, mesh5, rngs)
        assert members["n1"].state_of("ghost") is None
        assert not members["n1"].considers_alive("ghost")

"""Tests for Raft-backed leases."""

import pytest

from repro.coordination.lease import LeaseManager, start_lease_keeper
from repro.coordination.raft import RaftCluster
from repro.network.partition import PartitionManager


@pytest.fixture
def lease_cluster(sim, mesh5, rngs):
    nodes, topology, network = mesh5
    cluster = RaftCluster(sim, network, nodes, rngs.stream("raft"))
    managers = {
        node: LeaseManager(sim, cluster.nodes[node], duration=8.0)
        for node in nodes
    }
    cluster.start()
    for manager in managers.values():
        start_lease_keeper(sim, manager, "orchestrator", period=2.0)
    return cluster, managers, network, topology


class TestLeaseAcquisition:
    def test_exactly_one_holder_emerges(self, sim, lease_cluster):
        cluster, managers, _, _ = lease_cluster
        sim.run(until=15.0)
        holders = {m.holder_of("orchestrator") for m in managers.values()}
        assert len(holders) == 1
        holder = holders.pop()
        assert holder is not None
        assert managers[holder].i_hold("orchestrator")
        assert managers[holder].remaining("orchestrator") > 0.0

    def test_all_replicas_agree(self, sim, lease_cluster):
        cluster, managers, _, _ = lease_cluster
        sim.run(until=20.0)
        views = [m.holder_of("orchestrator") for m in managers.values()]
        assert len(set(views)) == 1

    def test_renewal_keeps_lease_beyond_duration(self, sim, lease_cluster):
        cluster, managers, _, _ = lease_cluster
        sim.run(until=15.0)
        holder = next(iter(
            m.holder_of("orchestrator") for m in managers.values()))
        sim.run(until=40.0)   # several lease durations later
        assert managers[holder].holder_of("orchestrator") == holder

    def test_release_frees_the_lease(self, sim, lease_cluster):
        cluster, managers, _, _ = lease_cluster
        sim.run(until=15.0)
        holder = managers["n1"].holder_of("orchestrator")
        managers[holder].release("orchestrator")
        sim.run(until=sim.now + 1.0)
        # Freed momentarily; the keeper re-acquires on its next tick.
        sim.run(until=sim.now + 5.0)
        assert managers["n1"].holder_of("orchestrator") is not None


class TestLeaseFailover:
    def test_holder_crash_hands_over_after_expiry(self, sim, lease_cluster):
        cluster, managers, network, _ = lease_cluster
        sim.run(until=15.0)
        old_holder = managers["n1"].holder_of("orchestrator")
        network.set_node_up(old_holder, False)
        # Within the lease duration, live replicas still honour the grant
        # (no split brain: the crashed holder cannot renew, but neither
        # can anyone else steal early).
        sim.run(until=sim.now + 3.0)
        live = [m for n, m in managers.items() if n != old_holder]
        early_views = {m.holder_of("orchestrator") for m in live}
        assert early_views <= {old_holder, None}
        # After expiry plus a Raft re-election, a live node takes over.
        sim.run(until=sim.now + 30.0)
        new_views = {m.holder_of("orchestrator") for m in live}
        assert len(new_views) == 1
        new_holder = new_views.pop()
        assert new_holder is not None and new_holder != old_holder

    def test_partitioned_holder_loses_lease_majority_side(self, sim, lease_cluster, trace):
        cluster, managers, network, topology = lease_cluster
        sim.run(until=15.0)
        holder = managers["n1"].holder_of("orchestrator")
        partitions = PartitionManager(sim, topology, trace=trace)
        partitions.isolate_node(holder)
        sim.run(until=sim.now + 30.0)
        live = [m for n, m in managers.items() if n != holder]
        views = {m.holder_of("orchestrator") for m in live}
        assert len(views) == 1
        assert views.pop() != holder


class TestLeaseValidation:
    def test_invalid_duration_raises(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        cluster = RaftCluster(sim, network, nodes, rngs.stream("raft"))
        with pytest.raises(ValueError):
            LeaseManager(sim, cluster.nodes["n1"], duration=0.0)

    def test_follower_cannot_propose(self, sim, lease_cluster):
        cluster, managers, _, _ = lease_cluster
        sim.run(until=15.0)
        follower = next(n for n, node in cluster.nodes.items()
                        if not node.is_leader)
        assert managers[follower].acquire("other-lease") is False

    def test_ledger_chaining_preserved(self, sim, lease_cluster):
        """LeaseManager wraps raft.apply without breaking the cluster's
        own applied-command ledger."""
        cluster, managers, _, _ = lease_cluster
        sim.run(until=15.0)
        assert cluster.state_machine_consistent()
        assert any(cluster.applied.values())

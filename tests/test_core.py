"""Unit tests for the core resilience framework."""

import math

import pytest

from repro.core.assessment import comparison_table, recovery_table, report_dict
from repro.core.requirements import (
    AvailabilityRequirement,
    ControlAvailabilityRequirement,
    CoverageRequirement,
    EvaluationContext,
    FreshnessRequirement,
    LatencyRequirement,
    PrivacyRequirement,
)
from repro.core.resilience import ResilienceAnalyzer, ResilienceReport
from repro.core.system import IoTSystem
from repro.core.vectors import (
    MATURITY_TABLE,
    DisruptionVector,
    MaturityLevel,
    features_of,
    table_row,
)
from repro.devices.base import DeviceClass
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


@pytest.fixture
def ctx(metrics, trace):
    return EvaluationContext(metrics=metrics, trace=trace)


class TestRequirements:
    def test_availability_graded_toward_target(self, ctx, metrics):
        metrics.set_level("up:d1", 0.0, 1.0)
        metrics.set_level("up:d1", 5.0, 0.0)    # 50% availability over [0,10)
        requirement = AvailabilityRequirement(series_names=["up:d1"], target=1.0)
        assert requirement.satisfaction(ctx, 0.0, 10.0) == pytest.approx(0.5)

    def test_availability_capped_at_one(self, ctx, metrics):
        metrics.set_level("up:d1", 0.0, 1.0)
        requirement = AvailabilityRequirement(series_names=["up:d1"], target=0.5)
        assert requirement.satisfaction(ctx, 0.0, 10.0) == 1.0

    def test_availability_none_without_series(self, ctx):
        requirement = AvailabilityRequirement(series_names=["up:ghost"], target=1.0)
        assert requirement.satisfaction(ctx, 0.0, 10.0) is None

    def test_availability_averages_multiple_series(self, ctx, metrics):
        metrics.set_level("up:a", 0.0, 1.0)
        metrics.set_level("up:b", 0.0, 0.0)
        requirement = AvailabilityRequirement(series_names=["up:a", "up:b"], target=1.0)
        assert requirement.satisfaction(ctx, 0.0, 10.0) == pytest.approx(0.5)

    def test_latency_fraction_on_time(self, ctx, metrics):
        for i in range(10):
            metrics.record("lat", float(i), 0.05 if i < 9 else 5.0)
        requirement = LatencyRequirement(series_name="lat", deadline=0.1, quantile=0.9)
        assert requirement.satisfaction(ctx, 0.0, 10.0) == pytest.approx(1.0)
        strict = LatencyRequirement(series_name="lat", deadline=0.1, quantile=1.0)
        assert strict.satisfaction(ctx, 0.0, 10.0) == pytest.approx(0.9)

    def test_latency_none_without_samples(self, ctx, metrics):
        requirement = LatencyRequirement(series_name="lat")
        assert requirement.satisfaction(ctx, 0.0, 10.0) is None

    def test_freshness(self, ctx, metrics):
        metrics.record("fresh", 1.0, 2.0)
        metrics.record("fresh", 2.0, 10.0)
        requirement = FreshnessRequirement(series_name="fresh", max_age=5.0)
        assert requirement.satisfaction(ctx, 0.0, 10.0) == pytest.approx(0.5)

    def test_privacy_binary(self, ctx, trace):
        requirement = PrivacyRequirement()
        assert requirement.satisfaction(ctx, 0.0, 10.0) == 1.0
        trace.emit(5.0, "governance", "privacy-violation", subject="d1")
        assert requirement.satisfaction(ctx, 0.0, 10.0) == 0.0
        # Windows before the violation stay clean.
        assert requirement.satisfaction(ctx, 0.0, 5.0) == 1.0

    def test_coverage_rate(self, ctx, metrics):
        for i in range(5):
            metrics.record("ingest", float(i), 1.0)
        requirement = CoverageRequirement(series_name="ingest", target_rate=1.0)
        assert requirement.satisfaction(ctx, 0.0, 5.0) == pytest.approx(1.0)
        assert requirement.satisfaction(ctx, 0.0, 10.0) == pytest.approx(0.5)

    def test_control_availability(self, ctx, metrics):
        metrics.set_level("controlled:d1", 0.0, 1.0)
        metrics.set_level("controlled:d2", 0.0, 0.0)
        requirement = ControlAvailabilityRequirement(
            series_names=["controlled:d1", "controlled:d2"], target=1.0,
        )
        assert requirement.satisfaction(ctx, 0.0, 10.0) == pytest.approx(0.5)


class TestResilienceAnalyzer:
    def _ctx_with_outage(self):
        metrics = MetricsRecorder()
        trace = TraceLog()
        # Signal: up 0-10, down 10-20 (the disruption), up from 20.
        metrics.set_level("up:d1", 0.0, 1.0)
        metrics.set_level("up:d1", 10.0, 0.0)
        metrics.set_level("up:d1", 20.0, 1.0)
        return EvaluationContext(metrics=metrics, trace=trace)

    def test_baseline_vs_disruption_split(self):
        ctx = self._ctx_with_outage()
        requirement = AvailabilityRequirement(series_names=["up:d1"], target=1.0)
        analyzer = ResilienceAnalyzer([requirement], window=1.0)
        report = analyzer.analyze(ctx, 30.0, [(10.0, 20.0)])
        assessment = report.assessments[0]
        assert assessment.baseline == pytest.approx(1.0)
        assert assessment.under_disruption == pytest.approx(0.0)
        assert report.resilience_score == pytest.approx(0.0)
        assert report.baseline_score == pytest.approx(1.0)

    def test_recovery_time_zero_when_instant(self):
        ctx = self._ctx_with_outage()
        requirement = AvailabilityRequirement(series_names=["up:d1"], target=1.0)
        analyzer = ResilienceAnalyzer([requirement], window=1.0)
        report = analyzer.analyze(ctx, 30.0, [(10.0, 20.0)])
        assessment = report.assessments[0]
        assert assessment.recovery_times == [0.0]
        assert assessment.mean_recovery_time == 0.0
        assert assessment.unrecovered == 0

    def test_unrecovered_counted_as_inf(self):
        metrics = MetricsRecorder()
        metrics.set_level("up:d1", 0.0, 1.0)
        metrics.set_level("up:d1", 10.0, 0.0)   # never comes back
        ctx = EvaluationContext(metrics=metrics, trace=TraceLog())
        requirement = AvailabilityRequirement(series_names=["up:d1"], target=1.0)
        analyzer = ResilienceAnalyzer([requirement], window=1.0)
        report = analyzer.analyze(ctx, 30.0, [(10.0, 15.0)])
        assessment = report.assessments[0]
        assert assessment.unrecovered == 1
        assert assessment.mean_recovery_time is None

    def test_weighted_score(self):
        ctx = self._ctx_with_outage()
        strong = AvailabilityRequirement(series_names=["up:d1"], target=1.0,
                                         name="heavy", weight=3.0)
        # A second requirement that's always satisfied.
        ctx.metrics.set_level("up:d2", 0.0, 1.0)
        light = AvailabilityRequirement(series_names=["up:d2"], target=1.0,
                                        name="light", weight=1.0)
        analyzer = ResilienceAnalyzer([strong, light], window=1.0)
        report = analyzer.analyze(ctx, 30.0, [(10.0, 20.0)])
        assert report.resilience_score == pytest.approx(0.25)   # (3*0 + 1*1) / 4

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            ResilienceAnalyzer([], window=0.0)

    def test_assessment_lookup(self):
        ctx = self._ctx_with_outage()
        requirement = AvailabilityRequirement(series_names=["up:d1"],
                                              name="avail", target=1.0)
        report = ResilienceAnalyzer([requirement]).analyze(ctx, 30.0, [])
        assert report.assessment("avail").name == "avail"
        with pytest.raises(KeyError):
            report.assessment("ghost")


class TestVectors:
    def test_table_complete(self):
        assert len(MATURITY_TABLE) == 5 * 4
        for vector in DisruptionVector:
            row = table_row(vector)
            assert set(row) == set(MaturityLevel)
            assert all(isinstance(text, str) and text for text in row.values())

    def test_feature_monotonicity(self):
        """Mechanisms only accumulate as maturity rises."""
        ml1 = features_of(MaturityLevel.ML1)
        ml2 = features_of(MaturityLevel.ML2)
        ml3 = features_of(MaturityLevel.ML3)
        ml4 = features_of(MaturityLevel.ML4)
        assert not ml1.has_cloud and ml2.has_cloud
        assert not ml2.edge_compute and ml3.edge_compute
        assert not ml3.failover_replacement and ml4.failover_replacement
        assert not ml3.data_replication and ml4.data_replication
        assert ml4.governance_enforced and ml3.governance_enforced
        assert not ml2.governance_enforced

    def test_levels_ordered(self):
        assert MaturityLevel.ML1 < MaturityLevel.ML4


class TestIoTSystem:
    def test_landscape_construction(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 3, seed=1)
        assert len(system.fleet) == 1 + 2 + 6   # cloud + edges + devices
        assert system.edge_nodes == ["edge0", "edge1"]
        assert system.site_of("d1.2") == "edge1"
        assert system.site_of("edge0") == "edge0"
        assert system.site_of("ghost") is None

    def test_domain_per_site(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 1, seed=1,
                                                     domain_per_site=True)
        assert system.device("d0.0").domain == "dom0"
        assert system.device("d1.0").domain == "dom1"

    def test_run_advances_clock(self):
        system = IoTSystem(seed=1)
        system.run(until=5.0)
        assert system.sim.now == 5.0


class TestAssessment:
    def _report(self, label):
        metrics = MetricsRecorder()
        metrics.set_level("up:d1", 0.0, 1.0)
        ctx = EvaluationContext(metrics=metrics, trace=TraceLog())
        requirement = AvailabilityRequirement(series_names=["up:d1"],
                                              name="avail", target=1.0)
        return ResilienceAnalyzer([requirement]).analyze(
            ctx, 10.0, [(2.0, 4.0)], label=label)

    def test_comparison_table_renders(self):
        table = comparison_table([self._report("A"), self._report("B")])
        assert "avail" in table
        assert "A" in table and "B" in table
        assert "resilience score" in table

    def test_recovery_table_renders(self):
        assert "resilience score" in recovery_table([self._report("A")])

    def test_report_dict_serializable(self):
        import json

        payload = report_dict(self._report("A"))
        encoded = json.dumps(payload)
        assert "avail" in encoded

    def test_empty_table(self):
        assert comparison_table([]) == "(no reports)"

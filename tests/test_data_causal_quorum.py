"""Tests for vector clocks, causal broadcast and the quorum KV store."""

import pytest

from repro.data.causal import (
    CausalBroadcast,
    VectorClock,
    causally_consistent,
)
from repro.data.quorum import QuorumClient, QuorumReplica, Versioned
from repro.network.partition import PartitionManager
from repro.network.topology import build_mesh_topology
from repro.network.transport import Network


class TestVectorClock:
    def test_increment_and_get(self):
        clock = VectorClock()
        clock.increment("a").increment("a").increment("b")
        assert clock.get("a") == 2 and clock.get("b") == 1 and clock.get("c") == 0

    def test_merge_pointwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"y": 4, "z": 2})
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 4, "z": 2}

    def test_happens_before(self):
        earlier = VectorClock({"a": 1})
        later = VectorClock({"a": 2, "b": 1})
        assert earlier.happens_before(later)
        assert not later.happens_before(earlier)

    def test_equal_clocks_not_before(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"a": 1})
        assert not a.happens_before(b)
        assert not a.concurrent_with(b)
        assert a == b

    def test_concurrency(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"b": 1})
        assert a.concurrent_with(b) and b.concurrent_with(a)

    def test_copy_independent(self):
        a = VectorClock({"a": 1})
        clone = a.copy()
        a.increment("a")
        assert clone.get("a") == 1


@pytest.fixture
def causal_cluster(sim, mesh5):
    nodes, _, network = mesh5
    logs = {n: [] for n in nodes}
    broadcasts = {
        n: CausalBroadcast(
            sim, network, n, nodes,
            on_deliver=lambda origin, payload, n=n: logs[n].append((origin, payload)),
            retransmit_period=1.0,
        )
        for n in nodes
    }
    return broadcasts, logs, network


class TestCausalBroadcast:
    def test_all_deliver_everything(self, sim, causal_cluster):
        broadcasts, logs, _ = causal_cluster
        broadcasts["n1"].broadcast("hello")
        broadcasts["n2"].broadcast("world")
        sim.run(until=5.0)
        for node, log in logs.items():
            assert len(log) == 2, node

    def test_local_delivery_immediate(self, sim, causal_cluster):
        broadcasts, logs, _ = causal_cluster
        broadcasts["n1"].broadcast("x")
        assert logs["n1"] == [("n1", "x")]

    def test_causal_chain_respected(self, sim, causal_cluster):
        """n1 sends a; n2 (having seen a) sends b; everyone must deliver
        a before b."""
        broadcasts, logs, _ = causal_cluster
        broadcasts["n1"].broadcast("a")
        sim.run(until=2.0)
        broadcasts["n2"].broadcast("b")   # causally after a
        sim.run(until=10.0)
        for node, log in logs.items():
            payloads = [p for _, p in log]
            assert payloads.index("a") < payloads.index("b"), node

    def test_fifo_per_origin(self, sim, causal_cluster):
        broadcasts, logs, _ = causal_cluster
        for i in range(10):
            broadcasts["n3"].broadcast(i)
        sim.run(until=10.0)
        for node, log in logs.items():
            from_n3 = [p for origin, p in log if origin == "n3"]
            assert from_n3 == list(range(10)), node
        assert causally_consistent(list(logs.values()))

    def test_buffered_until_dependency_arrives(self, sim, causal_cluster):
        """Deliveries wait for causal predecessors even if transport
        reorders (simulated by a partition delaying one path)."""
        broadcasts, logs, network = causal_cluster
        partitions = PartitionManager(sim, network.topology)
        # Cut n1<->n5 only: n5 misses n1's message initially.
        link = network.topology.link_between("n1", "n5")
        partitions.cut_links([link])
        broadcasts["n1"].broadcast("a")
        sim.run(until=1.0)
        broadcasts["n2"].broadcast("b")    # depends on a
        sim.run(until=2.0)
        # n5 may have b buffered but MUST not have delivered it before a.
        payloads_n5 = [p for _, p in logs["n5"]]
        if "b" in payloads_n5:
            assert "a" in payloads_n5 and \
                payloads_n5.index("a") < payloads_n5.index("b")
        partitions.heal_all()
        sim.run(until=15.0)
        payloads_n5 = [p for _, p in logs["n5"]]
        assert payloads_n5.index("a") < payloads_n5.index("b")
        assert broadcasts["n5"].buffered_count == 0

    def test_retransmission_recovers_losses(self, sim, rngs):
        """With a lossy mesh, NACK-driven retransmission still delivers."""
        from repro.network.link import LinkProfile
        from repro.network.topology import Topology

        lossy = LinkProfile("lossy", base_latency=0.002, jitter=0.001,
                            loss_rate=0.3)
        nodes = ["a", "b", "c"]
        topology = Topology(rng=rngs.stream("net"))
        for i, x in enumerate(nodes):
            for y in nodes[i + 1:]:
                topology.add_link_with_profile(x, y, lossy)
        network = Network(sim, topology)
        logs = {n: [] for n in nodes}
        broadcasts = {
            n: CausalBroadcast(
                sim, network, n, nodes,
                on_deliver=lambda o, p, n=n: logs[n].append((o, p)),
                retransmit_period=0.5,
            )
            for n in nodes
        }
        for i in range(10):
            broadcasts["a"].broadcast(i)
            sim.run(until=sim.now + 0.5)
        sim.run(until=sim.now + 20.0)
        for node in nodes:
            assert [p for o, p in logs[node] if o == "a"] == list(range(10)), node


@pytest.fixture
def quorum_rig(sim, mesh5):
    nodes, topology, network = mesh5
    replicas = {n: QuorumReplica(sim, network, n) for n in nodes[:3]}
    client = QuorumClient(sim, network, "n4", ["n1", "n2", "n3"],
                          write_quorum=2, read_quorum=2, timeout=1.0)
    return client, replicas, network, topology


class TestQuorumStore:
    def test_write_then_read_latest(self, sim, quorum_rig):
        client, replicas, _, _ = quorum_rig
        outcomes = []
        client.write("k", "v1", callback=lambda ok: outcomes.append(ok))
        sim.run(until=2.0)
        client.write("k", "v2", callback=lambda ok: outcomes.append(ok))
        sim.run(until=4.0)
        reads = []
        client.read("k", callback=lambda ok, v: reads.append((ok, v)))
        sim.run(until=6.0)
        assert outcomes == [True, True]
        assert reads == [(True, "v2")]
        assert client.write_availability == 1.0

    def test_read_missing_key(self, sim, quorum_rig):
        client, _, _, _ = quorum_rig
        reads = []
        client.read("ghost", callback=lambda ok, v: reads.append((ok, v)))
        sim.run(until=2.0)
        assert reads == [(True, None)]

    def test_write_fails_without_quorum(self, sim, quorum_rig, trace):
        client, _, network, topology = quorum_rig
        partitions = PartitionManager(sim, topology, trace=trace)
        partitions.isolate_node("n1")
        partitions.isolate_node("n2")   # only n3 remains reachable
        outcomes = []
        client.write("k", "v", callback=lambda ok: outcomes.append(ok))
        sim.run(until=3.0)
        assert outcomes == [False]
        assert client.failed_writes == 1
        assert client.write_availability == 0.0

    def test_quorum_survives_minority_failure(self, sim, quorum_rig, trace):
        client, _, network, topology = quorum_rig
        PartitionManager(sim, topology, trace=trace).isolate_node("n1")
        outcomes = []
        client.write("k", "v", callback=lambda ok: outcomes.append(ok))
        sim.run(until=3.0)
        assert outcomes == [True]   # 2 of 3 replicas suffice

    def test_read_sees_latest_despite_stale_replica(self, sim, quorum_rig, trace):
        """R + W > N: a replica that missed the last write cannot hide it."""
        client, replicas, network, topology = quorum_rig
        partitions = PartitionManager(sim, topology, trace=trace)
        name = partitions.isolate_node("n3")
        client.write("k", "fresh")
        sim.run(until=2.0)
        partitions.heal(name)    # n3 back, holding no value for k
        reads = []
        client.read("k", callback=lambda ok, v: reads.append((ok, v)))
        sim.run(until=4.0)
        assert reads and reads[0][1] == "fresh"

    def test_invalid_quorum_raises(self, sim, mesh5):
        nodes, _, network = mesh5
        with pytest.raises(ValueError):
            QuorumClient(sim, network, "n4", ["n1", "n2"], write_quorum=3,
                         read_quorum=1)

    def test_versioned_stamp_ordering(self):
        older = Versioned("a", 1, "x")
        newer = Versioned("b", 2, "a")
        assert newer.stamp() > older.stamp()

"""Unit tests for CRDTs (deterministic cases; see
test_property_crdt.py for the algebraic-law property tests)."""

import pytest

from repro.data.crdt import GCounter, GSet, LWWMap, LWWRegister, ORSet, PNCounter


class TestGCounter:
    def test_increment_and_value(self):
        counter = GCounter("a")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError):
            GCounter("a").increment(-1)

    def test_merge_takes_max_per_replica(self):
        a, b = GCounter("a"), GCounter("b")
        a.increment(3)
        b.increment(2)
        b.merge(a)
        a.merge(b)
        assert a.value == b.value == 5
        # Re-merging is idempotent.
        a.merge(b)
        assert a.value == 5

    def test_copy_is_independent(self):
        a = GCounter("a")
        a.increment(1)
        clone = a.copy()
        a.increment(1)
        assert clone.value == 1 and a.value == 2


class TestPNCounter:
    def test_up_and_down(self):
        counter = PNCounter("a")
        counter.increment(10)
        counter.decrement(3)
        assert counter.value == 7

    def test_merge_commutes(self):
        a, b = PNCounter("a"), PNCounter("b")
        a.increment(5)
        b.decrement(2)
        a_copy, b_copy = a.copy(), b.copy()
        a.merge(b)
        b_copy.merge(a_copy)
        assert a.value == b_copy.value == 3

    def test_can_go_negative(self):
        counter = PNCounter("a")
        counter.decrement(4)
        assert counter.value == -4


class TestGSet:
    def test_add_and_union_merge(self):
        a, b = GSet(), GSet()
        a.add(1)
        b.add(2)
        a.merge(b)
        assert a.items == {1, 2}
        assert 1 in a and len(a) == 2

    def test_iteration(self):
        s = GSet()
        s.add("x")
        assert list(s) == ["x"]


class TestORSet:
    def test_add_remove_locally(self):
        s = ORSet("a")
        s.add("x")
        assert "x" in s
        s.remove("x")
        assert "x" not in s

    def test_concurrent_add_survives_remove(self):
        """Observed-remove semantics: a remove only kills adds it has seen."""
        a, b = ORSet("a"), ORSet("b")
        a.add("x")
        b.add("x")           # concurrent add with a different tag
        a.remove("x")        # removes only a's observed tag
        a.merge(b)
        b.merge(a)
        assert "x" in a and "x" in b

    def test_remove_after_sync_removes_everywhere(self):
        a, b = ORSet("a"), ORSet("b")
        a.add("x")
        b.merge(a)           # b observes a's add
        b.remove("x")
        a.merge(b)
        assert "x" not in a and "x" not in b

    def test_readd_after_remove(self):
        s = ORSet("a")
        s.add("x")
        s.remove("x")
        s.add("x")
        assert "x" in s

    def test_len_and_iter(self):
        s = ORSet("a")
        s.add("x")
        s.add("y")
        assert len(s) == 2
        assert sorted(s) == ["x", "y"]


class TestLWWRegister:
    def test_later_timestamp_wins(self):
        register = LWWRegister("a")
        register.set("old", 1.0)
        register.set("new", 2.0)
        assert register.value == "new"

    def test_earlier_timestamp_ignored(self):
        register = LWWRegister("a")
        register.set("new", 2.0)
        register.set("stale", 1.0)
        assert register.value == "new"

    def test_tie_broken_by_replica_id(self):
        a, b = LWWRegister("a"), LWWRegister("b")
        a.set("from-a", 1.0)
        b.set("from-b", 1.0)
        a.merge(b)
        b.merge(a)
        assert a.value == b.value == "from-b"

    def test_merge_commutative(self):
        a, b = LWWRegister("a"), LWWRegister("b")
        a.set(1, 5.0)
        b.set(2, 3.0)
        a2, b2 = a.copy(), b.copy()
        a.merge(b)
        b2.merge(a2)
        assert a == b2


class TestLWWMap:
    def test_set_get_delete(self):
        m = LWWMap("a")
        m.set("k", 1, 1.0)
        assert m.get("k") == 1 and "k" in m
        m.delete("k", 2.0)
        assert m.get("k") is None and "k" not in m

    def test_stale_delete_loses(self):
        m = LWWMap("a")
        m.set("k", 1, 5.0)
        m.delete("k", 1.0)   # older than the set
        assert m.get("k") == 1

    def test_merge_per_key(self):
        a, b = LWWMap("a"), LWWMap("b")
        a.set("x", 1, 1.0)
        b.set("y", 2, 1.0)
        b.set("x", 99, 2.0)
        a.merge(b)
        assert a.get("x") == 99 and a.get("y") == 2
        assert a.keys() == {"x", "y"}
        assert len(a) == 2

    def test_delete_propagates_via_merge(self):
        a, b = LWWMap("a"), LWWMap("b")
        a.set("k", 1, 1.0)
        b.merge(a)
        a.delete("k", 2.0)
        b.merge(a)
        assert b.get("k") is None

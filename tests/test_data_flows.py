"""Unit tests for data items, lineage, sync, pub/sub and data quality."""

import pytest

from repro.data.item import DataItem, DataSensitivity
from repro.data.lineage import LineageTracker
from repro.data.crdt import GCounter, LWWMap
from repro.data.pubsub import Broker, PubSubNode
from repro.data.quality import DataQualityMonitor
from repro.data.sync import ReplicaStore, SyncProtocol, converged
from repro.network.partition import PartitionManager
from repro.network.transport import Network
from repro.network.topology import build_mesh_topology


class TestDataItem:
    def _item(self):
        return DataItem("k", 1, "dev", "dom", 0.0, DataSensitivity.PERSONAL,
                        subject="alice")

    def test_derive_links_parent(self):
        item = self._item()
        derived = item.derive("k2", 2, "edge", "dom", 1.0)
        assert derived.parent_ids == (item.item_id,)
        assert derived.sensitivity == DataSensitivity.PERSONAL
        assert derived.subject == "alice"
        assert derived.is_derived and not item.is_derived

    def test_derive_cannot_lower_sensitivity(self):
        item = self._item()
        with pytest.raises(ValueError):
            item.derive("k2", 2, "edge", "dom", 1.0,
                        sensitivity=DataSensitivity.PUBLIC)

    def test_derive_can_raise_sensitivity(self):
        item = self._item()
        up = item.derive("k2", 2, "edge", "dom", 1.0,
                         sensitivity=DataSensitivity.SENSITIVE)
        assert up.sensitivity == DataSensitivity.SENSITIVE

    def test_anonymize_strips_subject_and_lowers(self):
        item = self._item()
        anonymous = item.anonymize("edge", 1.0)
        assert anonymous.sensitivity == DataSensitivity.PUBLIC
        assert anonymous.subject is None
        assert anonymous.parent_ids == (item.item_id,)

    def test_age(self):
        item = self._item()
        assert item.age(5.0) == 5.0
        assert item.age(-1.0) == 0.0

    def test_unique_ids(self):
        assert self._item().item_id != self._item().item_id


class TestLineage:
    def test_origins_through_derivation_chain(self):
        tracker = LineageTracker()
        root = DataItem("raw", 1, "sensor", "dom", 0.0)
        mid = root.derive("agg", 2, "edge", "dom", 1.0)
        top = mid.derive("report", 3, "cloud", "dom", 2.0)
        for item, t in ((root, 0.0), (mid, 1.0), (top, 2.0)):
            tracker.record_created(item, t, item.producer)
        assert [i.key for i in tracker.origins(top.item_id)] == ["raw"]
        assert root.item_id in tracker.ancestors(top.item_id)
        assert top.item_id in tracker.descendants(root.item_id)

    def test_domains_reached_includes_descendants(self):
        tracker = LineageTracker()
        root = DataItem("raw", 1, "sensor", "dom", 0.0, subject="alice")
        derived = root.derive("agg", 2, "edge", "dom", 1.0)
        tracker.record_created(root, 0.0, "sensor")
        tracker.record_created(derived, 1.0, "edge")
        tracker.record_moved(derived, 2.0, "cloud", "cloud-domain")
        assert tracker.domains_reached(root.item_id) == {"cloud-domain"}
        assert tracker.subject_exposure("alice") == {"cloud-domain"}
        assert tracker.subject_exposure("bob") == set()

    def test_denials_counted(self):
        tracker = LineageTracker()
        item = DataItem("k", 1, "d", "dom", 0.0)
        tracker.record_denied(item, 1.0, "evil", "evil-domain", "blocked")
        assert tracker.denial_count() == 1
        history = tracker.history(item.item_id)
        assert history[0].action == "denied"
        assert history[0].detail == "blocked"


@pytest.fixture
def sync_rig(sim, mesh5, rngs, trace):
    nodes, topology, network = mesh5
    stores = {}
    protocols = {}
    for node in nodes:
        store = ReplicaStore(node)
        store.register("counter", GCounter(node))
        store.register("map", LWWMap(node))
        stores[node] = store
        protocols[node] = SyncProtocol(
            sim, network, store, nodes, rngs.stream(f"sync:{node}"),
            period=0.5, trace=trace,
        )
        protocols[node].start()
    return stores, protocols, network, topology


class TestSync:
    def test_replicas_converge(self, sim, sync_rig):
        stores, _, _, _ = sync_rig
        stores["n1"].get("counter").increment(3)
        stores["n4"].get("counter").increment(2)
        sim.run(until=15.0)
        assert converged(list(stores.values()), "counter")
        assert stores["n2"].get("counter").value == 5

    def test_partition_then_convergence(self, sim, sync_rig, trace):
        stores, _, network, topology = sync_rig
        partitions = PartitionManager(sim, topology, trace=trace)
        partitions.schedule_outage(1.0, 15.0, "n3")
        sim.schedule(5.0, lambda s: stores["n3"].get("counter").increment(7))
        sim.schedule(5.0, lambda s: stores["n1"].get("counter").increment(1))
        sim.run(until=10.0)
        assert stores["n1"].get("counter").value == 1   # n3's write not seen
        sim.run(until=40.0)
        assert converged(list(stores.values()), "counter")
        assert stores["n1"].get("counter").value == 8

    def test_flow_guard_blocks_named_crdt(self, sim, mesh5, rngs, trace):
        nodes, _, network = mesh5
        stores = {n: ReplicaStore(n) for n in nodes[:2]}
        for n, store in stores.items():
            store.register("secret", GCounter(n))

        def guard(src, dst, name):
            if name == "secret":
                return False, "secret data must not sync"
            return True, "ok"

        protocols = {
            n: SyncProtocol(sim, network, stores[n], nodes[:2],
                            rngs.stream(f"s:{n}"), period=0.5,
                            flow_guard=guard, trace=trace)
            for n in nodes[:2]
        }
        for p in protocols.values():
            p.start()
        stores["n1"].get("secret").increment(5)
        sim.run(until=10.0)
        assert stores["n2"].get("secret").value == 0
        assert protocols["n1"].syncs_denied > 0
        assert trace.count(category="governance", name="sync-denied") > 0

    def test_sent_state_is_copy_not_reference(self, sim, mesh5, rngs):
        nodes, _, network = mesh5
        a, b = ReplicaStore("n1"), ReplicaStore("n2")
        a.register("c", GCounter("n1"))
        b.register("c", GCounter("n2"))
        pa = SyncProtocol(sim, network, a, ["n2"], rngs.stream("a"), period=0.5)
        pb = SyncProtocol(sim, network, b, ["n1"], rngs.stream("b"), period=0.5)
        pa.start()
        pb.start()
        a.get("c").increment(1)
        sim.run(until=5.0)
        # Mutating n2's replica must not affect n1's object.
        b.get("c").increment(10)
        assert a.get("c").value == 1

    def test_duplicate_register_raises(self):
        store = ReplicaStore("n")
        store.register("x", GCounter("n"))
        with pytest.raises(ValueError):
            store.register("x", GCounter("n"))

    def test_missing_crdt_raises(self):
        with pytest.raises(KeyError):
            ReplicaStore("n").get("ghost")


class TestPubSub:
    def test_brokered_delivery(self, sim, mesh5):
        nodes, _, network = mesh5
        broker = Broker(sim, network, "n3")
        publisher = PubSubNode(sim, network, "n1", broker="n3")
        subscriber = PubSubNode(sim, network, "n2", broker="n3")
        got = []
        subscriber.subscribe("alerts", lambda t, v, at: got.append(v))
        sim.run(until=1.0)
        publisher.publish("alerts", "fire")
        sim.run(until=2.0)
        assert got == ["fire"]
        assert broker.forwarded == 1
        assert subscriber.mean_latency > 0.0

    def test_broker_outage_silences_topics(self, sim, mesh5):
        nodes, _, network = mesh5
        Broker(sim, network, "n3")
        publisher = PubSubNode(sim, network, "n1", broker="n3")
        subscriber = PubSubNode(sim, network, "n2", broker="n3")
        got = []
        subscriber.subscribe("alerts", lambda t, v, at: got.append(v))
        sim.run(until=1.0)
        network.set_node_up("n3", False)
        publisher.publish("alerts", "lost")
        sim.run(until=2.0)
        assert got == []

    def test_brokerless_survives_any_single_failure(self, sim, mesh5):
        nodes, _, network = mesh5
        publisher = PubSubNode(sim, network, "n1")
        subscriber = PubSubNode(sim, network, "n2")
        got = []
        subscriber.subscribe("alerts", lambda t, v, at: got.append(v))
        publisher.add_remote_subscription("alerts", "n2")
        network.set_node_up("n3", False)   # some other node dies
        publisher.publish("alerts", "direct")
        sim.run(until=1.0)
        assert got == ["direct"]

    def test_local_subscriber_hears_own_publish(self, sim, mesh5):
        nodes, _, network = mesh5
        node = PubSubNode(sim, network, "n1")
        got = []
        node.subscribe("t", lambda t, v, at: got.append(v))
        node.publish("t", 1)
        assert got == [1]

    def test_remove_remote_subscription(self, sim, mesh5):
        nodes, _, network = mesh5
        publisher = PubSubNode(sim, network, "n1")
        publisher.add_remote_subscription("t", "n2")
        publisher.remove_remote_subscription("t", "n2")
        publisher.publish("t", 1)
        sim.run(until=1.0)
        assert publisher.published == 1


class TestDataQuality:
    def test_timeliness_fraction(self, metrics):
        monitor = DataQualityMonitor(metrics)
        monitor.record_transfer("k", 0.0, 0.05)
        monitor.record_transfer("k", 1.0, 1.30)
        assert monitor.timeliness("k", deadline=0.1) == 0.5
        assert monitor.timeliness("ghost", deadline=0.1) is None

    def test_transfer_before_send_raises(self, metrics):
        monitor = DataQualityMonitor(metrics)
        with pytest.raises(ValueError):
            monitor.record_transfer("k", 2.0, 1.0)

    def test_freshness_tracks_newest_production(self, metrics):
        monitor = DataQualityMonitor(metrics)
        monitor.record_update("k", produced_at=1.0, observed_at=2.0)
        monitor.record_update("k", produced_at=0.5, observed_at=3.0)  # stale arrival
        assert monitor.sample_freshness("k", now=4.0) == pytest.approx(3.0)
        assert monitor.mean_freshness("k") == pytest.approx(3.0)
        assert monitor.sample_freshness("ghost", now=4.0) is None

    def test_availability_window(self, metrics):
        monitor = DataQualityMonitor(metrics)
        monitor.set_available("k", 0.0, True)
        monitor.set_available("k", 5.0, False)
        monitor.set_available("k", 8.0, True)
        assert monitor.availability("k", 0.0, 10.0) == pytest.approx(0.7)

    def test_summary(self, metrics):
        monitor = DataQualityMonitor(metrics)
        monitor.record_transfer("k", 0.0, 0.01)
        monitor.set_available("k", 0.0, True)
        monitor.record_update("k", 0.0, 0.0)
        monitor.sample_freshness("k", 1.0)
        summary = monitor.summary(["k"], deadline=0.1, start=0.0, end=1.0)
        assert summary["k"]["timeliness"] == 1.0
        assert summary["k"]["availability"] == 1.0

"""Unit tests for resources, software stacks, devices and fleets."""

import pytest

from repro.devices.base import DEVICE_CLASS_SPECS, Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.devices.resources import Battery, InsufficientResources, ResourcePool, ResourceSpec
from repro.devices.sensor import Actuator, Sensor
from repro.devices.software import (
    STACK_PRESETS,
    Service,
    ServiceState,
    SoftwareStack,
    make_stack,
)
from repro.network.topology import build_star_topology
from repro.network.transport import Network


class TestResourcePool:
    def test_allocate_and_release(self):
        pool = ResourcePool(ResourceSpec(cpu=100, memory=100, storage=100))
        pool.allocate("a", cpu=60, memory=10)
        assert pool.available("cpu") == 40
        pool.release("a")
        assert pool.available("cpu") == 100

    def test_overallocation_raises(self):
        pool = ResourcePool(ResourceSpec(cpu=100, memory=100, storage=100))
        pool.allocate("a", cpu=80)
        with pytest.raises(InsufficientResources):
            pool.allocate("b", cpu=30)

    def test_duplicate_name_raises(self):
        pool = ResourcePool(ResourceSpec(cpu=100, memory=100, storage=100))
        pool.allocate("a", cpu=1)
        with pytest.raises(ValueError):
            pool.allocate("a", cpu=1)

    def test_negative_amount_raises(self):
        pool = ResourcePool(ResourceSpec(cpu=100, memory=100, storage=100))
        with pytest.raises(ValueError):
            pool.allocate("a", cpu=-1)

    def test_release_unknown_raises(self):
        pool = ResourcePool(ResourceSpec(cpu=100, memory=100, storage=100))
        with pytest.raises(KeyError):
            pool.release("ghost")

    def test_utilization(self):
        pool = ResourcePool(ResourceSpec(cpu=100, memory=100, storage=100))
        pool.allocate("a", cpu=25)
        assert pool.utilization("cpu") == 0.25

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            ResourceSpec(cpu=0, memory=1, storage=1)
        with pytest.raises(ValueError):
            ResourceSpec(cpu=1, memory=1, storage=1, energy_capacity=-5)


class TestBattery:
    def test_mains_powered_never_depletes(self):
        battery = Battery(None)
        assert battery.mains_powered
        assert battery.drain(1e9)
        assert battery.fraction == 1.0

    def test_drain_to_depletion(self):
        battery = Battery(10.0)
        assert battery.drain(5.0)
        assert not battery.drain(6.0)
        assert battery.depleted
        assert battery.fraction == 0.0

    def test_recharge_partial_and_full(self):
        battery = Battery(10.0)
        battery.drain(8.0)
        battery.recharge(3.0)
        assert battery.level == pytest.approx(5.0)
        battery.recharge()
        assert battery.level == 10.0

    def test_negative_drain_raises(self):
        with pytest.raises(ValueError):
            Battery(10.0).drain(-1.0)


class TestSoftwareStack:
    def test_deploy_start_stop_lifecycle(self):
        stack = make_stack("edge")
        service = Service("svc", runtime="python")
        stack.deploy(service)
        assert service.state == ServiceState.STARTING
        stack.start("svc")
        assert service.state == ServiceState.RUNNING
        stack.stop("svc")
        assert service.state == ServiceState.STOPPED

    def test_runtime_mismatch_raises(self):
        stack = make_stack("bare")   # only c
        with pytest.raises(ValueError):
            stack.deploy(Service("svc", runtime="python"))

    def test_max_services_enforced(self):
        stack = make_stack("bare")   # max 1
        stack.deploy(Service("one", runtime="c"))
        with pytest.raises(ValueError):
            stack.deploy(Service("two", runtime="c"))

    def test_duplicate_deploy_raises(self):
        stack = make_stack("edge")
        stack.deploy(Service("svc"))
        with pytest.raises(ValueError):
            stack.deploy(Service("svc"))

    def test_capabilities_only_from_running(self):
        stack = make_stack("edge")
        service = Service("svc", provides={"analytics"})
        stack.deploy(service)
        assert stack.capabilities() == set()
        stack.start("svc")
        assert stack.capabilities() == {"analytics"}
        stack.mark_failed("svc")
        assert stack.capabilities() == set()

    def test_undeploy_returns_service(self):
        stack = make_stack("edge")
        stack.deploy(Service("svc"))
        service = stack.undeploy("svc")
        assert service.name == "svc"
        assert not stack.has_service("svc")

    def test_unknown_service_raises(self):
        stack = make_stack("edge")
        with pytest.raises(KeyError):
            stack.start("ghost")

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            make_stack("quantum")


class TestDevice:
    def test_class_defaults_applied(self):
        device = Device("s1", DeviceClass.SENSOR)
        assert device.resources.spec.cpu == DEVICE_CLASS_SPECS[DeviceClass.SENSOR]["spec"].cpu
        assert device.battery.capacity is not None

    def test_host_reserves_resources(self):
        device = Device("e1", DeviceClass.EDGE)
        service = Service("svc", cpu=100.0, memory=64.0)
        device.host(service)
        assert device.hosts("svc")
        assert service.state == ServiceState.RUNNING
        assert device.resources.holds("svc:svc")

    def test_evict_releases_resources(self):
        device = Device("e1", DeviceClass.EDGE)
        device.host(Service("svc", cpu=100.0))
        before = device.resources.available("cpu")
        device.evict("svc")
        assert device.resources.available("cpu") == before + 100.0

    def test_can_host_respects_runtime_and_resources(self):
        sensor = Device("s1", DeviceClass.SENSOR)
        assert not sensor.can_host(Service("svc", runtime="python"))
        edge = Device("e1", DeviceClass.EDGE)
        assert edge.can_host(Service("svc", runtime="python"))
        huge = Service("huge", cpu=1e9)
        assert not edge.can_host(huge)

    def test_host_failure_rolls_back_allocation(self):
        device = Device("e1", DeviceClass.EDGE)
        device.host(Service("svc"))
        with pytest.raises(ValueError):
            device.host(Service("svc"))   # duplicate deploy
        # The failed attempt must not leak a second allocation.
        assert device.resources.allocation_names == ["svc:svc"]

    def test_crash_and_recover(self):
        device = Device("e1", DeviceClass.EDGE)
        device.crash()
        assert not device.up
        device.recover()
        assert device.up

    def test_battery_depletion_downs_device(self):
        device = Device("s1", DeviceClass.SENSOR)
        device.battery.drain(device.battery.capacity)
        assert not device.up
        device.recover()   # recharge + up
        assert device.up

    def test_is_edge_and_constrained(self):
        assert Device("e", DeviceClass.EDGE).is_edge
        assert Device("g", DeviceClass.GATEWAY).is_edge
        assert not Device("c", DeviceClass.CLOUD).is_edge
        assert Device("s", DeviceClass.SENSOR).is_constrained


class TestFleet:
    def _fleet(self, sim, rngs, metrics, trace):
        topo = build_star_topology("hub", ["d1", "d2"], rng=rngs.stream("net"))
        network = Network(sim, topo, trace=trace)
        fleet = DeviceFleet(sim, network=network, metrics=metrics, trace=trace)
        fleet.add(Device("hub", DeviceClass.EDGE))
        fleet.add(Device("d1", DeviceClass.GATEWAY, domain="a", location="l1"))
        fleet.add(Device("d2", DeviceClass.GATEWAY, domain="b", location="l2"))
        return fleet, network

    def test_duplicate_add_raises(self, sim, rngs, metrics, trace):
        fleet, _ = self._fleet(sim, rngs, metrics, trace)
        with pytest.raises(ValueError):
            fleet.add(Device("d1", DeviceClass.GATEWAY))

    def test_queries(self, sim, rngs, metrics, trace):
        fleet, _ = self._fleet(sim, rngs, metrics, trace)
        assert len(fleet) == 3
        assert [d.device_id for d in fleet.by_domain("a")] == ["d1"]
        assert [d.device_id for d in fleet.by_location("l2")] == ["d2"]
        assert len(fleet.by_class(DeviceClass.GATEWAY)) == 2
        assert "d1" in fleet

    def test_crash_syncs_network_and_metrics(self, sim, rngs, metrics, trace):
        fleet, network = self._fleet(sim, rngs, metrics, trace)
        fleet.crash("d1")
        assert not fleet.get("d1").up
        assert not network.node_up("d1")
        assert metrics.series("up:d1").value_at(sim.now) == 0.0
        assert trace.count(category="fault", name="crash") == 1

    def test_recover_restores_everything(self, sim, rngs, metrics, trace):
        fleet, network = self._fleet(sim, rngs, metrics, trace)
        fleet.crash("d1")
        fleet.recover("d1")
        assert fleet.get("d1").up
        assert network.node_up("d1")
        assert trace.count(category="recovery") == 1

    def test_crash_idempotent(self, sim, rngs, metrics, trace):
        fleet, _ = self._fleet(sim, rngs, metrics, trace)
        fleet.crash("d1")
        fleet.crash("d1")
        assert trace.count(category="fault", name="crash") == 1

    def test_up_fraction(self, sim, rngs, metrics, trace):
        fleet, _ = self._fleet(sim, rngs, metrics, trace)
        assert fleet.up_fraction() == 1.0
        fleet.crash("d1")
        assert fleet.up_fraction(["d1", "d2"]) == 0.5

    def test_domain_transfer_traced(self, sim, rngs, metrics, trace):
        fleet, _ = self._fleet(sim, rngs, metrics, trace)
        old = fleet.transfer_domain("d1", "c")
        assert old == "a"
        assert fleet.get("d1").domain == "c"
        assert trace.count(name="domain-transfer") == 1

    def test_unknown_device_raises(self, sim, rngs, metrics, trace):
        fleet, _ = self._fleet(sim, rngs, metrics, trace)
        with pytest.raises(KeyError):
            fleet.get("ghost")


class TestSensorActuator:
    def test_sensor_samples_arrive_at_sink(self, sim, rngs, metrics):
        topo = build_star_topology("sink", ["s1"], profile="wireless",
                                   rng=rngs.stream("net"))
        network = Network(sim, topo)
        sensor = Sensor("s1", period=1.0, rng=rngs.stream("sensor"))
        got = []
        network.register("sink", "sensor.reading", lambda m: got.append(m.payload))
        sensor.start_sampling(sim, network, "sink", metrics=metrics)
        sim.run(until=10.0)
        assert 8 <= len(got) <= 11
        assert metrics.counter("sensor.samples") == sensor.samples_sent

    def test_down_sensor_stops_sampling_and_resumes(self, sim, rngs, metrics):
        topo = build_star_topology("sink", ["s1"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        sensor = Sensor("s1", period=1.0, rng=rngs.stream("sensor"))
        got = []
        network.register("sink", "sensor.reading", lambda m: got.append(m))
        sensor.start_sampling(sim, network, "sink")
        sim.run(until=3.5)
        sensor.crash()
        count_at_crash = len(got)
        sim.run(until=6.5)
        assert len(got) == count_at_crash
        sensor.recover()
        sim.run(until=10.0)
        assert len(got) > count_at_crash

    def test_sampling_drains_battery(self, sim, rngs):
        topo = build_star_topology("sink", ["s1"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        sensor = Sensor("s1", period=1.0, rng=rngs.stream("sensor"))
        sensor.start_sampling(sim, network, "sink")
        level_before = sensor.battery.level
        sim.run(until=10.0)
        assert sensor.battery.level < level_before

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            Sensor("s1", period=0.0)

    def test_actuator_applies_commands_and_records_latency(self, sim, rngs, metrics, trace):
        topo = build_star_topology("ctl", ["a1"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        applied = []
        actuator = Actuator("a1", apply=applied.append)
        actuator.attach(sim, network, metrics=metrics, trace=trace)
        network.send("ctl", "a1", "actuator.command",
                     payload={"plan": "x", "issued_at": 0.0})
        sim.run()
        assert applied == [{"plan": "x", "issued_at": 0.0}]
        assert actuator.commands_applied == 1
        assert metrics.series("actuation.latency").mean() > 0.0
        assert trace.count(category="actuation") == 1

    def test_down_actuator_ignores_commands(self, sim, rngs):
        topo = build_star_topology("ctl", ["a1"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        actuator = Actuator("a1")
        actuator.attach(sim, network)
        actuator.crash()
        network.set_node_up("a1", True)   # network path open; device logic down
        network.send("ctl", "a1", "actuator.command", payload={})
        sim.run()
        assert actuator.commands_applied == 0

"""Unit tests for fault models, the injector and disruption schedules."""

import pytest

from repro.devices.base import Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.devices.software import Service
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    AdversarialEnvironmentFault,
    BatteryDepletionFault,
    CrashFault,
    CrashRecoveryFault,
    DomainTransferFault,
    LatencySpikeFault,
    LinkFailureFault,
    PartitionFault,
    ServiceFailureFault,
)
from repro.faults.schedule import (
    DisruptionSchedule,
    RandomDisruptionGenerator,
    merge_windows,
)
from repro.network.partition import PartitionManager
from repro.network.topology import build_mesh_topology
from repro.network.transport import Network
from repro.simulation.rng import RngRegistry


@pytest.fixture
def rig(sim, rngs, trace, metrics):
    topology = build_mesh_topology(["a", "b", "c"], rng=rngs.stream("net"))
    network = Network(sim, topology, trace=trace)
    fleet = DeviceFleet(sim, network=network, metrics=metrics, trace=trace)
    for node in ("a", "b", "c"):
        fleet.add(Device(node, DeviceClass.GATEWAY))
    partitions = PartitionManager(sim, topology, trace=trace)
    injector = FaultInjector(sim, fleet, topology, partitions=partitions, trace=trace)
    return sim, topology, network, fleet, injector


class TestFaultModels:
    def test_crash_fault(self, rig):
        sim, _, _, fleet, injector = rig
        injector.inject(CrashFault(name="c", device_id="a"))
        assert not fleet.get("a").up
        assert injector.active_faults

    def test_crash_recovery_auto_heals(self, rig):
        sim, _, _, fleet, injector = rig
        injector.inject(CrashRecoveryFault(name="c", duration=5.0, device_id="a"))
        sim.run(until=4.0)
        assert not fleet.get("a").up
        sim.run(until=6.0)
        assert fleet.get("a").up
        assert injector.active_faults == []

    def test_crash_recovery_requires_duration(self):
        with pytest.raises(ValueError):
            CrashRecoveryFault(name="c", device_id="a")

    def test_service_failure_and_restore(self, rig):
        sim, _, _, fleet, injector = rig
        fleet.get("a").host(Service("svc"))
        injector.inject(ServiceFailureFault(name="f", duration=3.0,
                                            device_id="a", service_name="svc"))
        assert fleet.get("a").stack.service("svc").state.value == "failed"
        sim.run(until=4.0)
        assert fleet.get("a").stack.service("svc").state.value == "running"

    def test_partition_fault_isolation(self, rig):
        sim, topology, _, _, injector = rig
        injector.inject(PartitionFault(name="p", duration=5.0, isolate_node="a"))
        assert not topology.reachable("a", "b")
        sim.run(until=6.0)
        assert topology.reachable("a", "b")

    def test_partition_fault_groups(self, rig):
        sim, topology, _, _, injector = rig
        injector.inject(PartitionFault(name="p", group_a={"a"}, group_b={"b", "c"}))
        assert not topology.reachable("a", "b")
        assert topology.reachable("b", "c")

    def test_link_failure(self, rig):
        sim, topology, _, _, injector = rig
        fault = LinkFailureFault(name="l", node_a="a", node_b="b")
        injector.inject(fault)
        assert not topology.link_between("a", "b").up
        injector.revert(fault)
        assert topology.link_between("a", "b").up

    def test_link_failure_unknown_link_raises(self, rig):
        _, _, _, _, injector = rig
        with pytest.raises(ValueError):
            injector.inject(LinkFailureFault(name="l", node_a="a", node_b="zz"))

    def test_latency_spike_and_revert(self, rig):
        sim, topology, _, _, injector = rig
        injector.inject(LatencySpikeFault(name="s", duration=5.0,
                                          node_a="a", node_b="b", factor=10.0))
        assert topology.link_between("a", "b").model.degradation == 10.0
        sim.run(until=6.0)
        assert topology.link_between("a", "b").model.degradation == 1.0

    def test_battery_depletion_on_mains_raises(self, rig):
        _, _, _, fleet, injector = rig
        with pytest.raises(ValueError):
            injector.inject(BatteryDepletionFault(name="b", device_id="a"))

    def test_battery_depletion_on_sensor(self, sim, rngs, trace, metrics):
        topology = build_mesh_topology(["s", "hub"], rng=rngs.stream("net"))
        network = Network(sim, topology, trace=trace)
        fleet = DeviceFleet(sim, network=network, metrics=metrics, trace=trace)
        fleet.add(Device("s", DeviceClass.SENSOR))
        fleet.add(Device("hub", DeviceClass.EDGE))
        injector = FaultInjector(sim, fleet, topology, trace=trace)
        fault = BatteryDepletionFault(name="b", device_id="s")
        injector.inject(fault)
        assert not fleet.get("s").up
        injector.revert(fault)
        assert fleet.get("s").up
        assert fleet.get("s").battery.fraction == 1.0

    def test_domain_transfer_and_revert(self, rig):
        sim, _, _, fleet, injector = rig
        fault = DomainTransferFault(name="d", device_id="a", new_domain="foreign")
        injector.inject(fault)
        assert fleet.get("a").domain == "foreign"
        injector.revert(fault)
        assert fleet.get("a").domain == "default"

    def test_adversarial_environment(self, rig):
        sim, _, _, fleet, injector = rig
        fault = AdversarialEnvironmentFault(name="adv", duration=5.0, device_id="a")
        injector.inject(fault)
        assert not fleet.get("a").environment_trusted
        sim.run(until=6.0)
        assert fleet.get("a").environment_trusted


class TestInjector:
    def test_inject_at_schedules(self, rig):
        sim, _, _, fleet, injector = rig
        injector.inject_at(5.0, CrashFault(name="c", device_id="a"))
        sim.run(until=4.0)
        assert fleet.get("a").up
        sim.run(until=6.0)
        assert not fleet.get("a").up

    def test_revert_all(self, rig):
        sim, topology, _, fleet, injector = rig
        injector.inject(CrashFault(name="c", device_id="a"))
        injector.inject(LinkFailureFault(name="l", node_a="b", node_b="c"))
        injector.revert_all()
        assert fleet.get("a").up
        assert topology.link_between("b", "c").up
        assert injector.active_faults == []

    def test_injection_traced(self, rig, trace):
        sim, _, _, _, injector = rig
        injector.inject(CrashRecoveryFault(name="c", duration=1.0, device_id="a"))
        sim.run(until=2.0)
        assert trace.count(category="injection", name="fault-injected") == 1
        assert trace.count(category="injection", name="fault-reverted") == 1


class TestSchedule:
    def test_entries_sorted(self):
        schedule = DisruptionSchedule()
        schedule.add(5.0, CrashFault(name="b", device_id="x"))
        schedule.add(1.0, CrashFault(name="a", device_id="y"))
        assert [e.time for e in schedule.entries] == [1.0, 5.0]
        assert len(schedule) == 2

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            DisruptionSchedule().add(-1.0, CrashFault(name="c", device_id="x"))

    def test_install_applies_at_times(self, rig):
        sim, _, _, fleet, injector = rig
        schedule = DisruptionSchedule()
        schedule.add(2.0, CrashRecoveryFault(name="c", duration=3.0, device_id="a"))
        schedule.install(injector)
        sim.run(until=3.0)
        assert not fleet.get("a").up
        sim.run(until=6.0)
        assert fleet.get("a").up

    def test_disruption_windows_merge_and_clip(self):
        schedule = DisruptionSchedule()
        schedule.add(1.0, CrashRecoveryFault(name="a", duration=4.0, device_id="x"))
        schedule.add(3.0, CrashRecoveryFault(name="b", duration=4.0, device_id="y"))
        schedule.add(20.0, CrashFault(name="c", device_id="z"))  # permanent
        windows = schedule.disruption_windows(horizon=25.0)
        assert windows == [(1.0, 7.0), (20.0, 25.0)]

    def test_merge_windows(self):
        assert merge_windows([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]
        assert merge_windows([]) == []
        assert merge_windows([(2, 2)]) == []   # empty interval dropped
        assert merge_windows([(0, 1), (1, 2)]) == [(0, 2)]   # adjacent merge


class TestRandomGenerator:
    def test_deterministic_given_seed(self):
        def build():
            rng = RngRegistry(seed=9).stream("faults")
            generator = RandomDisruptionGenerator(rng, rate=0.5)
            return generator.generate(
                100.0, crash_targets=["a", "b"],
                service_targets=[("a", "svc")],
                link_targets=[("a", "b")],
                partition_targets=["a"],
            )

        first = build()
        second = build()
        assert [(e.time, e.fault.name) for e in first.entries] == \
               [(e.time, e.fault.name) for e in second.entries]

    def test_rate_controls_count(self):
        rng = RngRegistry(seed=9).stream("faults")
        generator = RandomDisruptionGenerator(rng, rate=1.0)
        schedule = generator.generate(200.0, crash_targets=["a"])
        # Expect ~200 * P(kind has targets); crash weight 0.4 of the mix.
        assert 40 <= len(schedule) <= 130

    def test_unknown_kind_raises(self):
        rng = RngRegistry(seed=9).stream("faults")
        with pytest.raises(ValueError):
            RandomDisruptionGenerator(rng, rate=1.0, fault_mix={"meteor": 1.0})

    def test_invalid_rate_raises(self):
        rng = RngRegistry(seed=9).stream("faults")
        with pytest.raises(ValueError):
            RandomDisruptionGenerator(rng, rate=0.0)

    def test_kinds_without_targets_skipped(self):
        rng = RngRegistry(seed=9).stream("faults")
        generator = RandomDisruptionGenerator(rng, rate=1.0,
                                              fault_mix={"partition": 1.0})
        schedule = generator.generate(50.0, crash_targets=["a"])  # no partition targets
        assert len(schedule) == 0

"""Tests for the resilience-report -> goal-model bridge."""

import pytest

from repro.core.goals_bridge import goal_model_from_report, resilience_verdict
from repro.core.maturity import MaturityScenario, ScenarioParams
from repro.core.resilience import RequirementAssessment, ResilienceReport
from repro.core.vectors import MaturityLevel
from repro.modeling.goals import GoalStatus


def make_report(assessments, windows=((10.0, 20.0),)):
    return ResilienceReport(label="test", horizon=100.0,
                            disruption_windows=list(windows),
                            assessments=assessments)


def assessment(name, baseline, under, weight=1.0):
    return RequirementAssessment(name=name, weight=weight, baseline=baseline,
                                 under_disruption=under)


class TestBridge:
    def test_statuses_from_satisfaction(self):
        report = make_report([
            assessment("good", 1.0, 0.97),
            assessment("bad", 1.0, 0.2),
            assessment("shaky", 1.0, 0.7),
        ])
        model = goal_model_from_report(report)
        assert model.status("req:good") == GoalStatus.SATISFIED
        assert model.status("req:bad") == GoalStatus.DENIED
        assert model.status("req:shaky") == GoalStatus.UNKNOWN
        assert model.status() == GoalStatus.DENIED   # AND-refined root

    def test_root_satisfied_when_all_persist(self):
        report = make_report([
            assessment("a", 1.0, 0.99),
            assessment("b", 1.0, 0.95),
        ])
        model = goal_model_from_report(report)
        assert model.status() == GoalStatus.SATISFIED

    def test_unmeasured_requirement_unknown(self):
        report = make_report([assessment("mystery", None, None)])
        model = goal_model_from_report(report)
        assert model.status("req:mystery") == GoalStatus.UNKNOWN

    def test_obstacles_attach_to_dented_requirements(self):
        report = make_report([
            assessment("dented", 1.0, 0.6),
            assessment("untouched", 1.0, 1.0),
        ])
        model = goal_model_from_report(report)
        obstacles = model.obstacles()
        assert len(obstacles) == 1
        assert obstacles[0].obstructs == ["req:dented"]

    def test_invalid_thresholds_raise(self):
        report = make_report([assessment("a", 1.0, 1.0)])
        with pytest.raises(ValueError):
            goal_model_from_report(report, satisfied_threshold=0.4,
                                   denied_threshold=0.6)

    def test_verdict_summary(self):
        report = make_report([
            assessment("good", 1.0, 0.99),
            assessment("bad", 1.0, 0.1),
        ])
        verdict = resilience_verdict(goal_model_from_report(report))
        assert verdict["root_status"] == "denied"
        assert verdict["satisfied_leaves"] == ["req:good"]
        assert verdict["denied_leaves"] == ["req:bad"]
        # The disruption window dented 'bad': activating it alone denies
        # the root, so it is critical.
        assert len(verdict["critical_obstacles"]) == 1


class TestBridgeOverMaturityRuns:
    def test_ml4_root_goal_satisfied(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=60.0,
                                seed=42)
        report = MaturityScenario(MaturityLevel.ML4, params).run()
        model = goal_model_from_report(report, satisfied_threshold=0.85)
        assert model.status() != GoalStatus.DENIED

    def test_ml1_root_goal_denied(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=60.0,
                                seed=42)
        report = MaturityScenario(MaturityLevel.ML1, params).run()
        model = goal_model_from_report(report)
        assert model.status() == GoalStatus.DENIED
        verdict = resilience_verdict(model)
        assert "req:control-availability" in verdict["denied_leaves"]
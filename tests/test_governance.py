"""Unit tests for domains, trust, flow policies and domain transfer."""

import pytest

from repro.data.item import DataItem, DataSensitivity
from repro.data.lineage import LineageTracker
from repro.devices.base import Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.governance.domains import (
    CCPA,
    EEA,
    GDPR,
    AdministrativeDomain,
    DomainRegistry,
    Jurisdiction,
    TrustLevel,
)
from repro.governance.policy import FlowPolicy, PolicyEngine, PrivacyScope
from repro.governance.transfer import DomainTransferProtocol


@pytest.fixture
def registry():
    reg = DomainRegistry()
    reg.add(AdministrativeDomain("hospital", GDPR, TrustLevel.TRUSTED))
    reg.add(AdministrativeDomain("lab-eu", EEA, TrustLevel.TRUSTED))
    reg.add(AdministrativeDomain("ads", CCPA, TrustLevel.PUBLIC))
    return reg


def make_engine(registry, domains_map, untrusted=()):
    return PolicyEngine(
        registry,
        min_trust=TrustLevel.PARTNER,
        device_domain=lambda d: domains_map[d],
        environment_trusted=lambda d: d not in untrusted,
    )


def personal(key="hr", subject="alice"):
    return DataItem(key, 1, "dev1", "hospital", 0.0,
                    DataSensitivity.PERSONAL, subject=subject)


class TestDomains:
    def test_jurisdiction_residency(self):
        assert GDPR.allows_personal_export_to(EEA)
        assert GDPR.allows_personal_export_to(GDPR)
        assert not GDPR.allows_personal_export_to(CCPA)

    def test_duplicate_domain_raises(self, registry):
        with pytest.raises(ValueError):
            registry.add(AdministrativeDomain("hospital", GDPR))

    def test_self_trust_is_owned(self, registry):
        assert registry.trust("hospital", "hospital") == TrustLevel.OWNED

    def test_default_trust_is_conservative_min(self, registry):
        assert registry.trust("hospital", "ads") == TrustLevel.PUBLIC

    def test_explicit_agreement_overrides(self, registry):
        registry.set_trust("hospital", "ads", TrustLevel.PARTNER)
        assert registry.trust("hospital", "ads") == TrustLevel.PARTNER
        # Directional: the reverse is unchanged.
        assert registry.trust("ads", "hospital") == TrustLevel.PUBLIC

    def test_mutual_trust(self, registry):
        registry.set_mutual_trust("hospital", "lab-eu", TrustLevel.TRUSTED)
        assert registry.trust("hospital", "lab-eu") == TrustLevel.TRUSTED
        assert registry.trust("lab-eu", "hospital") == TrustLevel.TRUSTED

    def test_unknown_domain_raises(self, registry):
        with pytest.raises(KeyError):
            registry.trust("hospital", "ghost")

    def test_same_jurisdiction(self, registry):
        registry.add(AdministrativeDomain("clinic", GDPR))
        assert registry.same_jurisdiction("hospital", "clinic")
        assert not registry.same_jurisdiction("hospital", "ads")


class TestPolicyEngine:
    def test_residency_blocks_personal_cross_jurisdiction(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "ads1": "ads"})
        decision = engine.evaluate(personal(), "dev1", "ads1")
        assert not decision.allowed and decision.rule == "residency"

    def test_residency_allows_adequate_jurisdiction(self, registry):
        registry.set_mutual_trust("hospital", "lab-eu", TrustLevel.TRUSTED)
        engine = make_engine(registry, {"dev1": "hospital", "lab1": "lab-eu"})
        assert engine.evaluate(personal(), "dev1", "lab1").allowed

    def test_public_data_flows_anywhere(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "ads1": "ads"})
        item = DataItem("weather", 20, "dev1", "hospital", 0.0,
                        DataSensitivity.PUBLIC)
        assert engine.evaluate(item, "dev1", "ads1").allowed

    def test_trust_gate_for_internal_data(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "ads1": "ads"})
        item = DataItem("cfg", 1, "dev1", "hospital", 0.0,
                        DataSensitivity.INTERNAL)
        decision = engine.evaluate(item, "dev1", "ads1")
        assert not decision.allowed and decision.rule == "trust"

    def test_untrusted_environment_blocks_personal(self, registry):
        registry.set_mutual_trust("hospital", "lab-eu", TrustLevel.TRUSTED)
        engine = make_engine(registry, {"dev1": "hospital", "lab1": "lab-eu"},
                             untrusted={"lab1"})
        decision = engine.evaluate(personal(), "dev1", "lab1")
        assert not decision.allowed and decision.rule == "environment"

    def test_out_flow_policy_cap(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "dev2": "hospital"})
        engine.set_policy(FlowPolicy("dev1",
                                     max_out_sensitivity=DataSensitivity.INTERNAL))
        decision = engine.evaluate(personal(), "dev1", "dev2")
        assert not decision.allowed and decision.rule == "out-flow"

    def test_in_flow_policy_cap(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "dev2": "hospital"})
        engine.set_policy(FlowPolicy("dev2",
                                     max_in_sensitivity=DataSensitivity.INTERNAL))
        decision = engine.evaluate(personal(), "dev1", "dev2")
        assert not decision.allowed and decision.rule == "in-flow"

    def test_deny_domains_blacklist(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "lab1": "lab-eu"})
        registry.set_mutual_trust("hospital", "lab-eu", TrustLevel.TRUSTED)
        engine.set_policy(FlowPolicy("dev1", deny_domains={"lab-eu"}))
        item = DataItem("x", 1, "dev1", "hospital", 0.0, DataSensitivity.PUBLIC)
        decision = engine.evaluate(item, "dev1", "lab1")
        assert not decision.allowed

    def test_privacy_scope_blocks_exit(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "dev2": "hospital"})
        engine.add_scope(PrivacyScope("ward", members={"dev1"}))
        decision = engine.evaluate(personal(), "dev1", "dev2")
        assert not decision.allowed and decision.rule == "scope"

    def test_privacy_scope_allows_internal_movement(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "dev2": "hospital"})
        engine.add_scope(PrivacyScope("ward", members={"dev1", "dev2"}))
        assert engine.evaluate(personal(), "dev1", "dev2").allowed

    def test_scope_ignores_low_sensitivity(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "dev2": "hospital"})
        engine.add_scope(PrivacyScope("ward", members={"dev1"}))
        item = DataItem("temp", 20, "dev1", "hospital", 0.0, DataSensitivity.INTERNAL)
        assert engine.evaluate(item, "dev1", "dev2").allowed

    def test_anonymized_item_escapes_scope(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "ads1": "ads"})
        engine.add_scope(PrivacyScope("ward", members={"dev1"}))
        anonymous = personal().anonymize("dev1", 1.0)
        assert engine.evaluate(anonymous, "dev1", "ads1").allowed

    def test_audit_ledger(self, registry):
        engine = make_engine(registry, {"dev1": "hospital", "ads1": "ads"})
        engine.evaluate(personal(), "dev1", "ads1", now=1.0)
        engine.evaluate(personal().anonymize("dev1", 1.0), "dev1", "ads1", now=2.0)
        assert engine.denial_count() == 1
        assert engine.denials_by_rule() == {"residency": 1}

    def test_domain_pseudo_device(self, registry):
        engine = make_engine(registry, {"dev1": "hospital"})
        decision = engine.evaluate(personal(), "dev1", "<domain:ads>")
        assert not decision.allowed and decision.rule == "residency"

    def test_duplicate_scope_raises(self, registry):
        engine = make_engine(registry, {"dev1": "hospital"})
        engine.add_scope(PrivacyScope("s", members=set()))
        with pytest.raises(ValueError):
            engine.add_scope(PrivacyScope("s", members=set()))


class TestDomainTransfer:
    def _rig(self, sim, registry):
        fleet = DeviceFleet(sim)
        fleet.add(Device("car", DeviceClass.MOBILE, domain="hospital"))
        engine = make_engine(registry, {"car": "hospital"})
        # The device's domain changes during transfer; resolve dynamically.
        engine._device_domain = lambda d: fleet.get(d).domain if d == "car" else "hospital"
        lineage = LineageTracker()
        protocol = DomainTransferProtocol(sim, fleet, engine, lineage=lineage)
        return fleet, engine, protocol, lineage

    def test_transfer_sanitizes_personal_data(self, sim, registry):
        fleet, engine, protocol, lineage = self._rig(sim, registry)
        item = personal()
        protocol.register_resident_data("car", item)
        counters = protocol.transfer("car", "ads")
        # The personal item is replaced by its anonymized derivation.
        assert counters == {"kept": 0, "anonymized": 1, "purged": 0}
        assert fleet.get("car").domain == "ads"
        resident = protocol.resident_data("car")
        assert len(resident) == 1
        assert resident[0].sensitivity == DataSensitivity.PUBLIC
        assert lineage.denial_count() == 1

    def test_transfer_purges_when_anonymization_disabled(self, sim, registry):
        fleet, engine, protocol, lineage = self._rig(sim, registry)
        protocol.register_resident_data("car", personal())
        counters = protocol.transfer("car", "ads", anonymize_instead_of_purge=False)
        assert counters["purged"] == 1
        assert protocol.resident_data("car") == []

    def test_transfer_keeps_compliant_data(self, sim, registry):
        fleet, engine, protocol, _ = self._rig(sim, registry)
        public = DataItem("weather", 20, "car", "hospital", 0.0,
                          DataSensitivity.PUBLIC)
        protocol.register_resident_data("car", public)
        counters = protocol.transfer("car", "ads")
        assert counters == {"kept": 1, "anonymized": 0, "purged": 0}

    def test_transfer_to_unknown_domain_raises(self, sim, registry):
        fleet, engine, protocol, _ = self._rig(sim, registry)
        with pytest.raises(KeyError):
            protocol.transfer("car", "atlantis")

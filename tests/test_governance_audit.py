"""Tests for the compliance auditor."""

import pytest

from repro.data.item import DataItem, DataSensitivity
from repro.data.lineage import LineageTracker
from repro.governance.audit import ComplianceAuditor
from repro.governance.domains import (
    CCPA,
    GDPR,
    AdministrativeDomain,
    DomainRegistry,
    TrustLevel,
)
from repro.governance.policy import PolicyEngine
from repro.workloads.healthcare import HealthcareWorkload


@pytest.fixture
def audited_lineage():
    """A small history: raw personal item stays home; its anonymized
    derivation crosses domains; one denial."""
    lineage = LineageTracker()
    raw = DataItem("hr", 72, "wearable", "clinic", 0.0,
                   DataSensitivity.PERSONAL, subject="alice")
    lineage.record_created(raw, 0.0, "wearable")
    lineage.record_moved(raw, 1.0, "clinic-server", "clinic")
    anonymous = raw.anonymize("clinic-server", 2.0)
    lineage.record_created(anonymous, 2.0, "clinic-server")
    lineage.record_moved(anonymous, 3.0, "lab-server", "lab")
    lineage.record_denied(raw, 4.0, "lab-server", "lab", "residency")
    return lineage, raw, anonymous


class TestDataMap:
    def test_data_map_cells(self, audited_lineage):
        lineage, raw, anonymous = audited_lineage
        auditor = ComplianceAuditor(lineage)
        data_map = auditor.data_map()
        assert data_map[("clinic", "clinic")] == {"PERSONAL": 1}
        assert data_map[("clinic", "lab")] == {"PUBLIC": 1}

    def test_cross_domain_count(self, audited_lineage):
        lineage, _, _ = audited_lineage
        auditor = ComplianceAuditor(lineage)
        assert auditor.cross_domain_flow_count() == 1

    def test_summary(self, audited_lineage):
        lineage, _, _ = audited_lineage
        summary = ComplianceAuditor(lineage).summary()
        assert summary["total_flows"] == 2
        assert summary["sensitive_flows"] == 1
        assert summary["sensitive_cross_domain"] == 0
        assert summary["denials"] == 1


class TestSubjectReport:
    def test_raw_vs_derived_exposure(self, audited_lineage):
        lineage, _, _ = audited_lineage
        report = ComplianceAuditor(lineage).subject_report("alice")
        assert report.items_produced == 1
        assert report.raw_domains_reached == ["clinic"]
        assert report.derived_domains_reached == ["lab"]
        assert report.denials == 1
        assert report.exposure_beyond_origin

    def test_unknown_subject_empty(self, audited_lineage):
        lineage, _, _ = audited_lineage
        report = ComplianceAuditor(lineage).subject_report("bob")
        assert report.items_produced == 0
        assert not report.exposure_beyond_origin


class TestRetroAudit:
    def _engine(self):
        registry = DomainRegistry()
        registry.add(AdministrativeDomain("clinic", GDPR, TrustLevel.TRUSTED))
        registry.add(AdministrativeDomain("lab", CCPA, TrustLevel.PARTNER))
        registry.set_mutual_trust("clinic", "lab", TrustLevel.PARTNER)
        return PolicyEngine(registry, min_trust=TrustLevel.PARTNER)

    def test_clean_history_passes(self, audited_lineage):
        lineage, _, _ = audited_lineage
        auditor = ComplianceAuditor(lineage, policy_engine=self._engine())
        assert auditor.retro_audit() == []

    def test_historical_leak_detected(self):
        """An ungoverned system moved raw personal data cross-border;
        the retro-audit flags it."""
        lineage = LineageTracker()
        raw = DataItem("hr", 72, "wearable", "clinic", 0.0,
                       DataSensitivity.PERSONAL, subject="alice")
        lineage.record_created(raw, 0.0, "wearable")
        lineage.record_moved(raw, 1.0, "lab-server", "lab")
        auditor = ComplianceAuditor(lineage, policy_engine=self._engine())
        violations = auditor.retro_audit()
        assert len(violations) == 1
        flow, decision = violations[0]
        assert flow.dst_domain == "lab"
        assert decision.rule == "residency"

    def test_retro_audit_without_engine_raises(self, audited_lineage):
        lineage, _, _ = audited_lineage
        with pytest.raises(ValueError):
            ComplianceAuditor(lineage).retro_audit()


class TestAuditOverWorkload:
    def test_healthcare_workload_is_compliant(self):
        workload = HealthcareWorkload(n_patients=2, seed=13)
        workload.run(20.0)
        auditor = ComplianceAuditor(workload.lineage,
                                    policy_engine=workload.policy_engine)
        # Everything that crossed into the lab's jurisdiction was PUBLIC.
        violations = auditor.retro_audit()
        assert violations == []
        summary = auditor.summary()
        assert summary["total_flows"] > 0
        # Sensitive data crossed only into the trusted same-jurisdiction
        # hospital domain -- never into the lab.
        sensitive_destinations = {
            flow.dst_domain
            for flow in auditor.flows()
            if flow.sensitivity >= DataSensitivity.PERSONAL
            and flow.src_domain != flow.dst_domain
        }
        assert sensitive_destinations == {"hospital"}
        report = auditor.subject_report("patient0")
        assert "lab" in report.derived_domains_reached
        assert "lab" not in report.raw_domains_reached

"""Integration tests: multiple subsystems working together end-to-end."""

import pytest

from repro.adaptation import (
    DeviceLivenessAnalyzer,
    Executor,
    MapeLoop,
    RuleBasedPlanner,
    ServiceHealthAnalyzer,
    StaleKnowledgeAnalyzer,
)
from repro.coordination.gossip import GossipNode
from repro.coordination.raft import RaftCluster
from repro.coordination.registry import ServiceRecord, ServiceRegistry
from repro.core.system import IoTSystem
from repro.data.crdt import PNCounter
from repro.data.sync import ReplicaStore, SyncProtocol, converged
from repro.devices.base import Device, DeviceClass
from repro.devices.software import Service, ServiceState
from repro.faults.models import CrashRecoveryFault, PartitionFault, ServiceFailureFault
from repro.faults.schedule import DisruptionSchedule, RandomDisruptionGenerator
from repro.modeling.properties import Always, LeadsTo, prop
from repro.modeling.runtime_monitor import MonitorVerdict, RuntimeMonitor, TraceStateAdapter
from repro.network.topology import build_mesh_topology
from repro.network.transport import Network


class TestRaftUnderRandomDisruption:
    """State-machine safety must survive a random crash/partition storm."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_safety_under_fault_storm(self, seed):
        system = IoTSystem(seed=seed)
        nodes = [f"r{i}" for i in range(5)]
        for i, node in enumerate(nodes):
            system.topology.add_node(node)
            system.fleet.add(Device(node, DeviceClass.EDGE))
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                system.topology.add_link(a, b, profile="lan")
        cluster = RaftCluster(system.sim, system.network, nodes,
                              system.rngs.stream("raft"))
        cluster.start()

        generator = RandomDisruptionGenerator(
            system.rngs.stream("storm"), rate=0.08, mean_duration=8.0,
            fault_mix={"crash": 0.6, "partition": 0.4},
        )
        schedule = generator.generate(
            90.0, crash_targets=nodes, partition_targets=nodes,
        )
        schedule.install(system.injector)

        proposals = {"count": 0}

        def propose(sim_obj) -> None:
            if cluster.propose({"n": proposals["count"]}):
                proposals["count"] += 1
            sim_obj.schedule(1.0, propose)

        system.sim.schedule(5.0, propose)
        system.run(until=120.0)
        assert cluster.state_machine_consistent()
        assert proposals["count"] > 10
        # Every live node that applied anything applied a prefix.
        longest = max(cluster.applied.values(), key=len)
        assert len(longest) > 0

    def test_liveness_resumes_after_storm(self):
        system = IoTSystem(seed=99)
        nodes = [f"r{i}" for i in range(3)]
        for node in nodes:
            system.topology.add_node(node)
            system.fleet.add(Device(node, DeviceClass.EDGE))
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                system.topology.add_link(a, b, profile="lan")
        cluster = RaftCluster(system.sim, system.network, nodes,
                              system.rngs.stream("raft"))
        cluster.start()
        schedule = DisruptionSchedule()
        schedule.add(10.0, CrashRecoveryFault(name="c0", duration=10.0,
                                              device_id="r0"))
        schedule.add(15.0, PartitionFault(name="p1", duration=10.0,
                                          isolate_node="r1"))
        schedule.install(system.injector)
        system.run(until=60.0)
        assert cluster.leader() is not None
        before = len(max(cluster.applied.values(), key=len))
        assert cluster.propose("post-storm")
        system.run(until=70.0)
        assert any("post-storm" in applied for applied in cluster.applied.values())


class TestMapePlusOrchestration:
    def test_edge_loop_with_migration_heals_depleted_host(self):
        """A service on a host that crashes migrates to a peer via the
        planner escalation path, driven end-to-end through the loop."""
        system = IoTSystem(seed=4)
        for node in ("edge", "g1", "g2"):
            system.topology.add_node(node)
        system.topology.add_link("edge", "g1", profile="lan")
        system.topology.add_link("edge", "g2", profile="lan")
        system.fleet.add(Device("edge", DeviceClass.EDGE))
        system.fleet.add(Device("g1", DeviceClass.GATEWAY))
        system.fleet.add(Device("g2", DeviceClass.GATEWAY))
        system.fleet.get("g1").host(Service("svc"))
        loop = MapeLoop(
            system.sim, system.network, system.fleet, "edge", ["g1", "g2"],
            analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer()],
            planner=RuleBasedPlanner(max_restarts=0),   # migrate immediately
            executor=Executor(system.sim, system.network, system.fleet, "edge",
                              system.rngs.stream("exec"),
                              reboot_success_rate=0.0,   # reboots never work
                              trace=system.trace),
            period=1.0, trace=system.trace,
        )
        loop.start()
        system.run(until=2.5)
        # Mark the service failed; with max_restarts=0 the planner migrates.
        system.fleet.get("g1").stack.mark_failed("svc")
        system.run(until=8.0)
        assert system.fleet.get("g2").hosts("svc")
        assert system.fleet.get("g2").stack.service("svc").state == ServiceState.RUNNING


class TestRuntimeMonitorOverLiveSystem:
    def test_recovery_property_verified_on_trace(self):
        """models@runtime: watch G(fault ~> recovery) over a live system
        with MAPE healing, and confirm the verdict is SATISFIED."""
        system = IoTSystem.with_edge_cloud_landscape(1, 2, seed=8)
        device = system.fleet.get("d0.0")
        device.host(Service("svc"))
        loop = MapeLoop(
            system.sim, system.network, system.fleet, "edge0",
            ["d0.0", "d0.1"],
            analyzers=[ServiceHealthAnalyzer()],
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet, "edge0",
                              system.rngs.stream("exec"), trace=system.trace),
            period=1.0, trace=system.trace,
        )
        loop.start()
        monitor = RuntimeMonitor()
        monitor.watch("self-heal", LeadsTo(prop("degraded"), prop("healthy")))
        adapter = (TraceStateAdapter(monitor)
                   .set_initial({"healthy"})
                   .rule(category="fault", name="service-failure",
                         add={"degraded"}, remove={"healthy"})
                   .rule(category="recovery", name="mape-repair",
                         add={"healthy"}, remove={"degraded"}))
        adapter.attach(system.trace)
        system.injector.inject_at(5.0, ServiceFailureFault(
            name="f", device_id="d0.0", service_name="svc"))
        system.run(until=20.0)
        assert monitor.final_verdicts()["self-heal"] == MonitorVerdict.SATISFIED
        latencies = monitor.response_latencies("self-heal")
        assert len(latencies) == 1 and latencies[0] < 5.0

    def test_without_healing_property_violated(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 2, seed=8)
        system.fleet.get("d0.0").host(Service("svc"))
        monitor = RuntimeMonitor()
        monitor.watch("self-heal", LeadsTo(prop("degraded"), prop("healthy")))
        adapter = (TraceStateAdapter(monitor)
                   .set_initial({"healthy"})
                   .rule(category="fault", name="service-failure",
                         add={"degraded"}, remove={"healthy"})
                   .rule(category="recovery", name="mape-repair",
                         add={"healthy"}, remove={"degraded"}))
        adapter.attach(system.trace)
        system.injector.inject_at(5.0, ServiceFailureFault(
            name="f", device_id="d0.0", service_name="svc"))
        system.run(until=20.0)
        assert monitor.final_verdicts()["self-heal"] == MonitorVerdict.VIOLATED


class TestBatteryAwareAdaptation:
    def test_low_battery_triggers_preemptive_migration(self):
        """BatteryAnalyzer + planner: services evacuate a draining mobile
        device before it dies (§VII's countermeasures under domain
        constraints -- here the constraint is energy)."""
        from repro.adaptation.analyzer import BatteryAnalyzer
        from repro.devices.base import DeviceClass

        system = IoTSystem(seed=6)
        for node in ("edge", "phone", "gateway"):
            system.topology.add_node(node)
        system.topology.add_link("phone", "edge", profile="cellular")
        system.topology.add_link("gateway", "edge", profile="lan")
        system.fleet.add(Device("edge", DeviceClass.EDGE))
        phone = system.fleet.add(Device("phone", DeviceClass.MOBILE))
        system.fleet.add(Device("gateway", DeviceClass.GATEWAY))
        phone.host(Service("companion-app", runtime="python"))
        loop = MapeLoop(
            system.sim, system.network, system.fleet, "edge",
            ["phone", "gateway"],
            analyzers=[BatteryAnalyzer(threshold=0.3)],
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet,
                              "edge", system.rngs.stream("exec"),
                              trace=system.trace),
            period=1.0, trace=system.trace,
        )
        loop.start()
        system.run(until=3.0)
        assert phone.hosts("companion-app")   # healthy battery: no action
        # Drain the phone to 10%.
        phone.battery.drain(phone.battery.capacity * 0.9)
        system.run(until=10.0)
        assert not phone.hosts("companion-app")
        assert system.fleet.get("gateway").hosts("companion-app")
        assert system.fleet.get("gateway").stack.service(
            "companion-app").state == ServiceState.RUNNING


class TestMdpPlannerInLiveLoop:
    def test_mdp_planned_loop_heals_service(self):
        """A MAPE loop planning via the repair MDP (instead of rules)
        repairs a failed service end to end."""
        from repro.adaptation.mdp_planner import MdpPlanner

        system = IoTSystem.with_edge_cloud_landscape(1, 2, seed=21)
        device = system.fleet.get("d0.0")
        device.host(Service("svc"))
        planner = MdpPlanner()
        loop = MapeLoop(
            system.sim, system.network, system.fleet, "edge0",
            ["d0.0", "d0.1"],
            analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer()],
            planner=planner,
            executor=Executor(system.sim, system.network, system.fleet,
                              "edge0", system.rngs.stream("exec"),
                              trace=system.trace),
            period=1.0, trace=system.trace,
        )
        loop.start()
        system.injector.inject_at(5.0, ServiceFailureFault(
            name="f", device_id="d0.0", service_name="svc"))
        system.run(until=20.0)
        assert device.stack.service("svc").state == ServiceState.RUNNING
        assert any(d.endswith(":restart") for d in planner.decisions)


class TestRegistryBackedDiscoveryUnderChurn:
    def test_lookup_follows_failover(self, sim, rngs, trace):
        nodes = ["e1", "e2", "e3"]
        topology = build_mesh_topology(nodes, rng=rngs.stream("net"))
        network = Network(sim, topology, trace=trace)
        gossips = {
            n: GossipNode(sim, network, n, nodes, rngs.stream(f"g:{n}"),
                          period=0.5)
            for n in nodes
        }
        registries = {n: ServiceRegistry(g) for n, g in gossips.items()}
        for g in gossips.values():
            g.start()
        registries["e1"].advertise(ServiceRecord("api", "e1"))
        sim.run(until=5.0)
        assert registries["e3"].lookup("api").device_id == "e1"
        # e1 dies; e2 takes over and withdraws the dead instance.
        network.set_node_up("e1", False)
        registries["e2"].withdraw("api", "e1")
        registries["e2"].advertise(ServiceRecord("api", "e2"))
        sim.run(until=15.0)
        assert registries["e3"].lookup("api").device_id == "e2"


class TestReplicationAcrossSites:
    def test_counter_converges_across_edge_mesh_despite_cloud_outage(self):
        system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=3)
        edges = system.edge_nodes
        stores = {}
        for edge in edges:
            store = ReplicaStore(edge)
            store.register("events", PNCounter(edge))
            stores[edge] = store
            SyncProtocol(system.sim, system.network, store,
                         [e for e in edges if e != edge],
                         system.rngs.stream(f"sync:{edge}"), period=0.5).start()
        system.partitions.schedule_outage(1.0, 28.0, "cloud")
        system.sim.schedule(5.0, lambda s: stores["edge0"].get("events").increment(4))
        system.sim.schedule(6.0, lambda s: stores["edge2"].get("events").increment(2))
        system.run(until=20.0)
        # Convergence through the inter-edge metro mesh, cloud fully cut.
        assert converged(list(stores.values()), "events")
        assert stores["edge1"].get("events").value == 6

"""Acceptance tests for live-service mode (:mod:`repro.live`).

The headline guarantees:

* pacing is telemetry-only -- a live run's journal is *byte-identical*
  to the batch ``run_scenario`` reference at any speed factor;
* a service killed between events and restarted on the same state
  directory resumes from its last checkpoint without loss (same bytes);
* ``/metrics`` and ``/healthz`` scrape over real HTTP while the kernel
  runs, without perturbing the journal;
* fault schedules and chaos specs hot-load mid-run, are journaled as
  ``reconfig`` records, and both resume and replay reproduce them;
* SIGTERM drains cleanly: final checkpoint, open-ended journal,
  exit ``128 + signum``.
"""

import json
import os
import signal
import threading
import urllib.error
import urllib.request

import pytest

from repro.live import (
    LiveLoadError,
    LiveService,
    RealTimeExecutor,
    validate_payload,
)
from repro.persistence import ScenarioSpec, read_journal, replay_journal, run_scenario
from repro.simulation.kernel import SimulationError, Simulator

SCENARIO = "traffic-retry-storm"
UNTIL = 6.0   # reduced horizon keeps the paced variants fast


class _BareSystem:
    """The minimal surface the executor drives (kernel + telemetry)."""

    def __init__(self):
        from repro.simulation.metrics import MetricsRecorder

        self.sim = Simulator()
        self.metrics = MetricsRecorder()
        self.spans = None


@pytest.fixture
def system():
    return _BareSystem()


def _batch_reference(tmp_path, spec=None, until=UNTIL):
    path = str(tmp_path / "reference.jsonl")
    run_scenario(spec or ScenarioSpec(name=SCENARIO), journal_path=path,
                 until=until)
    with open(path, "rb") as fh:
        return fh.read()


def _live_journal(out):
    with open(os.path.join(out, "journal.jsonl"), "rb") as fh:
        return fh.read()


def _service(out, **kwargs):
    kwargs.setdefault("speed", 0.0)
    kwargs.setdefault("port", None)
    kwargs.setdefault("checkpoint_every", 3600.0)
    kwargs.setdefault("until", UNTIL)
    return LiveService(ScenarioSpec(name=SCENARIO), str(out), **kwargs)


# --------------------------------------------------------------------------- #
# Kernel barrier actions
# --------------------------------------------------------------------------- #
class TestFiredBarriers:
    def test_hook_fires_after_indexed_event(self, sim: Simulator):
        order = []
        sim.schedule(1.0, lambda s: order.append("e0"))
        sim.schedule(2.0, lambda s: order.append("e1"))
        sim.at_fired(1, lambda s: order.append("barrier"))
        sim.run(until=5.0)
        assert order == ["e0", "barrier", "e1"]

    def test_current_barrier_runs_immediately(self, sim: Simulator):
        hits = []
        sim.at_fired(0, lambda s: hits.append(s.fired_count))
        assert hits == [0]

    def test_past_barrier_rejected(self, sim: Simulator):
        sim.schedule(1.0, lambda s: None)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.at_fired(0, lambda s: None)

    def test_hooks_are_not_snapshot_state(self, sim: Simulator):
        before = sim.snapshot_state()
        sim.schedule(1.0, lambda s: None)
        sim.at_fired(1, lambda s: None)
        sim.run(until=2.0)
        after = sim.snapshot_state()
        assert before["next_seq"] + 1 == after["next_seq"]


# --------------------------------------------------------------------------- #
# Pacing: telemetry-only
# --------------------------------------------------------------------------- #
class TestPacedDigestIdentity:
    @pytest.mark.parametrize("speed", [0.0, 10.0, 1000.0])
    def test_journal_byte_identical_to_batch(self, tmp_path, speed):
        reference = _batch_reference(tmp_path)
        out = tmp_path / f"live-{speed:g}"
        service = _service(out, speed=speed)
        service.start()
        assert service.run() == "completed"
        assert _live_journal(str(out)) == reference

    def test_negative_speed_rejected(self, system):
        with pytest.raises(ValueError):
            RealTimeExecutor(system, speed=-1.0)

    def test_pacing_sleeps_toward_wall_schedule(self, system):
        clock = {"now": 0.0}
        slept = []

        def fake_clock():
            return clock["now"]

        def fake_sleep(chunk):
            slept.append(chunk)
            clock["now"] += chunk

        system.sim.schedule(1.0, lambda s: None)
        executor = RealTimeExecutor(system, speed=2.0, clock=fake_clock,
                                    sleep=fake_sleep)
        assert executor.run(2.0) == "completed"
        # 2 simulated seconds at speed 2 is one wall second, slept in
        # poll-interval chunks.
        assert abs(sum(slept) - 1.0) < 1e-9
        assert executor.stats.events == 1


# --------------------------------------------------------------------------- #
# Checkpoint / restart without loss
# --------------------------------------------------------------------------- #
class TestRestartWithoutLoss:
    def test_drain_then_restart_matches_batch_bytes(self, tmp_path):
        reference = _batch_reference(tmp_path)
        out = tmp_path / "live"
        service = _service(out)
        service.start()
        # Deterministic interruption: drain exactly at event 400 (the
        # barrier hook runs inside the kernel, the executor notices the
        # flag before the next event fires).
        service.system.sim.at_fired(400, lambda s: service.request_drain())
        assert service.run() == "drained"
        assert service.system.sim.fired_count == 400
        assert service.checkpoints_written >= 1
        assert not read_journal(str(out / "journal.jsonl")).complete

        restarted = _service(out)
        restarted.start()
        assert restarted.resumed
        assert restarted.system.sim.fired_count == 400
        assert restarted.run() == "completed"
        assert _live_journal(str(out)) == reference

    def test_periodic_checkpoints_on_wall_cadence(self, tmp_path):
        out = tmp_path / "live"
        service = _service(out, checkpoint_every=0.01, poll_interval=0.0,
                           until=2.0)
        service.start()
        assert service.run() == "completed"
        assert service.checkpoints_written >= 1
        assert os.path.exists(str(out / "checkpoint.json"))

    def test_wrong_scenario_in_state_dir_rejected(self, tmp_path):
        from repro.persistence import CheckpointError

        out = tmp_path / "live"
        service = _service(out)
        service.start()
        service.system.sim.at_fired(100, lambda s: service.request_drain())
        service.run()

        other = LiveService(ScenarioSpec(name="control-outage"), str(out),
                            speed=0.0, port=None)
        with pytest.raises(CheckpointError):
            other.start()


# --------------------------------------------------------------------------- #
# Telemetry server
# --------------------------------------------------------------------------- #
def _get(url, timeout=10):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestTelemetryServer:
    def test_scrape_while_running(self, tmp_path):
        reference = _batch_reference(tmp_path)
        out = tmp_path / "live"
        service = _service(out, port=0, speed=4.0)
        service.start()
        url = service.server.url
        worker = threading.Thread(target=service.run)
        worker.start()
        try:
            code, metrics = _get(url + "/metrics")
            assert code == 200
            assert "repro_" in metrics

            code, health = _get(url + "/healthz")
            assert code == 200
            data = json.loads(health)
            assert data["status"] == "ok"
            assert "fired_events" in data

            code, status = _get(url + "/status")
            assert code == 200
            assert json.loads(status)["scenario"]["name"] == SCENARIO

            code, dashboard = _get(url + "/dashboard")
            assert code == 200
            assert "http-equiv=\"refresh\"" in dashboard

            code, _ = _get(url + "/nope")
            assert code == 404
        finally:
            service.request_drain()
            worker.join(timeout=30)
        assert not worker.is_alive()
        # Scraping is a pure read: the drained-then-restarted journal
        # still matches the batch reference byte for byte.
        restarted = _service(out)
        restarted.start()
        restarted.run()
        assert _live_journal(str(out)) == reference


# --------------------------------------------------------------------------- #
# Hot reconfiguration
# --------------------------------------------------------------------------- #
FAULT_PAYLOAD = {
    "kind": "fault-schedule",
    "faults": [{"kind": "latency", "at": 0.5, "duration": 1.0,
                "target": "edge0:cloud"}],
}


class TestHotReload:
    def test_payload_validation(self):
        with pytest.raises(LiveLoadError):
            validate_payload({"kind": "nope"})
        with pytest.raises(LiveLoadError):
            validate_payload({"kind": "fault-schedule", "faults": []})
        with pytest.raises(LiveLoadError):
            validate_payload({"kind": "fault-schedule",
                             "faults": [{"kind": "crash", "at": -1.0,
                                         "target": "edge0"}]})
        normalized = validate_payload(FAULT_PAYLOAD)
        assert normalized["kind"] == "fault-schedule"

    def test_hot_load_journaled_and_replayable(self, tmp_path):
        out = tmp_path / "live"
        service = _service(out)
        service.start()
        service.system.sim.at_fired(
            300, lambda s: service.hot_load(FAULT_PAYLOAD))
        assert service.run() == "completed"
        assert len(service.hot_loads_applied) == 1
        assert service.hot_loads_applied[0]["fired"] == 300

        journal = read_journal(str(out / "journal.jsonl"))
        reconfigs = journal.reconfigs()
        assert len(reconfigs) == 1
        assert reconfigs[0]["i"] == 300

        report = replay_journal(str(out / "journal.jsonl"), until=UNTIL)
        assert report.ok
        assert report.extra == {"reconfigs_applied": 1}

    def test_hot_load_then_drain_then_resume(self, tmp_path):
        out = tmp_path / "live"
        service = _service(out)
        service.start()
        service.system.sim.at_fired(
            300, lambda s: service.hot_load(FAULT_PAYLOAD))
        service.system.sim.at_fired(500, lambda s: service.request_drain())
        assert service.run() == "drained"

        restarted = _service(out)
        restarted.start()
        assert restarted.resumed
        # The checkpoint spec carries the load, so the resumed run
        # replays it at the same barrier.
        assert restarted.spec.params["live_loads"][0]["fired"] == 300
        assert restarted.run() == "completed"
        report = replay_journal(str(out / "journal.jsonl"), until=UNTIL)
        assert report.ok

    def test_hot_load_changes_the_event_stream(self, tmp_path):
        reference = _batch_reference(tmp_path)
        out = tmp_path / "live"
        service = _service(out)
        service.start()
        service.system.sim.at_fired(
            300, lambda s: service.hot_load(FAULT_PAYLOAD))
        service.run()
        assert _live_journal(str(out)) != reference

    def test_reload_directory_applies_and_rejects(self, tmp_path):
        out = tmp_path / "live"
        reload_dir = tmp_path / "reload"
        reload_dir.mkdir()
        (reload_dir / "01-faults.json").write_text(json.dumps(FAULT_PAYLOAD))
        (reload_dir / "02-broken.json").write_text("{\"kind\": \"nope\"}")

        service = _service(out, reload_dir=str(reload_dir))
        service.start()
        service.system.sim.at_fired(
            300, lambda s: service.poll_reload_dir())
        assert service.run() == "completed"
        assert len(service.hot_loads_applied) == 1
        assert (reload_dir / "01-faults.json.applied").exists()
        assert (reload_dir / "02-broken.json.rejected").exists()
        assert "nope" in (reload_dir / "02-broken.json.error").read_text()

    def test_chaos_spec_payload_applies(self, tmp_path):
        out = tmp_path / "live"
        service = _service(out)
        service.start()
        payload = {
            "kind": "chaos-spec",
            "spec": {"faults": [{"kind": "latency", "at": 0.5,
                                 "duration": 1.0,
                                 "target": "edge0:cloud"}]},
        }
        service.system.sim.at_fired(200, lambda s: service.hot_load(payload))
        assert service.run() == "completed"
        assert service.hot_loads_applied[0]["kind"] == "chaos-spec"
        assert replay_journal(str(out / "journal.jsonl"), until=UNTIL).ok


# --------------------------------------------------------------------------- #
# Signals
# --------------------------------------------------------------------------- #
class TestSignals:
    def test_sigterm_drains_with_final_checkpoint(self, tmp_path):
        from repro.cli import cmd_live

        out = str(tmp_path / "live")
        timer = threading.Timer(
            0.4, os.kill, args=(os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            code = cmd_live(False, scenario=SCENARIO, out=out, speed=2.0,
                            port=0, checkpoint_every=3600.0, until=UNTIL)
        finally:
            timer.cancel()
        assert code == 128 + signal.SIGTERM
        assert os.path.exists(os.path.join(out, "checkpoint.json"))
        assert not read_journal(os.path.join(out, "journal.jsonl")).complete

        # Restart on the same directory completes and verifies clean.
        code = cmd_live(False, scenario=SCENARIO, out=out, speed=0.0,
                        port=None, checkpoint_every=3600.0, until=UNTIL)
        assert code == 0
        assert replay_journal(os.path.join(out, "journal.jsonl"),
                              until=UNTIL).ok

    def test_batch_signal_flushes_harness_crash_incident(self, tmp_path,
                                                         monkeypatch):
        import repro.cli as cli
        import repro.persistence.runner as runner

        def interrupted(system, horizon):
            system.run(until=min(2.0, horizon))
            os.kill(os.getpid(), signal.SIGINT)
            system.run(until=horizon)   # unreachable: handler raises

        monkeypatch.setattr(runner, "_drive_to_horizon", interrupted)
        out = str(tmp_path / "out")
        code = cli.main(["monitor", "smart-city-partition", "--quick",
                         "--out", out])
        assert code == 130
        manifest = os.path.join(out, "incidents", "smart-city-partition",
                                "manifest.json")
        assert os.path.exists(manifest)
        with open(manifest, encoding="utf-8") as fh:
            data = json.load(fh)
        assert data["diagnosis"]["trigger_reason"] == "harness-crash"

"""Tests for the maturity-level archetypes (the executable Tables 1-2).

These are the slowest tests in the suite (each runs a full scenario), so
the horizon is kept short where the assertion allows it.
"""

import pytest

from repro.core.maturity import (
    MaturityScenario,
    ScenarioParams,
    run_maturity_comparison,
)
from repro.core.vectors import MaturityLevel
from repro.devices.software import ServiceState


@pytest.fixture(scope="module")
def comparison():
    """One shared full-length comparison run for the shape assertions."""
    params = ScenarioParams(n_sites=3, sensors_per_site=4, horizon=120.0, seed=42)
    return run_maturity_comparison(params)


class TestScenarioConstruction:
    def test_placement_per_level(self):
        params = ScenarioParams(horizon=1.0, disruption=False)
        assert MaturityScenario(MaturityLevel.ML1, params).proc_host(0) == "d0.0"
        assert MaturityScenario(MaturityLevel.ML2, params).proc_host(0) == "cloud"
        assert MaturityScenario(MaturityLevel.ML3, params).proc_host(0) == "edge0"
        ml4_host = MaturityScenario(MaturityLevel.ML4, params).proc_host(0)
        assert ml4_host is not None and ml4_host != "cloud"

    def test_loops_per_level(self):
        params = ScenarioParams(horizon=1.0, disruption=False)
        assert MaturityScenario(MaturityLevel.ML1, params)._loops == {}
        ml2 = MaturityScenario(MaturityLevel.ML2, params)
        assert list(ml2._loops) == ["cloud"]
        ml3 = MaturityScenario(MaturityLevel.ML3, params)
        assert sorted(ml3._loops) == ["edge0", "edge1", "edge2"]

    def test_identical_disruption_schedule_across_levels(self):
        params = ScenarioParams(horizon=1.0)
        schedules = [
            [(e.time, e.fault.name) for e in
             MaturityScenario(level, params).schedule.entries]
            for level in MaturityLevel
        ]
        assert all(s == schedules[0] for s in schedules[1:])


class TestShortRuns:
    def test_ml3_repairs_service_failure(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=30.0,
                                seed=7)
        scenario = MaturityScenario(MaturityLevel.ML3, params)
        scenario.run()
        host = scenario.system.fleet.get(scenario.proc_host(0))
        assert host.stack.service("proc0").state == ServiceState.RUNNING

    def test_ml1_service_stays_failed_within_technician_period(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=30.0,
                                seed=7, technician_period=80.0)
        scenario = MaturityScenario(MaturityLevel.ML1, params)
        scenario.run()
        host = scenario.system.fleet.get("d0.0")
        assert host.stack.service("proc0").state == ServiceState.FAILED

    def test_ml2_privacy_violations_traced(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=20.0,
                                seed=7)
        scenario = MaturityScenario(MaturityLevel.ML2, params)
        scenario.run()
        assert scenario.system.trace.count(
            category="governance", name="privacy-violation") > 0

    def test_ml4_no_privacy_violations(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=20.0,
                                seed=7)
        scenario = MaturityScenario(MaturityLevel.ML4, params)
        scenario.run()
        assert scenario.system.trace.count(
            category="governance", name="privacy-violation") == 0


class TestComparisonShape:
    """The T1/T2 claims recorded in EXPERIMENTS.md."""

    def test_resilience_strictly_improves_with_maturity(self, comparison):
        scores = [comparison[level].resilience_score for level in MaturityLevel]
        assert all(a < b for a, b in zip(scores, scores[1:])), scores

    def test_ml4_near_full_resilience(self, comparison):
        assert comparison[MaturityLevel.ML4].resilience_score > 0.9

    def test_ml1_dashboard_isolated(self, comparison):
        assessment = comparison[MaturityLevel.ML1].assessment("dashboard-freshness")
        assert (assessment.under_disruption or 0.0) < 0.1

    def test_ml2_privacy_violations_hurt_score(self, comparison):
        ml2 = comparison[MaturityLevel.ML2].assessment("privacy")
        ml4 = comparison[MaturityLevel.ML4].assessment("privacy")
        assert (ml2.under_disruption or 0.0) < (ml4.under_disruption or 0.0)

    def test_ml4_dashboard_survives_cloud_outage(self, comparison):
        """ML4 serves the dashboard from edge replicas: freshness holds
        even while the cloud is partitioned; ML2/ML3 degrade."""
        ml4 = comparison[MaturityLevel.ML4].assessment("dashboard-freshness")
        ml2 = comparison[MaturityLevel.ML2].assessment("dashboard-freshness")
        assert (ml4.under_disruption or 0.0) > 0.9
        assert (ml2.under_disruption or 0.0) < 0.9

    def test_edge_levels_keep_control_during_disruption(self, comparison):
        ml2 = comparison[MaturityLevel.ML2].assessment("control-availability")
        ml3 = comparison[MaturityLevel.ML3].assessment("control-availability")
        assert (ml3.under_disruption or 0.0) > (ml2.under_disruption or 0.0)

    def test_service_availability_ordering(self, comparison):
        values = [
            comparison[level].assessment("service-availability").under_disruption
            for level in MaturityLevel
        ]
        assert values[0] < values[2] < values[3]   # ML1 < ML3 < ML4

    def test_reports_cover_all_requirements(self, comparison):
        names = {a.name for a in comparison[MaturityLevel.ML4].assessments}
        assert names == {
            "service-availability", "reading-latency", "sensing-coverage",
            "dashboard-freshness", "privacy", "control-availability",
        }


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [3, 17, 99])
    def test_ordering_holds_across_seeds(self, seed):
        """The headline shape (ML1 < ML3 < ML4, ML4 > 0.9) is not a
        property of one lucky seed.  (ML1 vs ML2 ordering can tighten on
        short horizons, so the cross-seed check asserts the robust part.)"""
        params = ScenarioParams(n_sites=2, sensors_per_site=3, horizon=120.0,
                                seed=seed)
        reports = run_maturity_comparison(params)
        scores = {level: reports[level].resilience_score
                  for level in MaturityLevel}
        assert scores[MaturityLevel.ML1] < scores[MaturityLevel.ML3]
        assert scores[MaturityLevel.ML3] < scores[MaturityLevel.ML4]
        assert scores[MaturityLevel.ML2] < scores[MaturityLevel.ML4]
        assert scores[MaturityLevel.ML4] > 0.9


class TestDeterminism:
    def test_same_seed_same_score(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=40.0,
                                seed=5)
        first = MaturityScenario(MaturityLevel.ML3, params).run()
        second = MaturityScenario(MaturityLevel.ML3, params).run()
        assert first.resilience_score == second.resilience_score

    def test_different_seed_may_differ_but_valid(self):
        params_a = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=40.0, seed=5)
        params_b = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=40.0, seed=6)
        a = MaturityScenario(MaturityLevel.ML3, params_a).run()
        b = MaturityScenario(MaturityLevel.ML3, params_b).run()
        assert 0.0 <= a.resilience_score <= 1.0
        assert 0.0 <= b.resilience_score <= 1.0

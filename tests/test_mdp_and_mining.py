"""Tests for the MDP solver, the MDP planner, and trace model mining."""

import math

import pytest

from repro.adaptation.actions import (
    MigrateServiceAction,
    RebootDeviceAction,
    RestartServiceAction,
)
from repro.adaptation.knowledge import DeviceSnapshot, Issue, KnowledgeBase
from repro.adaptation.mdp_planner import (
    MdpPlanner,
    RepairModel,
    build_device_repair_mdp,
    build_service_repair_mdp,
)
from repro.modeling.mdp import Mdp, Transition
from repro.modeling.mining import (
    estimate_availability,
    mine_action_success_rates,
    mine_availability_dtmc,
)
from repro.simulation.trace import TraceLog


class TestMdpSolver:
    def test_two_state_analytic(self):
        """One action, known reward: V = r / (1 - gamma) at fixpoint."""
        mdp = Mdp(discount=0.5)
        mdp.add_state("s")
        mdp.add_state("t")
        mdp.add_action("s", "go", [Transition(1.0, "t", 10.0)])
        values, policy = mdp.value_iteration()
        assert values["s"] == pytest.approx(10.0)   # terminal next: V(t)=0
        assert policy["s"] == "go"
        assert policy["t"] is None

    def test_prefers_higher_expected_value(self):
        mdp = Mdp(discount=0.9)
        for state in ("s", "win", "lose"):
            mdp.add_state(state)
        mdp.add_action("s", "safe", [Transition(1.0, "win", 10.0)])
        mdp.add_action("s", "gamble", [
            Transition(0.5, "win", 30.0),
            Transition(0.5, "lose", -20.0),
        ])
        values, policy = mdp.value_iteration()
        # E[gamble] = 5 < E[safe] = 10.
        assert policy["s"] == "safe"

    def test_discount_affects_long_chains(self):
        mdp = Mdp(discount=0.5)
        for state in ("a", "b", "goal"):
            mdp.add_state(state)
        mdp.add_action("a", "slow", [Transition(1.0, "b", 0.0)])
        mdp.add_action("a", "direct", [Transition(1.0, "goal", 6.0)])
        mdp.add_action("b", "finish", [Transition(1.0, "goal", 10.0)])
        values, policy = mdp.value_iteration()
        # direct: 6 now; slow: 0.5 * 10 = 5 discounted.
        assert policy["a"] == "direct"

    def test_probabilities_must_sum_to_one(self):
        mdp = Mdp()
        mdp.add_state("s")
        with pytest.raises(ValueError):
            mdp.add_action("s", "bad", [Transition(0.5, "s", 0.0)])

    def test_unknown_next_state_raises(self):
        mdp = Mdp()
        mdp.add_state("s")
        with pytest.raises(KeyError):
            mdp.add_action("s", "go", [Transition(1.0, "ghost", 0.0)])

    def test_invalid_discount_raises(self):
        with pytest.raises(ValueError):
            Mdp(discount=0.0)

    def test_q_values_exposed(self):
        mdp = Mdp(discount=0.9)
        mdp.add_state("s")
        mdp.add_state("t")
        mdp.add_action("s", "a", [Transition(1.0, "t", 5.0)])
        values, _ = mdp.value_iteration()
        assert mdp.q_values("s", values) == {"a": pytest.approx(5.0)}


class TestRepairMdps:
    def test_reliable_restart_chosen(self):
        model = RepairModel(restart_success=0.9)
        mdp = build_service_repair_mdp(model, can_migrate=True)
        _, policy = mdp.value_iteration()
        assert policy["failed"] == "restart"

    def test_hopeless_restart_escalates_to_migrate(self):
        model = RepairModel(restart_success=0.05)
        mdp = build_service_repair_mdp(model, can_migrate=True)
        _, policy = mdp.value_iteration()
        assert policy["failed"] == "migrate"

    def test_no_migration_available_still_restarts(self):
        model = RepairModel(restart_success=0.05)
        mdp = build_service_repair_mdp(model, can_migrate=False)
        _, policy = mdp.value_iteration()
        assert policy["failed"] == "restart"   # better than waiting forever

    def test_device_repair_prefers_reboot(self):
        mdp = build_device_repair_mdp(RepairModel(), can_migrate=False)
        _, policy = mdp.value_iteration()
        assert policy["down"] == "reboot"

    def test_invalid_model_raises(self):
        with pytest.raises(ValueError):
            RepairModel(restart_success=1.5).validate()


def snapshot(device_id, t, failed=(), running=()):
    return DeviceSnapshot(device_id=device_id, observed_at=t, up=True,
                          battery_fraction=1.0,
                          running_services=frozenset(running),
                          failed_services=frozenset(failed))


class TestMdpPlanner:
    def _issue(self):
        return Issue(kind="service-failed", subject="d1", detected_at=0.0,
                     service="svc")

    def test_fresh_failure_gets_restart(self):
        planner = MdpPlanner()
        kb = KnowledgeBase(["d1", "d2"])
        kb.observe(snapshot("d1", 0.0, failed={"svc"}))
        kb.observe(snapshot("d2", 0.0))
        plan = planner.plan([self._issue()], kb, 0.0)
        assert isinstance(plan.actions[0], RestartServiceAction)

    def test_repeated_restart_failures_shift_policy_to_migration(self):
        """The escalation ladder emerges from belief updates."""
        planner = MdpPlanner()
        kb = KnowledgeBase(["d1", "d2"])
        kb.observe(snapshot("d1", 0.0, failed={"svc"}))
        kb.observe(snapshot("d2", 0.0))
        issue = self._issue()
        action = planner.plan([issue], kb, 0.0).actions[0]
        for _ in range(8):
            planner.record_outcome(action, success=False)
        escalated = planner.plan([issue], kb, 1.0).actions[0]
        assert isinstance(escalated, MigrateServiceAction)
        assert escalated.destination == "d2"

    def test_device_down_gets_reboot(self):
        planner = MdpPlanner()
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="device-down", subject="d1", detected_at=0.0)
        plan = planner.plan([issue], kb, 0.0)
        assert isinstance(plan.actions[0], RebootDeviceAction)

    def test_unknown_issue_kind_ignored(self):
        planner = MdpPlanner()
        kb = KnowledgeBase(["d1"])
        issue = Issue(kind="mystery", subject="d1", detected_at=0.0)
        assert planner.plan([issue], kb, 0.0).empty


class TestMining:
    def _trace_with_outages(self):
        trace = TraceLog()
        # Device d1: up 0-10, down 10-15, up 15-40, down 40-50, up 50-100.
        trace.emit(10.0, "fault", "crash", subject="d1")
        trace.emit(15.0, "recovery", "device-recover", subject="d1")
        trace.emit(40.0, "fault", "crash", subject="d1")
        trace.emit(50.0, "recovery", "device-recover", subject="d1")
        return trace

    def test_estimate_availability(self):
        estimate = estimate_availability(self._trace_with_outages(), "d1",
                                         horizon=100.0)
        assert estimate.up_time == pytest.approx(85.0)
        assert estimate.down_time == pytest.approx(15.0)
        assert estimate.availability == pytest.approx(0.85)
        assert estimate.failures == 2 and estimate.repairs == 2
        assert estimate.mean_time_to_failure == pytest.approx((10 + 25) / 2)
        assert estimate.mean_time_to_repair == pytest.approx((5 + 10) / 2)

    def test_never_failed_device(self):
        trace = TraceLog()
        estimate = estimate_availability(trace, "d1", horizon=100.0)
        assert estimate.availability == 1.0
        assert estimate.mean_time_to_failure is None

    def test_open_outage_counts_until_horizon(self):
        trace = TraceLog()
        trace.emit(90.0, "fault", "crash", subject="d1")
        estimate = estimate_availability(trace, "d1", horizon=100.0)
        assert estimate.down_time == pytest.approx(10.0)

    def test_mined_dtmc_matches_observed_availability(self):
        chain, estimate = mine_availability_dtmc(
            self._trace_with_outages(), "d1", horizon=100.0, step=1.0)
        pi = chain.stationary_distribution()
        # Stationary availability = MTTF / (MTTF + MTTR).
        expected = estimate.mean_time_to_failure / (
            estimate.mean_time_to_failure + estimate.mean_time_to_repair)
        assert pi["up"] == pytest.approx(expected, rel=1e-9)

    def test_mined_dtmc_for_healthy_device_is_always_up(self):
        chain, _ = mine_availability_dtmc(TraceLog(), "d1", horizon=100.0)
        pi = chain.stationary_distribution()
        assert pi["up"] == pytest.approx(1.0)

    def test_action_success_rates(self):
        trace = TraceLog()
        trace.emit(1.0, "adaptation", "action-success", subject="d1",
                   action="restart 'svc' on 'd1'")
        trace.emit(2.0, "adaptation", "action-failure", subject="d1",
                   action="restart 'svc' on 'd1'")
        trace.emit(3.0, "adaptation", "action-success", subject="d1",
                   action="migrate 'svc' from 'd1' to 'd2'")
        rates = mine_action_success_rates(trace)
        assert rates["restart"] == (1, 1, 0.5)
        assert rates["migrate"] == (1, 0, 1.0)

    def test_mined_rates_feed_repair_model(self):
        """End to end: mine executor outcomes, build a RepairModel, and
        check the derived policy reflects the evidence."""
        trace = TraceLog()
        for i in range(9):
            trace.emit(float(i), "adaptation", "action-failure", subject="d1",
                       action="restart 'svc' on 'd1'")
        trace.emit(9.0, "adaptation", "action-success", subject="d1",
                   action="restart 'svc' on 'd1'")
        rates = mine_action_success_rates(trace)
        model = RepairModel(restart_success=rates["restart"][2])
        mdp = build_service_repair_mdp(model, can_migrate=True)
        _, policy = mdp.value_iteration()
        assert policy["failed"] == "migrate"   # 10% restarts aren't worth it

"""Unit tests for DTMCs, runtime monitors and goal models."""

import math

import pytest

from repro.modeling.dtmc import Dtmc, availability_dtmc
from repro.modeling.goals import Goal, GoalModel, GoalStatus, Obstacle, Refinement
from repro.modeling.properties import Always, Eventually, LeadsTo, Next, Until, prop
from repro.modeling.runtime_monitor import (
    MonitorVerdict,
    RuntimeMonitor,
    TraceStateAdapter,
)
from repro.simulation.trace import TraceLog


class TestDtmc:
    def test_row_sum_validation(self):
        chain = Dtmc()
        chain.add_state("a", initial=True)
        chain.set_transition("a", "a", 0.5)
        with pytest.raises(ValueError):
            chain.validate()

    def test_invalid_probability_raises(self):
        chain = Dtmc()
        chain.add_state("a")
        with pytest.raises(ValueError):
            chain.set_transition("a", "a", 1.5)

    def test_duplicate_state_raises(self):
        chain = Dtmc()
        chain.add_state("a")
        with pytest.raises(ValueError):
            chain.add_state("a")

    def test_reachability_simple_chain(self):
        chain = Dtmc()
        for s in ("a", "b", "target", "doomed"):
            chain.add_state(s, initial=(s == "a"))
        chain.set_transition("a", "b", 0.5)
        chain.set_transition("a", "doomed", 0.5)
        chain.set_transition("b", "target", 1.0)
        chain.set_transition("target", "target", 1.0)
        chain.set_transition("doomed", "doomed", 1.0)
        probs = chain.reachability_probability({"target"})
        assert probs["a"] == pytest.approx(0.5)
        assert probs["b"] == pytest.approx(1.0)
        assert probs["doomed"] == 0.0
        assert probs["target"] == 1.0

    def test_expected_steps_geometric(self):
        chain, _ = availability_dtmc(0.1, 0.5)
        steps = chain.expected_steps({"down"})
        assert steps["up"] == pytest.approx(10.0)
        assert steps["down"] == 0.0

    def test_expected_steps_infinite_when_unreachable(self):
        chain = Dtmc()
        chain.add_state("a", initial=True)
        chain.add_state("island")
        chain.set_transition("a", "a", 1.0)
        chain.set_transition("island", "island", 1.0)
        steps = chain.expected_steps({"island"})
        assert math.isinf(steps["a"])

    def test_bounded_reachability_monotone_in_steps(self):
        chain, _ = availability_dtmc(0.2, 0.5)
        p1 = chain.bounded_reachability({"down"}, 1)["up"]
        p5 = chain.bounded_reachability({"down"}, 5)["up"]
        p50 = chain.bounded_reachability({"down"}, 50)["up"]
        assert p1 <= p5 <= p50 <= 1.0
        assert p1 == pytest.approx(0.2)

    def test_bounded_negative_steps_raises(self):
        chain, _ = availability_dtmc(0.2, 0.5)
        with pytest.raises(ValueError):
            chain.bounded_reachability({"down"}, -1)

    def test_stationary_matches_analytic_availability(self):
        chain, analytic = availability_dtmc(0.05, 0.4)
        pi = chain.stationary_distribution()
        assert pi["up"] == pytest.approx(analytic, abs=1e-9)
        assert pi["up"] + pi["down"] == pytest.approx(1.0)

    def test_availability_dtmc_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            availability_dtmc(0.0, 0.5)


class TestRuntimeMonitor:
    def test_always_violated_on_bad_state(self):
        monitor = RuntimeMonitor()
        monitor.watch("inv", Always(prop("ok")))
        assert monitor.observe({"ok"}, 0.0)["inv"] == MonitorVerdict.UNDETERMINED
        assert monitor.observe(set(), 1.0)["inv"] == MonitorVerdict.VIOLATED
        # Violation is latched.
        assert monitor.observe({"ok"}, 2.0)["inv"] == MonitorVerdict.VIOLATED
        assert monitor.violation_times["inv"] == [1.0]

    def test_always_satisfied_at_end_of_clean_trace(self):
        monitor = RuntimeMonitor()
        monitor.watch("inv", Always(prop("ok")))
        monitor.observe({"ok"}, 0.0)
        assert monitor.final_verdicts()["inv"] == MonitorVerdict.SATISFIED

    def test_eventually_satisfied_once(self):
        monitor = RuntimeMonitor()
        monitor.watch("goal", Eventually(prop("done")))
        monitor.observe(set(), 0.0)
        assert monitor.verdict("goal") == MonitorVerdict.UNDETERMINED
        monitor.observe({"done"}, 1.0)
        assert monitor.verdict("goal") == MonitorVerdict.SATISFIED

    def test_eventually_violated_at_end(self):
        monitor = RuntimeMonitor()
        monitor.watch("goal", Eventually(prop("done")))
        monitor.observe(set(), 0.0)
        assert monitor.final_verdicts()["goal"] == MonitorVerdict.VIOLATED

    def test_next_checks_second_observation(self):
        monitor = RuntimeMonitor()
        monitor.watch("nxt", Next(prop("armed")))
        monitor.observe(set(), 0.0)
        monitor.observe({"armed"}, 1.0)
        assert monitor.verdict("nxt") == MonitorVerdict.SATISFIED

    def test_until_satisfied(self):
        monitor = RuntimeMonitor()
        monitor.watch("u", Until(prop("holding"), prop("released")))
        monitor.observe({"holding"}, 0.0)
        monitor.observe({"holding"}, 1.0)
        monitor.observe({"released"}, 2.0)
        assert monitor.verdict("u") == MonitorVerdict.SATISFIED

    def test_until_violated_when_left_breaks_early(self):
        monitor = RuntimeMonitor()
        monitor.watch("u", Until(prop("holding"), prop("released")))
        monitor.observe({"holding"}, 0.0)
        monitor.observe(set(), 1.0)
        assert monitor.verdict("u") == MonitorVerdict.VIOLATED

    def test_leadsto_latency_and_final_verdict(self):
        monitor = RuntimeMonitor()
        monitor.watch("heal", LeadsTo(prop("fault"), prop("repaired")))
        monitor.observe({"fault"}, 1.0)
        monitor.observe(set(), 2.0)
        monitor.observe({"repaired"}, 4.0)
        assert monitor.response_latencies("heal") == [3.0]
        assert monitor.final_verdicts()["heal"] == MonitorVerdict.SATISFIED

    def test_leadsto_pending_trigger_violates_at_end(self):
        monitor = RuntimeMonitor()
        monitor.watch("heal", LeadsTo(prop("fault"), prop("repaired")))
        monitor.observe({"fault"}, 1.0)
        assert monitor.pending_triggers("heal") == 1
        assert monitor.final_verdicts()["heal"] == MonitorVerdict.VIOLATED

    def test_duplicate_watch_raises(self):
        monitor = RuntimeMonitor()
        monitor.watch("p", Always(prop("x")))
        with pytest.raises(ValueError):
            monitor.watch("p", Always(prop("x")))

    def test_state_formula_immediate_verdict(self):
        monitor = RuntimeMonitor()
        monitor.watch("now", prop("ready"))
        monitor.observe({"ready"}, 0.0)
        assert monitor.verdict("now") == MonitorVerdict.SATISFIED


class TestTraceStateAdapter:
    def test_rules_toggle_propositions(self):
        monitor = RuntimeMonitor()
        monitor.watch("inv", Always(~prop("faulty")))
        adapter = (TraceStateAdapter(monitor)
                   .rule(category="fault", add={"faulty"})
                   .rule(category="recovery", remove={"faulty"}))
        trace = TraceLog()
        adapter.attach(trace)
        trace.emit(1.0, "fault", "crash", subject="d1")
        assert monitor.verdict("inv") == MonitorVerdict.VIOLATED
        assert adapter.current_labels == {"faulty"}
        trace.emit(2.0, "recovery", "device-recover", subject="d1")
        assert adapter.current_labels == set()

    def test_replay_completed_trace(self):
        trace = TraceLog()
        trace.emit(1.0, "fault", "crash")
        trace.emit(5.0, "recovery", "device-recover")
        monitor = RuntimeMonitor()
        monitor.watch("heal", LeadsTo(prop("faulty"), prop("healthy")))
        adapter = (TraceStateAdapter(monitor)
                   .set_initial({"healthy"})
                   .rule(category="fault", add={"faulty"}, remove={"healthy"})
                   .rule(category="recovery", add={"healthy"}, remove={"faulty"}))
        adapter.replay(trace)
        assert monitor.final_verdicts()["heal"] == MonitorVerdict.SATISFIED
        assert monitor.response_latencies("heal") == [4.0]

    def test_unmatched_events_do_not_observe(self):
        monitor = RuntimeMonitor()
        monitor.watch("inv", Always(prop("ok")))
        adapter = TraceStateAdapter(monitor).set_initial({"ok"}) \
            .rule(category="fault", remove={"ok"})
        trace = TraceLog()
        adapter.attach(trace)
        trace.emit(1.0, "message", "drop")
        assert monitor.observation_count == 0


class TestGoalModel:
    def _model(self):
        model = GoalModel("root")
        model.add_goal(Goal("root"))
        model.add_goal(Goal("left", assigned_to="edge0"))
        model.add_goal(Goal("right", assigned_to="edge1"))
        model.refine("root", ["left", "right"])
        return model

    def test_and_refinement_propagation(self):
        model = self._model()
        assert model.status() == GoalStatus.UNKNOWN
        model.set_leaf_status("left", GoalStatus.SATISFIED)
        model.set_leaf_status("right", GoalStatus.SATISFIED)
        assert model.status() == GoalStatus.SATISFIED
        model.set_leaf_status("left", GoalStatus.DENIED)
        assert model.status() == GoalStatus.DENIED

    def test_or_refinement(self):
        model = GoalModel("root")
        model.add_goal(Goal("root"))
        model.add_goal(Goal("a"))
        model.add_goal(Goal("b"))
        model.refine("root", ["a", "b"], refinement=Refinement.OR)
        model.set_leaf_status("a", GoalStatus.DENIED)
        model.set_leaf_status("b", GoalStatus.SATISFIED)
        assert model.status() == GoalStatus.SATISFIED
        model.set_leaf_status("b", GoalStatus.DENIED)
        assert model.status() == GoalStatus.DENIED

    def test_obstacle_denies_goal(self):
        model = self._model()
        model.set_leaf_status("left", GoalStatus.SATISFIED)
        model.set_leaf_status("right", GoalStatus.SATISFIED)
        model.add_obstacle(Obstacle("outage", obstructs=["left"]))
        model.set_obstacle_active("outage", True)
        assert model.status() == GoalStatus.DENIED
        model.set_obstacle_active("outage", False)
        assert model.status() == GoalStatus.SATISFIED

    def test_critical_obstacles(self):
        model = self._model()
        model.add_obstacle(Obstacle("kills-left", obstructs=["left"]))
        model.add_obstacle(Obstacle("harmless", obstructs=[]))
        critical = [o.name for o in model.critical_obstacles()]
        assert critical == ["kills-left"]

    def test_critical_obstacles_restores_state(self):
        model = self._model()
        model.set_leaf_status("left", GoalStatus.DENIED)
        model.add_obstacle(Obstacle("o", obstructs=["left"]))
        model.critical_obstacles()
        assert model.status("left") == GoalStatus.DENIED

    def test_set_status_on_non_leaf_raises(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.set_leaf_status("root", GoalStatus.SATISFIED)

    def test_assignments(self):
        model = self._model()
        assert model.assignments() == {"edge0": ["left"], "edge1": ["right"]}

    def test_unknown_goal_raises(self):
        model = self._model()
        with pytest.raises(KeyError):
            model.status("ghost")

    def test_conflicting_assignments_detected(self):
        model = GoalModel("root")
        model.add_goal(Goal("root"))
        model.add_goal(Goal("fast", assigned_to="dev"))
        model.add_goal(Goal("cheap", assigned_to="dev"))
        model.refine("root", ["fast", "cheap"], refinement=Refinement.OR)
        conflicts = model.conflicting_assignments()
        assert conflicts == [("dev", "fast", "cheap")]

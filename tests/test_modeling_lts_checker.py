"""Unit tests for LTS construction/composition and the model checker."""

import pytest

from repro.modeling.checker import ModelChecker
from repro.modeling.lts import (
    LabelledTransitionSystem,
    build_chain_lts,
    build_device_lifecycle_lts,
    build_grid_lts,
)
from repro.modeling.properties import Always, Eventually, LeadsTo, Next, prop


class TestLts:
    def test_add_state_and_transition(self):
        lts = LabelledTransitionSystem()
        lts.add_state("a", labels={"start"}, initial=True)
        lts.add_state("b")
        lts.add_transition("a", "go", "b")
        assert lts.state_count == 2
        assert lts.transition_count == 1
        assert lts.initial.state_id == "a"
        assert [(a, s.state_id) for a, s in lts.successors("a")] == [("go", "b")]

    def test_duplicate_state_raises(self):
        lts = LabelledTransitionSystem()
        lts.add_state("a")
        with pytest.raises(ValueError):
            lts.add_state("a")

    def test_transition_unknown_state_raises(self):
        lts = LabelledTransitionSystem()
        lts.add_state("a")
        with pytest.raises(KeyError):
            lts.add_transition("a", "go", "ghost")

    def test_no_initial_raises(self):
        lts = LabelledTransitionSystem()
        lts.add_state("a")
        with pytest.raises(ValueError):
            _ = lts.initial

    def test_reachable_states(self):
        lts = LabelledTransitionSystem()
        lts.add_state("a", initial=True)
        lts.add_state("b")
        lts.add_state("island")
        lts.add_transition("a", "go", "b")
        assert lts.reachable_states() == {"a", "b"}

    def test_deadlock_detection(self):
        lts = LabelledTransitionSystem()
        lts.add_state("a", initial=True)
        lts.add_state("stuck")
        lts.add_transition("a", "go", "stuck")
        assert lts.deadlock_states() == {"stuck"}

    def test_actions(self):
        lts = build_device_lifecycle_lts()
        assert "crash" in lts.actions()

    def test_parallel_composition_interleaves(self):
        a = build_chain_lts(3, name="a")
        b = build_chain_lts(2, name="b")
        # Different alphabets? both use "step" -> synchronized.
        product = a.parallel(b)
        # Synchronizing on "step": b exhausts after 1 step, so the product
        # has the diagonal prefix only.
        assert product.has_state((0, 0))
        assert product.has_state((1, 1))
        assert not product.has_state((2, 0))

    def test_parallel_composition_no_sync(self):
        a = build_chain_lts(2, name="a")
        b = build_chain_lts(2, name="b")
        product = a.parallel(b, sync_actions=set())
        # Full interleaving: 4 reachable states.
        assert product.state_count == 4
        assert product.has_state((1, 1))

    def test_parallel_labels_union(self):
        a = build_chain_lts(2, name="a")
        b = build_chain_lts(2, name="b")
        product = a.parallel(b, sync_actions=set())
        assert product.state((0, 0)).labels == frozenset({"start"})
        assert "end" in product.state((1, 1)).labels


class TestChecker:
    def test_invariant_holds(self):
        checker = ModelChecker(build_device_lifecycle_lts())
        result = checker.check(Always(prop("up") | prop("down")))
        assert result.holds
        assert result.states_explored == 4

    def test_invariant_violation_gives_shortest_counterexample(self):
        checker = ModelChecker(build_device_lifecycle_lts())
        result = checker.check(Always(prop("up")))
        assert not result.holds
        assert result.counterexample == ["up", "down"]

    def test_reachability_witness(self):
        checker = ModelChecker(build_device_lifecycle_lts())
        result = checker.check(Eventually(prop("recovering")))
        assert result.holds
        assert result.witness[0] == "up"
        assert result.witness[-1] == "recovering"

    def test_reachability_failure(self):
        checker = ModelChecker(build_chain_lts(5))
        result = checker.check(Eventually(prop("nonexistent")))
        assert not result.holds
        assert result.states_explored == 5

    def test_leadsto_holds_with_recovery(self):
        checker = ModelChecker(build_device_lifecycle_lts())
        assert checker.check(LeadsTo(prop("down"), prop("up"))).holds

    def test_leadsto_fails_on_absorbing_failure(self):
        lts = LabelledTransitionSystem()
        lts.add_state("up", labels={"up"}, initial=True)
        lts.add_state("down", labels={"down"})
        lts.add_transition("up", "crash", "down")
        lts.add_transition("down", "stay", "down")
        result = ModelChecker(lts).check(LeadsTo(prop("down"), prop("up")))
        assert not result.holds
        assert "cycle" in result.detail

    def test_leadsto_fails_on_deadlock(self):
        lts = LabelledTransitionSystem()
        lts.add_state("up", labels={"up"}, initial=True)
        lts.add_state("dead", labels={"down"})
        lts.add_transition("up", "crash", "dead")
        result = ModelChecker(lts).check(LeadsTo(prop("down"), prop("up")))
        assert not result.holds
        assert "deadlock" in result.detail

    def test_leadsto_vacuous_without_trigger(self):
        checker = ModelChecker(build_chain_lts(3))
        result = checker.check(LeadsTo(prop("never"), prop("end")))
        assert result.holds
        assert "no reachable trigger" in result.detail

    def test_always_eventually(self):
        checker = ModelChecker(build_device_lifecycle_lts())
        # The lifecycle allows staying up forever, so G F down fails...
        assert not checker.check(Always(Eventually(prop("down")))).holds
        # ...but wait: the up state has outgoing transitions only; a cycle
        # up->degraded->up avoids "down", hence the failure is correct.

    def test_state_formula_in_initial(self):
        checker = ModelChecker(build_device_lifecycle_lts())
        assert checker.check(prop("up")).holds
        assert not checker.check(prop("down")).holds

    def test_implication_and_negation(self):
        checker = ModelChecker(build_device_lifecycle_lts())
        assert checker.check(Always(prop("serving") >> prop("up"))).holds
        assert checker.check(Always(~(prop("up") & prop("down")))).holds

    def test_unsupported_formula_raises(self):
        checker = ModelChecker(build_chain_lts(2))
        with pytest.raises(ValueError):
            checker.check(Always(Next(prop("x"))))

    def test_grid_scaling(self):
        checker = ModelChecker(build_grid_lts(20, 20))
        result = checker.check(Eventually(prop("goal")))
        assert result.holds
        invariant = checker.check(Always(~prop("lava")))
        assert invariant.holds
        assert invariant.states_explored == 400

"""Tests for the spatial environment model."""

import pytest

from repro.modeling.properties import Always, prop
from repro.modeling.runtime_monitor import MonitorVerdict, RuntimeMonitor
from repro.modeling.space import (
    SpatialModel,
    build_city_space,
    current_labels,
)


@pytest.fixture
def city():
    model = build_city_space(3, 2)
    # A sensor in each district's first building; a controller in district0.
    for d in range(3):
        model.place_entity(f"sensor{d}", f"district{d}/building0")
    model.place_entity("controller", "district0")
    return model


class TestPlaces:
    def test_hierarchy(self, city):
        assert city.contains("city", "district1/building0")
        assert city.contains("district1", "district1/building0")
        assert not city.contains("district0", "district1/building0")
        assert city.ancestors("district2/building1") == ["district2", "city"]
        assert "district0" in city.children_of("city")

    def test_duplicate_place_raises(self):
        model = SpatialModel()
        model.add_place("x")
        with pytest.raises(ValueError):
            model.add_place("x")

    def test_unknown_parent_raises(self):
        model = SpatialModel()
        with pytest.raises(KeyError):
            model.add_place("x", parent="ghost")

    def test_connect_unknown_raises(self):
        model = SpatialModel()
        model.add_place("a")
        with pytest.raises(KeyError):
            model.connect("a", "ghost")


class TestEntities:
    def test_placement_and_lookup(self, city):
        assert city.location_of("sensor0") == "district0/building0"
        assert city.location_of("ghost") is None

    def test_entities_at_transitive(self, city):
        assert city.entities_at("district0") == ["controller", "sensor0"]
        assert city.entities_at("district0", transitive=False) == ["controller"]
        assert set(city.entities_at("city")) == {
            "controller", "sensor0", "sensor1", "sensor2",
        }

    def test_movement_logged(self, city):
        city.place_entity("sensor0", "district1/building0", time=5.0)
        assert city.movement_log == [
            (5.0, "sensor0", "district0/building0", "district1/building0")
        ]

    def test_place_entity_unknown_place_raises(self, city):
        with pytest.raises(KeyError):
            city.place_entity("x", "nowhere")


class TestDistances:
    def test_hop_distance(self, city):
        assert city.hop_distance("district0", "district0") == 0
        assert city.hop_distance("district0", "district1") == 1
        assert city.hop_distance("district0/building0", "district1/building0") == 3

    def test_disconnected_is_none(self):
        model = SpatialModel()
        model.add_place("a")
        model.add_place("b")
        assert model.hop_distance("a", "b") is None

    def test_entity_distance(self, city):
        assert city.entity_distance("controller", "sensor0") == 1
        assert city.entity_distance("controller", "ghost") is None

    def test_within_hops(self, city):
        nearby = city.within_hops("district0", 1)
        assert "district1" in nearby and "district2" in nearby
        assert "district1/building0" not in nearby


class TestCoverage:
    def test_covered_when_controller_close(self, city):
        ok, uncovered = city.covered(
            ["sensor0", "sensor1", "sensor2"], ["controller"], max_hops=2,
        )
        assert ok and uncovered == []

    def test_uncovered_when_too_far(self, city):
        ok, uncovered = city.covered(["sensor1"], ["controller"], max_hops=1)
        assert not ok and uncovered == ["sensor1"]

    def test_unplaced_target_uncovered(self, city):
        ok, uncovered = city.covered(["ghost"], ["controller"], max_hops=5)
        assert not ok and uncovered == ["ghost"]

    def test_coverage_restored_by_moving_guardian(self, city):
        ok, _ = city.covered(["sensor2"], ["controller"], max_hops=1)
        assert not ok
        city.place_entity("controller", "district2", time=1.0)
        ok, _ = city.covered(["sensor2"], ["controller"], max_hops=1)
        assert ok


class TestMonitorIntegration:
    def test_spatial_property_monitored_over_movement(self, city):
        """The spatial requirement 'all sensors covered within 2 hops'
        monitored as a temporal invariant while entities move."""
        coverage = city.proposition(
            "covered",
            lambda model: model.covered(
                ["sensor0", "sensor1", "sensor2"], ["controller"], max_hops=2,
            )[0],
        )
        monitor = RuntimeMonitor()
        monitor.watch("coverage", Always(prop("covered")))
        monitor.observe(current_labels([coverage]), 0.0)
        assert monitor.verdict("coverage") == MonitorVerdict.UNDETERMINED
        # The controller wanders into a building: sensors in other
        # districts fall out of the 2-hop bound.
        city.place_entity("controller", "district0/building1", time=1.0)
        monitor.observe(current_labels([coverage]), 1.0)
        assert monitor.verdict("coverage") == MonitorVerdict.VIOLATED
        assert monitor.violation_times["coverage"] == [1.0]

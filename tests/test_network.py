"""Unit tests for links, topology, transport and partitions."""

import random

import pytest

from repro.network.link import LINK_PROFILES, LatencyModel, Link, LinkProfile
from repro.network.partition import PartitionManager
from repro.network.topology import (
    Topology,
    build_edge_cloud_topology,
    build_mesh_topology,
    build_star_topology,
)
from repro.network.transport import Network, NetworkStats


class TestLinkProfile:
    def test_invalid_profiles_raise(self):
        with pytest.raises(ValueError):
            LinkProfile("x", base_latency=-1.0)
        with pytest.raises(ValueError):
            LinkProfile("x", base_latency=0.01, loss_rate=1.5)
        with pytest.raises(ValueError):
            LinkProfile("x", base_latency=0.01, bandwidth=0)
        with pytest.raises(ValueError):
            LinkProfile("x", base_latency=0.01, jitter=0.02)

    def test_builtin_profiles_ordered_by_latency(self):
        assert LINK_PROFILES["local"].base_latency < LINK_PROFILES["lan"].base_latency
        assert LINK_PROFILES["lan"].base_latency < LINK_PROFILES["wan"].base_latency

    def test_latency_model_within_jitter_bounds(self):
        profile = LinkProfile("t", base_latency=0.010, jitter=0.002)
        model = LatencyModel(profile, random.Random(1))
        for _ in range(200):
            latency = model.sample_latency()
            assert 0.008 <= latency <= 0.012

    def test_serialization_delay_added(self):
        profile = LinkProfile("t", base_latency=0.0, bandwidth=1000.0)
        model = LatencyModel(profile, random.Random(1))
        assert model.sample_latency(size_bytes=500) == pytest.approx(0.5)

    def test_degradation_multiplies_latency(self):
        profile = LinkProfile("t", base_latency=0.010)
        model = LatencyModel(profile, random.Random(1))
        model.degradation = 10.0
        assert model.sample_latency() == pytest.approx(0.1)

    def test_loss_rate_statistics(self):
        profile = LinkProfile("t", base_latency=0.01, loss_rate=0.3)
        model = LatencyModel(profile, random.Random(7))
        losses = sum(model.sample_loss() for _ in range(5000))
        assert 0.25 < losses / 5000 < 0.35


class TestLink:
    def test_self_link_raises(self):
        with pytest.raises(ValueError):
            Link("a", "a", LINK_PROFILES["lan"], random.Random(1))

    def test_other_endpoint(self):
        link = Link("a", "b", LINK_PROFILES["lan"], random.Random(1))
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(ValueError):
            link.other("c")

    def test_degradation_below_one_raises(self):
        link = Link("a", "b", LINK_PROFILES["lan"], random.Random(1))
        with pytest.raises(ValueError):
            link.set_degradation(0.5)

    def test_key_is_order_independent(self):
        a = Link("x", "y", LINK_PROFILES["lan"], random.Random(1))
        b = Link("y", "x", LINK_PROFILES["lan"], random.Random(1))
        assert a.key() == b.key()


class TestTopology:
    def test_route_prefers_low_latency(self):
        topo = Topology(rng=random.Random(1))
        topo.add_link("a", "b", profile="wan")
        topo.add_link("a", "c", profile="lan")
        topo.add_link("c", "b", profile="lan")
        assert topo.route("a", "b") == ["a", "c", "b"]

    def test_route_avoids_down_links(self):
        topo = Topology(rng=random.Random(1))
        topo.add_link("a", "c", profile="lan")
        topo.add_link("c", "b", profile="lan")
        topo.add_link("a", "b", profile="wan")
        topo.link_between("a", "c").set_up(False)
        assert topo.route("a", "b") == ["a", "b"]

    def test_unreachable_returns_none(self):
        topo = Topology(rng=random.Random(1))
        topo.add_node("a")
        topo.add_node("b")
        assert topo.route("a", "b") is None
        assert not topo.reachable("a", "b")

    def test_route_to_self(self):
        topo = Topology(rng=random.Random(1))
        topo.add_node("a")
        assert topo.route("a", "a") == ["a"]

    def test_unknown_profile_raises(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_link("a", "b", profile="warp")

    def test_components_reflect_partitions(self):
        topo = build_mesh_topology(["a", "b", "c"], rng=random.Random(1))
        assert len(topo.components()) == 1
        for neighbor in ("b", "c"):
            topo.link_between("a", neighbor).set_up(False)
        components = topo.components()
        assert {"a"} in components

    def test_expected_latency_sums_path(self):
        topo = Topology(rng=random.Random(1))
        topo.add_link("a", "b", profile="lan")
        topo.add_link("b", "c", profile="lan")
        expected = 2 * LINK_PROFILES["lan"].base_latency
        assert topo.expected_latency("a", "c") == pytest.approx(expected)

    def test_remove_node_cleans_links(self):
        topo = build_star_topology("hub", ["l1", "l2"], rng=random.Random(1))
        topo.remove_node("hub")
        assert not topo.has_node("hub")
        assert all(link.key() != "hub--l1" for link in topo.links)

    def test_edge_cloud_builder_shape(self):
        topo, sites = build_edge_cloud_topology(3, 2, rng=random.Random(1))
        assert set(sites) == {"edge0", "edge1", "edge2"}
        assert all(len(devices) == 2 for devices in sites.values())
        # Edge mesh ring exists: edge0-edge1 without going through cloud.
        topo.link_between("edge0", "cloud").set_up(False)
        topo.link_between("edge1", "cloud").set_up(False)
        assert topo.reachable("edge0", "edge1")

    def test_device_latency_edge_vs_cloud(self):
        """The Fig. 1 claim: edge-local paths are an order of magnitude
        faster than cloud round trips."""
        topo, sites = build_edge_cloud_topology(2, 2, rng=random.Random(1))
        device = sites["edge0"][0]
        edge_latency = topo.expected_latency(device, "edge0")
        cloud_latency = topo.expected_latency(device, "cloud")
        assert cloud_latency > 5 * edge_latency


class TestTransport:
    def test_delivery_to_registered_handler(self, sim, rngs):
        topo = build_mesh_topology(["a", "b"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        got = []
        network.register("b", "ping", lambda m: got.append(m.payload))
        network.send("a", "b", "ping", payload=123)
        sim.run()
        assert got == [123]
        assert network.stats.delivered == 1

    def test_latency_applied(self, sim, rngs):
        topo = Topology(rng=rngs.stream("net"))
        topo.add_link("a", "b", profile="wan")
        network = Network(sim, topo)
        arrival = []
        network.register("b", "ping", lambda m: arrival.append(sim.now))
        network.send("a", "b", "ping")
        sim.run()
        assert arrival[0] >= 0.04  # wan base 60ms - 20ms jitter

    def test_unreachable_drop_counted(self, sim, rngs):
        topo = Topology(rng=rngs.stream("net"))
        topo.add_node("a")
        topo.add_node("b")
        network = Network(sim, topo)
        network.send("a", "b", "ping")
        sim.run()
        assert network.stats.dropped_unreachable == 1
        assert network.stats.delivery_ratio == 0.0
        # Empty-stats convention (PR 3 SweepCell): no sends -> None, not 0.0.
        assert NetworkStats().delivery_ratio is None
        assert NetworkStats().mean_latency is None

    def test_down_destination_drops(self, sim, rngs):
        topo = build_mesh_topology(["a", "b"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        network.register("b", "ping", lambda m: pytest.fail("should not deliver"))
        network.set_node_up("b", False)
        network.send("a", "b", "ping")
        sim.run()
        assert network.stats.dropped_unreachable == 1

    def test_crash_while_in_flight_drops(self, sim, rngs):
        topo = Topology(rng=rngs.stream("net"))
        topo.add_link("a", "b", profile="wan")
        network = Network(sim, topo)
        network.register("b", "ping", lambda m: pytest.fail("should not deliver"))
        network.send("a", "b", "ping")
        sim.schedule(0.0001, lambda s: network.set_node_up("b", False))
        sim.run()
        assert network.stats.dropped_unreachable == 1

    def test_down_relay_black_holes(self, sim, rngs):
        topo = Topology(rng=rngs.stream("net"))
        topo.add_link("a", "relay", profile="lan")
        topo.add_link("relay", "b", profile="lan")
        network = Network(sim, topo)
        network.register("b", "ping", lambda m: pytest.fail("should not deliver"))
        network.set_node_up("relay", False)
        network.send("a", "b", "ping")
        sim.run()
        assert network.stats.dropped_unreachable == 1

    def test_default_handler_catches_unknown_kinds(self, sim, rngs):
        topo = build_mesh_topology(["a", "b"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        got = []
        network.register_default("b", lambda m: got.append(m.kind))
        network.send("a", "b", "anything")
        sim.run()
        assert got == ["anything"]

    def test_broadcast_excludes_self(self, sim, rngs):
        topo = build_mesh_topology(["a", "b", "c"], rng=rngs.stream("net"))
        network = Network(sim, topo)
        messages = network.broadcast("a", ["a", "b", "c"], "hi")
        assert len(messages) == 2


class TestPartitionManager:
    def test_isolate_and_heal(self, sim, rngs, trace):
        topo = build_mesh_topology(["a", "b", "c"], rng=rngs.stream("net"))
        manager = PartitionManager(sim, topo, trace=trace)
        name = manager.isolate_node("a")
        assert not topo.reachable("a", "b")
        assert topo.reachable("b", "c")
        manager.heal(name)
        assert topo.reachable("a", "b")
        assert trace.count(name="partition-start") == 1
        assert trace.count(name="partition-heal") == 1

    def test_cut_between_groups(self, sim, rngs):
        topo = build_mesh_topology(["a", "b", "c", "d"], rng=rngs.stream("net"))
        manager = PartitionManager(sim, topo)
        manager.cut_between({"a", "b"}, {"c", "d"})
        assert topo.reachable("a", "b")
        assert topo.reachable("c", "d")
        assert not topo.reachable("a", "c")

    def test_overlapping_groups_raise(self, sim, rngs):
        topo = build_mesh_topology(["a", "b"], rng=rngs.stream("net"))
        manager = PartitionManager(sim, topo)
        with pytest.raises(ValueError):
            manager.cut_between({"a"}, {"a", "b"})

    def test_duplicate_partition_name_raises(self, sim, rngs):
        topo = build_mesh_topology(["a", "b", "c"], rng=rngs.stream("net"))
        manager = PartitionManager(sim, topo)
        manager.isolate_node("a", name="p")
        with pytest.raises(ValueError):
            manager.isolate_node("b", name="p")

    def test_heal_unknown_raises(self, sim, rngs):
        topo = build_mesh_topology(["a", "b"], rng=rngs.stream("net"))
        manager = PartitionManager(sim, topo)
        with pytest.raises(KeyError):
            manager.heal("nope")

    def test_scheduled_outage_window(self, sim, rngs):
        topo = build_mesh_topology(["a", "b"], rng=rngs.stream("net"))
        manager = PartitionManager(sim, topo)
        manager.schedule_outage(5.0, 10.0, "a")
        sim.run(until=4.0)
        assert topo.reachable("a", "b")
        sim.run(until=6.0)
        assert not topo.reachable("a", "b")
        sim.run(until=16.0)
        assert topo.reachable("a", "b")

    def test_heal_all(self, sim, rngs):
        topo = build_mesh_topology(["a", "b", "c"], rng=rngs.stream("net"))
        manager = PartitionManager(sim, topo)
        manager.isolate_node("a")
        manager.isolate_node("b")
        manager.heal_all()
        assert manager.active_partitions == []
        assert topo.reachable("a", "b")

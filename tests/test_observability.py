"""Tests for the observability subsystem: spans, instrument, exporters,
and end-to-end causal propagation through the resilience stack."""

import json

import pytest

from repro.core.system import IoTSystem
from repro.devices.software import Service, ServiceState
from repro.faults.models import PartitionFault, ServiceFailureFault
from repro.observability import (
    Instrument,
    SpanRecorder,
    chrome_trace_events,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_snapshot,
    write_profile,
    write_spans_jsonl,
)
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


@pytest.fixture
def recorder() -> SpanRecorder:
    return SpanRecorder()


class TestSpanRecorder:
    def test_parentless_span_roots_a_trace(self, recorder):
        a = recorder.start("a", "test", 0.0)
        b = recorder.start("b", "test", 1.0)
        assert a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_explicit_parent_inherits_trace(self, recorder):
        parent = recorder.start("p", "test", 0.0)
        child = recorder.start("c", "test", 1.0, parent=parent)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_context_stack_sets_implicit_parent(self, recorder):
        outer = recorder.start("outer", "test", 0.0)
        with recorder.use(outer):
            inner = recorder.start("inner", "test", 0.5)
        after = recorder.start("after", "test", 1.0)
        assert inner.parent_id == outer.span_id
        assert after.parent_id is None

    def test_use_none_is_noop(self, recorder):
        with recorder.use(None):
            span = recorder.start("s", "test", 0.0)
        assert span.parent_id is None

    def test_finish_is_idempotent(self, recorder):
        span = recorder.start("s", "test", 0.0)
        recorder.finish(span, 2.0, status="done")
        recorder.finish(span, 9.0, status="later")
        assert span.end == 2.0
        assert span.status == "done"
        assert span.duration == 2.0

    def test_record_is_instantaneous(self, recorder):
        span = recorder.record("blip", "test", 3.0, note="x")
        assert span.finished
        assert span.start == span.end == 3.0
        assert span.attrs["note"] == "x"

    def test_is_descendant_walks_parent_chain(self, recorder):
        a = recorder.start("a", "test", 0.0)
        b = recorder.start("b", "test", 0.0, parent=a)
        c = recorder.start("c", "test", 0.0, parent=b)
        other = recorder.start("o", "test", 0.0)
        assert recorder.is_descendant(c, a)
        assert recorder.is_descendant(c, b)
        assert not recorder.is_descendant(a, c)
        assert not recorder.is_descendant(other, a)

    def test_fault_index(self, recorder):
        span = recorder.start("fault:x", "injection", 0.0)
        recorder.open_fault("d1", span)
        assert recorder.active_fault("d1") is span
        recorder.close_fault("d1")
        assert recorder.active_fault("d1") is None

    def test_finish_open_closes_everything(self, recorder):
        recorder.start("a", "test", 0.0)
        done = recorder.start("b", "test", 0.0)
        recorder.finish(done, 1.0)
        assert recorder.finish_open(5.0) == 1
        assert all(s.finished for s in recorder)

    def test_select_filters(self, recorder):
        a = recorder.start("a", "x", 0.0)
        recorder.start("b", "y", 0.0)
        assert [s.name for s in recorder.select(category="x")] == ["a"]
        assert recorder.select(trace_id=a.trace_id) == [a]
        assert recorder.get(a.span_id) is a
        assert recorder.get("nope") is None

    def test_ids_are_deterministic(self):
        first = SpanRecorder()
        second = SpanRecorder()
        for rec in (first, second):
            parent = rec.start("p", "t", 0.0)
            rec.start("c", "t", 0.0, parent=parent)
        assert [s.span_id for s in first] == [s.span_id for s in second]
        assert [s.trace_id for s in first] == [s.trace_id for s in second]


class TestInstrument:
    def test_records_per_label_stats(self):
        sim = Simulator()
        sim.instrument = Instrument()
        sim.schedule(1.0, lambda s: None, label="work:a")
        sim.schedule(2.0, lambda s: None, label="work:a")
        sim.schedule(3.0, lambda s: None, label="other:b")
        sim.run()
        inst = sim.instrument
        assert inst.events == 3
        assert inst.label_stats("work:a").count == 2
        assert inst.label_stats("other:b").count == 1
        assert inst.total_busy_s >= 0.0
        report = inst.report()
        assert report["events"] == 3
        assert set(report["subsystems"]) == {"work", "other"}

    def test_disabled_instrument_records_nothing(self):
        sim = Simulator()
        sim.instrument = Instrument(enabled=False)
        sim.schedule(1.0, lambda s: None, label="x")
        sim.run()
        assert sim.instrument.events == 0

    def test_queue_depth_observed(self):
        sim = Simulator()
        sim.instrument = Instrument()
        for t in range(5):
            sim.schedule(float(t + 1), lambda s: None, label="tick")
        sim.run()
        # First fired event sees the other four still queued.
        assert sim.instrument.max_queue_depth == 4

    def test_reset_clears_state(self):
        inst = Instrument()
        inst.record("a", 0.001, 3, 1.0)
        inst.reset()
        assert inst.events == 0
        assert inst.labels == {}
        assert inst.report()["events"] == 0

    def test_sim_time_span(self):
        inst = Instrument()
        inst.record("a", 0.0, 0, 2.0)
        inst.record("a", 0.0, 0, 7.5)
        assert inst.report()["sim_time_span"] == 5.5


class TestMessageSpans:
    def test_delivered_message_span(self, sim, mesh5):
        nodes, _, network = mesh5
        network.spans = SpanRecorder()
        network.register("n2", "ping", lambda m: None)
        network.send("n1", "n2", "ping")
        sim.run(until=2.0)
        (span,) = network.spans.select(category="message")
        assert span.status == "delivered"
        assert span.finished
        assert span.attrs["src"] == "n1" and span.attrs["dst"] == "n2"

    def test_dropped_message_span_status(self, sim, mesh5):
        nodes, _, network = mesh5
        network.spans = SpanRecorder()
        network.send("n1", "n2", "ping")   # no handler registered
        sim.run(until=2.0)
        (span,) = network.spans.select(category="message")
        assert span.status == "dropped:unreachable"

    def test_handler_work_parented_to_message(self, sim, mesh5):
        nodes, _, network = mesh5
        spans = network.spans = SpanRecorder()

        def reply(message):
            network.send("n2", "n1", "pong")

        network.register("n2", "ping", reply)
        network.register("n1", "pong", lambda m: None)
        network.send("n1", "n2", "ping")
        sim.run(until=5.0)
        ping = spans.select(name="msg:ping")[0]
        pong = spans.select(name="msg:pong")[0]
        assert pong.trace_id == ping.trace_id
        assert spans.is_descendant(pong, ping)

    def test_message_carries_span_context(self, sim, mesh5):
        nodes, _, network = mesh5
        network.spans = SpanRecorder()
        seen = []
        network.register("n2", "ping", lambda m: seen.append(m))
        message = network.send("n1", "n2", "ping")
        sim.run(until=2.0)
        assert message.span is not None
        assert seen[0].span is message.span

    def test_no_spans_no_overhead_path(self, sim, mesh5):
        nodes, _, network = mesh5
        got = []
        network.register("n2", "ping", lambda m: got.append(m))
        message = network.send("n1", "n2", "ping")
        sim.run(until=2.0)
        assert got and message.span is None


class TestFaultSpans:
    def _system(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 2, seed=3)
        system.enable_observability()
        return system

    def test_partition_recovery_descends_from_injection(self):
        system = self._system()
        system.injector.inject_at(5.0, PartitionFault(
            name="outage", duration=10.0, isolate_node="cloud"))
        system.run(until=30.0)
        spans = system.spans
        (injection,) = spans.select(category="injection")
        recoveries = spans.select(category="recovery")
        assert recoveries, "expected recovery spans from the heal"
        for recovery in recoveries:
            assert recovery.trace_id == injection.trace_id
            assert spans.is_descendant(recovery, injection)
        # The partition cut span nests under the injection too.
        (cut,) = spans.select(category="fault", name="partition:fault:outage")
        assert cut.status == "healed"
        assert spans.is_descendant(cut, injection)
        assert cut.duration == pytest.approx(10.0)

    def test_mape_repair_joins_fault_trace(self):
        from repro.adaptation import (
            DeviceLivenessAnalyzer,
            Executor,
            MapeLoop,
            RuleBasedPlanner,
            ServiceHealthAnalyzer,
        )

        system = self._system()
        device = system.sites["edge0"][0]
        system.fleet.get(device).host(Service("svc"))
        MapeLoop(
            system.sim, system.network, system.fleet, "edge0",
            list(system.sites["edge0"]),
            analyzers=[ServiceHealthAnalyzer(), DeviceLivenessAnalyzer()],
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet,
                              "edge0", system.rngs.stream("exec"),
                              trace=system.trace),
            period=1.0, trace=system.trace,
        ).start()
        system.injector.inject_at(5.0, ServiceFailureFault(
            name="svcfail", device_id=device, service_name="svc"))
        system.run(until=20.0)
        assert system.fleet.get(device).stack.service("svc").state == ServiceState.RUNNING
        spans = system.spans
        (injection,) = spans.select(category="injection")
        repairs = [s for s in spans.select(category="recovery")
                   if s.name == f"repair:{device}"]
        assert repairs, "expected a MAPE repair span"
        assert repairs[0].trace_id == injection.trace_id
        assert spans.is_descendant(repairs[0], injection)

    def test_mape_iterations_and_messages_recorded(self):
        from repro.experiments import run_mape_placement

        system, loops = run_mape_placement("edge", observe=True)
        spans = system.spans
        assert len(spans.select(category="adaptation")) == sum(
            loop.iterations for loop in loops)
        assert system.sim.instrument is not None
        assert system.sim.instrument.events > 0


class TestCoordinationSpans:
    def test_gossip_round_spans(self, sim, mesh5, rngs):
        from repro.coordination.gossip import GossipNode

        nodes, _, network = mesh5
        network.spans = SpanRecorder()
        node = GossipNode(sim, network, "n1", ["n1", "n2"], rngs.stream("g"),
                          period=1.0)
        GossipNode(sim, network, "n2", ["n1", "n2"], rngs.stream("g2"),
                   period=1.0)
        node.start()
        sim.run(until=3.5)
        rounds = network.spans.select(category="coordination")
        assert len(rounds) == node.rounds
        pushes = network.spans.select(name="msg:gossip.push")
        assert pushes
        assert network.spans.is_descendant(pushes[0], rounds[0])

    def test_raft_election_span_won(self, sim, mesh5, rngs):
        from repro.coordination.raft import RaftCluster

        nodes, _, network = mesh5
        network.spans = SpanRecorder()
        cluster = RaftCluster(sim, network, nodes, rngs.stream("raft"))
        cluster.start()
        sim.run(until=10.0)
        assert cluster.leader() is not None
        won = [s for s in network.spans.select(category="coordination")
               if s.name.startswith("election:") and s.status == "won"]
        assert won
        # Vote-request messages nest under the winning campaign.
        votes = network.spans.select(name="msg:raft.request_vote")
        assert any(network.spans.is_descendant(v, won[0]) for v in votes)

    def test_failure_detector_ping_spans(self, sim, mesh5):
        from repro.coordination.failure_detector import HeartbeatFailureDetector

        nodes, _, network = mesh5
        network.spans = SpanRecorder()
        detector = HeartbeatFailureDetector(sim, network, "n1", ["n2"],
                                            period=1.0, timeout=3.0)
        detector.start()
        sim.run(until=4.5)
        ticks = [s for s in network.spans.select(category="coordination")
                 if s.name == "fd:n1"]
        assert len(ticks) == 5
        assert network.spans.select(name="msg:fd.heartbeat")


class TestExporters:
    def _sample_data(self):
        recorder = SpanRecorder()
        parent = recorder.start("fault:x", "injection", 1.0, kind="test")
        recorder.record("recover:x", "recovery", 4.0, parent=parent)
        recorder.finish(parent, 4.0, status="reverted")
        trace = TraceLog()
        trace.emit(1.0, "fault", "partition-start", subject="p", links={"a-b"})
        trace.emit(4.0, "recovery", "partition-heal", subject="p")
        return recorder, trace

    def test_spans_jsonl_round_trips(self, tmp_path):
        recorder, _ = self._sample_data()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(recorder, path) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["name"] == "fault:x"
        assert lines[1]["parent_id"] == lines[0]["span_id"]
        assert lines[1]["trace_id"] == lines[0]["trace_id"]

    def test_events_jsonl_serializes_attrs(self, tmp_path):
        _, trace = self._sample_data()
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(trace, path) == 2
        first = json.loads(path.read_text().splitlines()[0])
        assert first["name"] == "partition-start"
        assert first["attrs"]["links"] == ["a-b"]   # set serialized sorted

    def test_chrome_trace_structure(self, tmp_path):
        recorder, trace = self._sample_data()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, spans=recorder, events=trace)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        slices = [e for e in events if e["ph"] == "X"]
        # Microsecond timestamps, minimum visible duration, span args kept.
        assert slices[0]["ts"] == pytest.approx(1.0e6)
        assert all(s["dur"] >= 1.0 for s in slices)
        assert slices[0]["args"]["trace_id"] == slices[1]["args"]["trace_id"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {i["name"] for i in instants} == {"partition-start",
                                                "partition-heal"}
        # Metadata names every thread.
        named = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(named) == len({e["tid"] for e in events if e["ph"] != "M"})

    def test_chrome_trace_events_standalone(self):
        recorder, _ = self._sample_data()
        records = chrome_trace_events(spans=recorder)
        assert any(r["ph"] == "X" for r in records)

    def test_metrics_snapshot_includes_counters(self, tmp_path):
        metrics = MetricsRecorder()
        metrics.record("lat", 1.0, 0.5)
        metrics.increment("drops", 3)
        path = tmp_path / "metrics.json"
        snapshot = write_metrics_snapshot(metrics, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(snapshot))
        assert on_disk["counters"]["drops"] == 3.0
        assert on_disk["series"]["lat"]["count"] == 1.0

    def test_profile_export(self, tmp_path):
        sim = Simulator()
        sim.instrument = Instrument()
        sim.schedule(1.0, lambda s: None, label="x")
        sim.run()
        path = tmp_path / "profile.json"
        report = write_profile(sim.instrument, path)
        assert json.loads(path.read_text())["events"] == report["events"] == 1

    def test_profile_export_detached(self, tmp_path):
        path = tmp_path / "profile.json"
        assert write_profile(None, path) == {"events": 0}


class TestEnableObservability:
    def test_idempotent_and_shared(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 1, seed=1)
        spans = system.enable_observability()
        assert system.enable_observability() is spans
        assert system.network.spans is spans
        assert system.injector.spans is spans
        assert system.partitions.spans is spans
        assert system.sim.instrument is not None

    def test_instrument_opt_out(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 1, seed=1)
        system.enable_observability(instrument=False)
        assert system.sim.instrument is None


class TestSpanIndexAndDuration:
    """PR 2 satellites: the persistent by-id index and explicit
    open-span duration semantics."""

    def test_get_returns_span_by_id(self):
        recorder = SpanRecorder()
        spans = [recorder.start(f"s{i}", "test", float(i)) for i in range(50)]
        for span in spans:
            assert recorder.get(span.span_id) is span
        assert recorder.get("nope") is None

    def test_open_span_duration_is_none(self):
        recorder = SpanRecorder()
        span = recorder.start("work", "test", 1.0)
        assert span.duration is None
        assert span.duration_or(4.0) == 3.0
        recorder.finish(span, 5.0)
        assert span.duration == 4.0
        assert span.duration_or(99.0) == 4.0

    def test_is_descendant_uses_index_after_many_spans(self):
        recorder = SpanRecorder()
        root = recorder.start("root", "test", 0.0)
        node = root
        chain = [root]
        for i in range(20):
            node = recorder.start(f"n{i}", "test", float(i), parent=node)
            chain.append(node)
        # Unrelated traffic must not confuse the parent-chain walk.
        for i in range(100):
            recorder.start(f"noise{i}", "test", float(i))
        assert recorder.is_descendant(chain[-1], root)
        assert recorder.is_descendant(chain[-1], chain[10])
        assert not recorder.is_descendant(root, chain[-1])

    def test_children_index_groups_by_parent(self):
        recorder = SpanRecorder()
        root = recorder.start("root", "test", 0.0)
        kids = [recorder.start(f"k{i}", "test", 1.0, parent=root)
                for i in range(3)]
        grandkid = recorder.start("g", "test", 2.0, parent=kids[0])
        index = recorder.children_index()
        assert index[root.span_id] == kids
        assert index[kids[0].span_id] == [grandkid]
        assert root.span_id not in index.get(grandkid.span_id, [])

"""Acceptance tests for the flight recorder and incident bundles.

The headline guarantees:

* every trigger class -- SLO breach, scenario-gate failure, harness
  crash, replay divergence, unhandled exception -- produces a captured
  incident with a ranked causal chain;
* a bundle's checkpoint deterministically reproduces the triggering
  window: ``replay_incident`` fast-forwards the rebuilt scenario and
  verifies the whole-system digest bit-for-bit (and refuses a tampered
  bundle);
* an armed flight recorder is digest- and journal-neutral: a journaled
  run records identical bytes with and without the black box attached.
"""

import json
import os

import pytest

from repro.cli import main
from repro.observability.diagnosis import Diagnosis
from repro.observability.flight import (
    FlightError,
    FlightRecorder,
    capture_divergence_incident,
    capture_gate_incident,
    load_manifest,
    replay_incident,
)
from repro.persistence import (
    CheckpointError,
    JournalWriter,
    ScenarioSpec,
    prepare,
    replay_journal,
    run_scenario,
)
from repro.persistence.runner import RunRecorder, _drive_to_horizon


STRICT_CITY = ScenarioSpec(
    name="smart-city-partition",
    params={"quick": True, "monitored": True, "strict": True})


def _run_flight_armed(spec, journal_path=None):
    """Drive ``spec`` to its horizon with a flight recorder armed."""
    prepared = prepare(spec)
    system = prepared.system
    recorder = None
    if journal_path is not None:
        recorder = RunRecorder(system,
                               JournalWriter(journal_path, spec.to_dict()))
    flight = FlightRecorder(system, spec=spec,
                            loops=prepared.aux.get("loops"))
    flight.arm()
    _drive_to_horizon(system, prepared.horizon)
    monitor = prepared.aux.get("monitor")
    if monitor is not None:
        monitor.evaluate_now()
    flight.finalize()
    flight.disarm()
    if recorder is not None:
        recorder.finish()
    return prepared, flight


class TestSloBreachIncident:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("incident")
        journal_path = str(directory / "journal.jsonl")
        prepared, flight = _run_flight_armed(STRICT_CITY, journal_path)
        assert flight.triggered
        return flight.capture(str(directory / "bundle"),
                              journal_path=journal_path)

    def test_strict_run_triggers_slo_breach(self, bundle):
        manifest = load_manifest(bundle)
        assert manifest["trigger"]["reason"] == "slo-breach"
        assert manifest["trigger"]["detail"]["slo"] == "cloud-reachability"
        assert manifest["barrier"]["exact"] is True
        assert manifest["barrier"]["fired"] > 0

    def test_bundle_is_self_contained(self, bundle):
        for name in ("manifest.json", "checkpoint.json", "journal.jsonl",
                     "events.jsonl", "spans.jsonl", "metrics.json",
                     "queue_depth.json", "knowledge.json", "trust.json"):
            assert os.path.exists(os.path.join(bundle, name)), name
        manifest = load_manifest(bundle)
        assert manifest["evidence"]["checkpoint"] is True
        assert manifest["evidence"]["journal"] is True
        assert manifest["evidence"]["events"] > 0
        assert manifest["evidence"]["queue_samples"] > 0

    def test_diagnosis_chains_fault_to_breach(self, bundle):
        manifest = load_manifest(bundle)
        diagnosis = Diagnosis.from_dict(manifest["diagnosis"])
        kinds = [link.kind for link in diagnosis.chain]
        assert "fault" in kinds
        assert "breach" in kinds
        subjects = [link.subject for link in diagnosis.chain]
        assert any("cloud" in s for s in subjects)
        # Ranked within each causal stage: among links of one kind the
        # highest score leads (the chain itself stays in causal order,
        # fault -> degraded -> breach).
        for kind in set(kinds):
            scores = [l.score for l in diagnosis.chain if l.kind == kind]
            assert scores == sorted(scores, reverse=True)
        rows = diagnosis.table_rows()
        assert [row[0] for row in rows] == list(range(1, len(rows) + 1))

    def test_replay_reproduces_triggering_window_bitwise(self, bundle):
        result = replay_incident(bundle)
        manifest = load_manifest(bundle)
        assert result["barrier_fired"] == manifest["barrier"]["fired"]
        assert result["digest"] == manifest["barrier"]["digest"]
        assert result["system"].sim.fired_count == result["barrier_fired"]

    def test_tampered_checkpoint_is_refused(self, bundle, tmp_path):
        import shutil

        tampered = str(tmp_path / "tampered")
        shutil.copytree(bundle, tampered)
        path = os.path.join(tampered, "checkpoint.json")
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
        digest = document["payload"]["digest"]
        document["payload"]["digest"] = "0" * len(digest)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
        with pytest.raises(CheckpointError):
            replay_incident(tampered)


class TestOtherTriggerClasses:
    def test_gate_failure_capture_is_replayable(self, tmp_path):
        spec = ScenarioSpec(name="mape-outage")
        bundle = capture_gate_incident(
            spec, str(tmp_path / "gate"),
            detail={"gate": "unit-test", "metric": 0.0})
        manifest = load_manifest(bundle)
        assert manifest["trigger"]["reason"] == "gate-failure"
        assert manifest["trigger"]["detail"]["gate"] == "unit-test"
        result = replay_incident(bundle)
        assert result["digest"] == manifest["barrier"]["digest"]

    def test_harness_crash_fault_triggers(self):
        spec = ScenarioSpec(name="harness-crash",
                            params={"crash_at": 10.0, "horizon": 20.0})
        prepared = prepare(spec)
        flight = FlightRecorder(prepared.system, spec=spec).arm()
        _drive_to_horizon(prepared.system, prepared.horizon)
        flight.finalize()
        flight.disarm()
        assert flight.triggered
        assert flight.triggers[0].reason == "harness-crash"
        assert flight.diagnosis is not None

    def test_replay_divergence_capture(self, tmp_path):
        journal_path = str(tmp_path / "run.jsonl")
        run_scenario(ScenarioSpec(name="control-outage"),
                     journal_path=journal_path)
        # Corrupt one mid-journal digest so the replay diverges there.
        with open(journal_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        target = next(i for i, line in enumerate(lines)
                      if i > len(lines) // 2 and '"digest"' in line)
        record = json.loads(lines[target])
        record["digest"] = "f" * len(record["digest"])
        lines[target] = json.dumps(record) + "\n"
        with open(journal_path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        report = replay_journal(journal_path)
        assert report.divergence is not None
        bundle = capture_divergence_incident(
            journal_path, report, str(tmp_path / "divergence"))
        manifest = load_manifest(bundle)
        assert manifest["trigger"]["reason"] == "replay-divergence"
        assert manifest["trigger"]["detail"]["field"] == \
            report.divergence.field
        # The capture re-runs the *correct* side, so the bundle itself
        # replays clean at the divergence barrier.
        result = replay_incident(bundle)
        assert result["barrier_fired"] == manifest["barrier"]["fired"]

    def test_guard_converts_exception_to_trigger(self):
        prepared = prepare(ScenarioSpec(name="mape-outage"))
        flight = FlightRecorder(prepared.system).arm()
        with pytest.raises(ValueError):
            with flight.guard():
                raise ValueError("boom")
        flight.disarm()
        assert flight.triggers[0].reason == "exception"
        assert flight.triggers[0].detail["type"] == "ValueError"

    def test_capture_without_trigger_is_refused(self, tmp_path):
        prepared = prepare(ScenarioSpec(name="mape-outage"))
        flight = FlightRecorder(prepared.system).arm()
        flight.disarm()
        with pytest.raises(FlightError):
            flight.capture(str(tmp_path / "nothing"))


class TestFlightNeutrality:
    def test_armed_recorder_is_journal_neutral(self, tmp_path):
        spec = ScenarioSpec(name="mape-outage")
        reference = str(tmp_path / "reference.jsonl")
        run_scenario(spec, journal_path=reference)
        armed = str(tmp_path / "armed.jsonl")
        _run_flight_armed(spec, armed)
        with open(reference, "rb") as fh:
            ref_bytes = fh.read()
        with open(armed, "rb") as fh:
            armed_bytes = fh.read()
        assert ref_bytes == armed_bytes

    def test_disarm_restores_observer_chain(self):
        prepared = prepare(ScenarioSpec(name="mape-outage"))
        sim = prepared.system.sim
        before = sim.on_event
        flight = FlightRecorder(prepared.system).arm()
        assert sim.on_event is not before
        flight.disarm()
        assert sim.on_event is before


class TestIncidentCli:
    @pytest.fixture(scope="class")
    def strict_out(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("monitor-out")
        code = main(["monitor", "smart-city-partition", "--quick",
                     "--strict", "--out", str(out)])
        return code, str(out)

    def test_strict_monitor_emits_bundle(self, strict_out, capsys):
        code, out = strict_out
        assert code == 1
        bundle = os.path.join(out, "incidents", "smart-city-partition")
        assert os.path.exists(os.path.join(bundle, "manifest.json"))

    def test_incident_show_prints_causal_chain(self, strict_out, capsys):
        _, out = strict_out
        bundle = os.path.join(out, "incidents", "smart-city-partition")
        assert main(["incident", "show", bundle]) == 0
        printed = capsys.readouterr().out
        assert "causal chain" in printed
        assert "slo-breach" in printed

    def test_incident_replay_matches(self, strict_out, capsys):
        _, out = strict_out
        bundle = os.path.join(out, "incidents", "smart-city-partition")
        assert main(["incident", "replay", bundle]) == 0
        assert "INCIDENT REPLAY: MATCH" in capsys.readouterr().out

    def test_show_rejects_non_bundle(self, tmp_path):
        assert main(["incident", "show", str(tmp_path)]) == 2

    def test_passing_monitor_leaves_no_bundle(self, tmp_path, capsys):
        assert main(["monitor", "smart-city-partition", "--quick",
                     "--out", str(tmp_path)]) == 0
        assert not os.path.exists(
            os.path.join(str(tmp_path), "incidents", "smart-city-partition"))

"""Tests for the quantitative resilience layer: streaming histograms and
KPI derivation (disruption arcs, vector breakdown, availability,
convergence) from recorded telemetry."""

import math

import pytest

from repro.core.vectors import DisruptionVector
from repro.observability.histogram import StreamingHistogram, log_bounds
from repro.observability.kpis import (
    aggregate_vectors,
    availability_kpis,
    classify_fault_vector,
    compute_kpi_report,
    convergence_kpis,
    disruption_arcs,
)
from repro.observability.spans import SpanRecorder
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


# --------------------------------------------------------------------------- #
# streaming histogram
# --------------------------------------------------------------------------- #
class TestStreamingHistogram:
    def test_log_bounds_strictly_increasing(self):
        bounds = log_bounds(1e-3, 1e2, per_decade=3)
        assert all(b < a for b, a in zip(bounds, bounds[1:]))
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] >= 1e2

    def test_log_bounds_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(2.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(per_decade=0)

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            StreamingHistogram(bounds=[1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            StreamingHistogram(bounds=[])

    def test_empty_histogram_statistics_are_none(self):
        hist = StreamingHistogram()
        assert hist.count == 0
        assert hist.min is None and hist.max is None and hist.mean is None
        assert hist.quantile(0.5) is None

    def test_exact_min_max_mean_survive_bucketing(self):
        hist = StreamingHistogram(bounds=[1.0, 10.0, 100.0])
        for value in (0.5, 3.0, 42.0):
            hist.observe(value)
        assert hist.min == 0.5
        assert hist.max == 42.0
        assert hist.mean == pytest.approx((0.5 + 3.0 + 42.0) / 3)

    def test_overflow_values_are_counted(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0])
        hist.observe(5.0)
        assert hist.overflow == 1
        assert hist.count == 1
        assert hist.quantile(1.0) == 5.0  # overflow quantile = observed max

    def test_quantile_is_clamped_to_observed_range(self):
        hist = StreamingHistogram(bounds=[10.0, 100.0])
        hist.observe(40.0)
        hist.observe(60.0)
        for q in (0.0, 0.5, 1.0):
            estimate = hist.quantile(q)
            assert 40.0 <= estimate <= 60.0

    def test_quantile_interpolates_within_bucket(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0, 3.0, 4.0])
        # 100 values spread evenly over (2, 3]: the median should land
        # near the middle of that bucket, not at its edge.
        for i in range(100):
            hist.observe(2.0 + (i + 1) / 100.0)
        assert hist.quantile(0.5) == pytest.approx(2.5, abs=0.25)

    def test_quantile_validates_range(self):
        hist = StreamingHistogram()
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_weighted_observation(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0])
        hist.observe(0.5, weight=5)
        assert hist.count == 5
        assert hist.total == pytest.approx(2.5)
        with pytest.raises(ValueError):
            hist.observe(1.0, weight=0)

    def test_merge_adds_counters(self):
        a = StreamingHistogram(bounds=[1.0, 10.0])
        b = StreamingHistogram(bounds=[1.0, 10.0])
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)  # overflow
        a.merge(b)
        assert a.count == 3
        assert a.overflow == 1
        assert a.min == 0.5 and a.max == 50.0

    def test_merge_requires_matching_bounds(self):
        a = StreamingHistogram(bounds=[1.0, 10.0])
        b = StreamingHistogram(bounds=[1.0, 20.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_equals_single_stream(self):
        """Merging shards must be indistinguishable from one stream."""
        whole = StreamingHistogram()
        shard1, shard2 = StreamingHistogram(), StreamingHistogram()
        values = [0.001 * (i + 1) ** 2 for i in range(200)]
        for i, value in enumerate(values):
            whole.observe(value)
            (shard1 if i % 2 else shard2).observe(value)
        shard1.merge(shard2)
        assert shard1.counts == whole.counts
        assert shard1.overflow == whole.overflow
        assert shard1.quantile(0.9) == whole.quantile(0.9)

    def test_dict_round_trip(self):
        hist = StreamingHistogram(bounds=[1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 500.0):
            hist.observe(value)
        clone = StreamingHistogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.overflow == hist.overflow
        assert clone.min == hist.min and clone.max == hist.max
        assert clone.quantile(0.5) == hist.quantile(0.5)

    def test_cumulative_counts_monotone(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0, 3.0])
        for value in (0.5, 1.5, 2.5, 2.6):
            hist.observe(value)
        cumulative = hist.cumulative_counts()
        assert cumulative == [1, 2, 4]


# --------------------------------------------------------------------------- #
# disruption arcs and vector KPIs
# --------------------------------------------------------------------------- #
def _make_arc_spans(recorder: SpanRecorder) -> None:
    """One partition arc: injected at 10, detected at 13, repaired by 15."""
    root = recorder.start("fault:outage", "injection", 10.0,
                          fault_type="PartitionFault")
    with recorder.use(root):
        msg = recorder.start("deliver:probe", "message", 12.5)
        recorder.finish(msg, 12.6)
        repair = recorder.start("repair:restart", "recovery", 13.0)
        recorder.finish(repair, 15.0)
    recorder.finish(root, 30.0, status="reverted")


class TestDisruptionArcs:
    def test_classify_fault_vector(self):
        assert classify_fault_vector("PartitionFault") is DisruptionVector.PERVASIVENESS
        assert classify_fault_vector("ServiceFailureFault") is DisruptionVector.SERVICES
        assert classify_fault_vector("CrashFault") is DisruptionVector.OPERATIONS
        assert classify_fault_vector("DomainTransferFault") is DisruptionVector.DATA
        assert classify_fault_vector("SomethingNew") is DisruptionVector.OPERATIONS

    def test_arc_mttd_mttr_from_span_tree(self):
        recorder = SpanRecorder()
        _make_arc_spans(recorder)
        arcs = disruption_arcs(recorder)
        assert len(arcs) == 1
        arc = arcs[0]
        assert arc.vector is DisruptionVector.PERVASIVENESS
        assert arc.mttd == pytest.approx(3.0)   # 13 - 10
        assert arc.mttr == pytest.approx(5.0)   # 15 - 10
        assert arc.messages == 1
        assert arc.repairs == 1
        assert arc.resolved

    def test_unrepaired_truncated_arc_is_unresolved(self):
        recorder = SpanRecorder()
        root = recorder.start("fault:forever", "injection", 5.0,
                              fault_type="CrashFault")
        recorder.finish(root, 60.0, status="truncated")
        (arc,) = disruption_arcs(recorder)
        assert not arc.resolved
        assert arc.mttd is None
        assert arc.mttr is None

    def test_reverted_arc_without_repairs_uses_root_end(self):
        recorder = SpanRecorder()
        root = recorder.start("fault:blip", "injection", 5.0,
                              fault_type="LinkFailureFault")
        recorder.finish(root, 8.0, status="reverted")
        (arc,) = disruption_arcs(recorder)
        assert arc.resolved
        assert arc.mttr == pytest.approx(3.0)

    def test_aggregate_groups_by_vector(self):
        recorder = SpanRecorder()
        _make_arc_spans(recorder)
        svc = recorder.start("fault:svc", "injection", 20.0,
                             fault_type="ServiceFailureFault")
        recorder.finish(svc, 22.0, status="reverted")
        vectors = aggregate_vectors(disruption_arcs(recorder))
        assert set(vectors) == {DisruptionVector.PERVASIVENESS,
                                DisruptionVector.SERVICES}
        pervasive = vectors[DisruptionVector.PERVASIVENESS]
        assert pervasive.faults == 1
        assert pervasive.mttr_mean == pytest.approx(5.0)
        assert pervasive.disrupted_time == pytest.approx(5.0)


class TestAvailabilityKpis:
    def test_availability_from_level_series(self):
        metrics = MetricsRecorder()
        metrics.set_level("up:d1", 0.0, 1.0)
        metrics.set_level("up:d1", 50.0, 0.0)   # down for last half
        metrics.set_level("up:d2", 0.0, 1.0)
        out = availability_kpis(metrics, horizon=100.0)
        assert out["per_device"]["d1"] == pytest.approx(0.5)
        assert out["per_device"]["d2"] == pytest.approx(1.0)
        assert out["availability"] == pytest.approx(0.75)
        assert out["worst_availability"] == pytest.approx(0.5)
        assert out["degraded_time"] == pytest.approx(50.0)

    def test_no_up_series_yields_none(self):
        out = availability_kpis(MetricsRecorder(), horizon=10.0)
        assert out["availability"] is None
        assert out["degraded_time"] == 0.0


class TestConvergenceKpis:
    def test_coordination_spans_bucket_by_protocol(self):
        recorder = SpanRecorder()
        for start, duration in ((0.0, 0.2), (1.0, 0.4)):
            span = recorder.start("gossip:n1", "coordination", start)
            recorder.finish(span, start + duration)
        span = recorder.start("election:n2", "coordination", 5.0)
        recorder.finish(span, 5.5)
        open_span = recorder.start("gossip:n3", "coordination", 9.0)  # noqa: F841
        out = convergence_kpis(recorder)
        assert out["gossip"]["rounds"] == 2.0
        assert out["gossip"]["mean"] == pytest.approx(0.3)
        assert out["gossip"]["max"] == pytest.approx(0.4)
        assert out["election"]["rounds"] == 1.0


class TestKpiReport:
    def test_report_without_spans_still_has_availability(self):
        metrics = MetricsRecorder()
        metrics.set_level("up:d1", 0.0, 1.0)
        report = compute_kpi_report(None, None, metrics, horizon=10.0)
        assert report.availability == pytest.approx(1.0)
        assert report.arcs == []
        assert report.vectors == {}
        assert report.repair_latency is None

    def test_report_counts_violations_and_alerts(self):
        trace = TraceLog()
        trace.emit(1.0, "violation", "goal-miss", subject="g1")
        trace.emit(2.0, "alert", "slo-breach", subject="edge0")
        trace.emit(3.0, "alert", "slo-recovered", subject="edge0")
        report = compute_kpi_report(None, trace, MetricsRecorder(), horizon=5.0)
        assert report.violations == 1
        assert report.alerts == 1

    def test_full_report_builds_repair_histogram(self):
        recorder = SpanRecorder()
        _make_arc_spans(recorder)
        report = compute_kpi_report(recorder, TraceLog(), MetricsRecorder(),
                                    horizon=30.0)
        assert report.repair_latency.count == 1
        assert report.repair_latency.max == pytest.approx(5.0)
        rows = report.vector_rows()
        assert len(rows) == len(DisruptionVector)
        labels = [row[0] for row in rows]
        assert "pervasiveness" in labels and "verification" in labels

    def test_report_to_dict_is_json_shaped(self):
        recorder = SpanRecorder()
        _make_arc_spans(recorder)
        report = compute_kpi_report(recorder, TraceLog(), MetricsRecorder(),
                                    horizon=30.0)
        data = report.to_dict()
        assert data["vectors"]["pervasiveness"]["faults"] == 1
        assert data["arcs"][0]["mttr"] == pytest.approx(5.0)
        assert data["repair_latency"]["count"] == 1

"""Tests for the telemetry budget: span sampling, the overhead meter,
telemetry health export, and the bench-trajectory drift rows."""

import pytest

from repro.core.system import IoTSystem
from repro.observability.export import (
    bench_trajectory_rows,
    prometheus_text,
)
from repro.observability.overhead import (
    ALWAYS_SAMPLE_CATEGORIES,
    OverheadMeter,
    SpanSampler,
    attach_meter,
    telemetry_health,
    telemetry_prom_lines,
)
from repro.observability.spans import SpanRecorder
from repro.persistence import ScenarioSpec, run_scenario
from repro.persistence.snapshot import system_digest


class TestSpanSampler:
    def test_same_seed_and_rate_give_identical_decisions(self):
        a = SpanSampler(0.25, seed=42)
        b = SpanSampler(0.25, seed=42)
        assert [a.keep(i) for i in range(2000)] == \
            [b.keep(i) for i in range(2000)]

    def test_different_seeds_give_different_streams(self):
        a = SpanSampler(0.25, seed=1)
        b = SpanSampler(0.25, seed=2)
        assert [a.keep(i) for i in range(2000)] != \
            [b.keep(i) for i in range(2000)]

    def test_kept_fraction_approximates_rate(self):
        sampler = SpanSampler(0.1, seed=7)
        for i in range(5000):
            sampler.keep(i)
        assert sampler.decisions == 5000
        assert sampler.kept == pytest.approx(500, abs=150)
        assert sampler.dropped == sampler.decisions - sampler.kept

    def test_edge_rates(self):
        zero = SpanSampler(0.0, seed=3)
        assert not any(zero.keep(i) for i in range(100))
        one = SpanSampler(1.0, seed=3)
        assert all(one.keep(i) for i in range(100))
        with pytest.raises(ValueError):
            SpanSampler(1.5)

    def test_to_dict_carries_counters(self):
        sampler = SpanSampler(0.5, seed=9)
        sampler.keep(1)
        doc = sampler.to_dict()
        assert doc["rate"] == 0.5 and doc["seed"] == 9
        assert doc["decisions"] == 1


class TestSampledRecorder:
    def test_dropped_roots_are_not_stored(self):
        spans = SpanRecorder(sampler=SpanSampler(0.0, seed=1))
        span = spans.start("op", "bench", 1.0)
        assert not span.sampled
        assert len(spans) == 0
        assert spans.sampled_out == 1

    def test_descendants_inherit_the_drop(self):
        spans = SpanRecorder(sampler=SpanSampler(0.0, seed=1))
        root = spans.start("op", "bench", 1.0)
        with spans.use(root):
            child = spans.start("child", "bench", 1.5)
        assert not child.sampled
        assert len(spans) == 0
        # Only the root consulted the sampler; the child rode the
        # sentinel context.
        assert spans.sampler.decisions == 1
        assert spans.sampled_out == 2

    def test_always_sample_categories_survive_rate_zero(self):
        spans = SpanRecorder(sampler=SpanSampler(0.0, seed=1))
        for category in sorted(ALWAYS_SAMPLE_CATEGORIES):
            span = spans.start("arc", category, 2.0)
            assert span.sampled, category
        assert len(spans) == len(ALWAYS_SAMPLE_CATEGORIES)

    def test_finish_on_dropped_span_is_inert(self):
        spans = SpanRecorder(sampler=SpanSampler(0.0, seed=1))
        span = spans.start("op", "bench", 1.0)
        finished = spans.finish(span, 2.0, status="error")
        assert finished is span
        assert finished.status == "sampled-out"
        assert len(spans.open_spans) == 0

    def test_kept_traces_keep_unsampled_ids(self):
        # Root trace ordinals are consumed for dropped roots too, so a
        # kept trace has the exact id it would carry in an unsampled run.
        full = SpanRecorder()
        sampled = SpanRecorder(sampler=SpanSampler(0.35, seed=11))
        for i in range(50):
            full.finish(full.start("op", "bench", float(i)), float(i))
            sampled.finish(sampled.start("op", "bench", float(i)), float(i))
        full_ids = [s.trace_id for s in full.spans]
        sampled_ids = [s.trace_id for s in sampled.spans]
        assert 0 < len(sampled_ids) < len(full_ids)
        assert set(sampled_ids) <= set(full_ids)

    def test_sampling_is_digest_neutral(self):
        def build(rate):
            system = IoTSystem.with_edge_cloud_landscape(2, 2, seed=5)
            system.enable_observability(sample_rate=rate)
            edges = system.edge_nodes
            for i in range(20):
                system.sim.schedule(
                    float(i),
                    lambda s, i=i: system.network.send(
                        edges[0], edges[1] if len(edges) > 1 else "cloud",
                        "ping", {"i": i}))
            system.run(until=25.0)
            return system

        with_sampling = build(0.2)
        without = build(None)
        assert len(with_sampling.spans.spans) < len(without.spans.spans)
        assert system_digest(with_sampling) == system_digest(without)


class TestOverheadMeter:
    def test_meter_accounts_each_component(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 1, seed=3)
        system.enable_observability(meter=True)
        meter = system.meter
        assert meter is not None
        system.metrics.record("m", 1.0, 2.0)
        system.trace.emit(1.0, "test", "tick", subject="x")
        span = system.spans.start("op", "test", 1.0)
        system.spans.finish(span, 2.0)
        assert meter.metrics_count == 1
        assert meter.trace_count == 1
        assert meter.spans_count == 2
        assert meter.records == 4
        assert meter.recording_wall_s >= 0.0
        snap = meter.snapshot(run_wall_s=1.0)
        assert snap["records"] == 4
        assert 0.0 <= snap["recording_fraction"] < 1.0

    def test_attach_meter_is_idempotent_per_component(self):
        meter = OverheadMeter()
        system = IoTSystem.with_edge_cloud_landscape(1, 1, seed=3)
        system.enable_observability()
        attach_meter(system, meter)
        assert system.metrics.meter is meter
        assert system.trace.meter is meter
        assert system.spans.meter is meter

    def test_counter_adder_matches_increment(self):
        system = IoTSystem(seed=0)
        add = system.metrics.counter_adder("fast")
        add(1.0)
        add(2.5)
        system.metrics.increment("fast", 0.5)
        assert system.metrics.counter("fast") == 4.0


class TestTelemetryHealth:
    @pytest.fixture()
    def system(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 2, seed=4)
        system.enable_observability(sample_rate=0.5, meter=True)
        system.metrics.record("m", 1.0, 2.0)
        system.spans.finish(system.spans.start("op", "test", 1.0), 2.0)
        return system

    def test_health_sections(self, system):
        health = telemetry_health(system)
        assert set(health) == {"trace", "spans", "series", "overhead"}
        assert health["trace"]["dropped"] == system.trace.dropped
        assert health["spans"]["sampling"]["rate"] == 0.5
        assert health["spans"]["approx_bytes"] >= 0
        assert health["series"]["points"] >= 1
        assert health["overhead"]["records"] >= 1

    def test_prom_lines_cover_budget_metrics(self, system):
        lines = telemetry_prom_lines(telemetry_health(system))
        text = "\n".join(lines)
        assert "repro_trace_dropped_events_total" in text
        assert "repro_spans_retained" in text
        assert "repro_spans_sampling_rate 0.5" in text
        assert "repro_observability_overhead_records_total" in text
        assert "repro_observability_overhead_recording_fraction" in text

    def test_prometheus_text_merges_telemetry(self, system):
        text = prometheus_text(system.metrics,
                               telemetry=telemetry_health(system))
        assert "repro_observability_overhead_records_total" in text


class TestSampledRunIdentity:
    def test_journal_bytes_identical_with_sampling(self, tmp_path):
        # The sampled-run guarantee end to end: a journaled scenario run
        # records byte-identical journals whether or not its observability
        # plane samples spans (the decision stream never feeds the digest).
        spec = ScenarioSpec(name="mape-outage", params={"observe": True})
        plain = str(tmp_path / "plain.jsonl")
        run_scenario(spec, journal_path=plain)

        sampled = str(tmp_path / "sampled.jsonl")
        from repro.persistence import prepare
        from repro.persistence.runner import RunRecorder, _drive_to_horizon
        from repro.persistence import JournalWriter

        prepared = prepare(spec)
        system = prepared.system
        assert system.spans is not None
        system.spans.sampler = SpanSampler(0.1, seed=system.rngs.seed)
        recorder = RunRecorder(system, JournalWriter(sampled, spec.to_dict()))
        _drive_to_horizon(system, prepared.horizon)
        recorder.finish()
        assert system.spans.sampled_out > 0

        with open(plain, "rb") as fh:
            plain_bytes = fh.read()
        with open(sampled, "rb") as fh:
            sampled_bytes = fh.read()
        assert plain_bytes == sampled_bytes


class TestBenchTrajectoryRows:
    def test_drift_rows_compare_oldest_to_newest(self):
        old = {"label": "a", "benches": {"kernel": {"wall_s": 0.2,
                                                    "events": 100.0}}}
        new = {"label": "b", "benches": {"kernel": {"wall_s": 0.25,
                                                    "events": 100.0},
                                         "obs": {"spans": 8.0}}}
        rows = bench_trajectory_rows([old, new])
        by_metric = {row[0]: row for row in rows}
        wall = by_metric["kernel.wall_s"]
        assert wall[1] == 0.2 and wall[2] == 0.25
        assert wall[3] == pytest.approx(0.05)
        assert wall[4] == "+25.0%"
        events = by_metric["kernel.events"]
        assert events[3] == 0.0
        new_metric = by_metric["obs.spans"]
        assert new_metric[1] == "-" and new_metric[4] == "new"

    def test_empty_and_single_snapshot(self):
        assert bench_trajectory_rows([]) == []
        only = {"benches": {"kernel": {"wall_s": 0.2}}}
        rows = bench_trajectory_rows([only])
        assert rows[0][3] == 0.0

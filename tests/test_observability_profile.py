"""Tests for the profiling plane: plane attribution, cost quantiles,
snapshot windows, flamegraph export, request critical paths, and the
differential profiler that names the subsystem behind a regression."""

import json

import pytest

from repro.observability.instrument import Instrument, LabelStats
from repro.observability.profile import (
    BENCH_PLANES,
    PLANES,
    SEGMENTS,
    attribute_regressions,
    capture_profile,
    collapsed_kernel_stacks,
    collapsed_span_stacks,
    diff_bench_profiles,
    diff_profiles,
    load_profile,
    plane_of_category,
    plane_of_label,
    profile_prom_lines,
    render_profile_diff,
    request_critical_paths,
    save_profile,
    write_flamegraph,
)
from repro.observability.spans import SpanRecorder


# --------------------------------------------------------------------------- #
# plane classification
# --------------------------------------------------------------------------- #
class TestPlaneClassification:
    def test_kernel_label_prefixes_map_to_planes(self):
        assert plane_of_label("deliver:raft.append_entries") == "transport"
        assert plane_of_label("gossip:n3") == "coordination"
        assert plane_of_label("swim-timeout:n1") == "coordination"
        assert plane_of_label("mape:edge0") == "mape"
        assert plane_of_label("inject:cloud-outage") == "faults"
        assert plane_of_label("meter:tick") == "telemetry"
        assert plane_of_label("timeout:w1") == "kernel"

    def test_dotted_serving_and_security_labels(self):
        # Serving-plane labels are dotted (traffic.serve:edge0); the bare
        # ``traffic:`` prefix is the smart-city road sensor -- workload.
        assert plane_of_label("traffic.serve:edge0") == "traffic"
        assert plane_of_label("traffic.timeout:cohort") == "traffic"
        assert plane_of_label("security.trust:n2") == "security"
        assert plane_of_label("traffic:road-sensor-3") == "workload"

    def test_unknown_labels_land_in_workload(self):
        assert plane_of_label("totally-novel:thing") == "workload"
        # Unlabeled events are kernel internals, not workload.
        assert plane_of_label("") == "kernel"

    def test_span_categories_map_to_planes(self):
        assert plane_of_category("message") == "transport"
        assert plane_of_category("adaptation") == "mape"
        assert plane_of_category("coordination") == "coordination"
        assert plane_of_category("request") == "traffic"
        assert plane_of_category("persistence") == "persistence"
        assert plane_of_category("fault") == "faults"

    def test_every_mapped_plane_is_declared(self):
        extra = {"faults", "kernel", "workload"}
        assert set(PLANES) | extra >= set(BENCH_PLANES.values())


# --------------------------------------------------------------------------- #
# cost quantiles + snapshot windows (satellite: Instrument.snapshot)
# --------------------------------------------------------------------------- #
class TestLabelStatsQuantiles:
    def test_quantiles_bracket_recorded_costs(self):
        stats = LabelStats()
        for _ in range(90):
            stats.add(3e-6)     # 3us bulk
        for _ in range(10):
            stats.add(300e-6)   # 300us tail
        # Power-of-two buckets resolve within a factor of sqrt(2).
        assert stats.p50_us == pytest.approx(3.0, rel=0.45)
        assert stats.p99_us == pytest.approx(300.0, rel=0.45)
        # Bucket midpoints may overshoot the true max by at most sqrt(2).
        assert stats.p50_us <= stats.p99_us <= stats.max_s * 1e6 * 2 ** 0.5

    def test_minus_diffs_counters_and_buckets(self):
        stats = LabelStats()
        stats.add(1e-6, queue_s=0.5)
        first = stats.copy()
        stats.add(100e-6, queue_s=1.5)
        window = stats.minus(first)
        assert window.count == 1
        assert window.total_s == pytest.approx(100e-6)
        assert window.queue_s == pytest.approx(1.5)
        assert sum(window.buckets) == 1

    def test_to_dict_carries_quantiles(self):
        stats = LabelStats()
        stats.add(5e-6)
        doc = stats.to_dict()
        assert set(doc) == {"count", "total_ms", "mean_us", "p50_us",
                            "p99_us", "max_us", "queue_s"}
        assert doc["count"] == 1


class TestInstrumentSnapshot:
    def test_snapshot_is_frozen(self):
        instr = Instrument()
        instr.record("a:1", 1e-6, 1, 0.0)
        snap = instr.snapshot()
        instr.record("a:1", 1e-6, 1, 1.0)
        assert snap.events == 1
        assert snap.labels["a:1"].count == 1
        assert instr.events == 2

    def test_delta_brackets_a_window(self):
        instr = Instrument()
        instr.record("a:1", 1e-6, 2, 0.0, 0.1)
        start = instr.snapshot()
        instr.record("a:1", 2e-6, 3, 5.0, 0.2)
        instr.record("b:2", 4e-6, 4, 6.0)
        window = instr.snapshot().delta(start)
        assert window.events == 2
        assert window.total_busy_s == pytest.approx(6e-6)
        assert set(window.labels) == {"a:1", "b:2"}
        assert window.labels["a:1"].count == 1
        assert window.labels["a:1"].queue_s == pytest.approx(0.2)
        # The window snapshot feeds capture_profile like a live instrument.
        profile = capture_profile(instrument=window)
        assert profile["kernel"]["events"] == 2

    def test_queue_lag_flows_from_kernel(self):
        from repro.simulation.kernel import Simulator

        sim = Simulator()
        sim.instrument = Instrument()
        sim.schedule(2.5, lambda s: None, label="lagged:x")
        sim.run(until=10.0)
        stats = sim.instrument.label_stats("lagged:x")
        # Scheduled at t=0 for t=2.5: the queue lag is simulated time.
        assert stats.queue_s == pytest.approx(2.5)


# --------------------------------------------------------------------------- #
# capture + flamegraphs
# --------------------------------------------------------------------------- #
def _synthetic_instrument(mape_cost: float = 2e-4) -> Instrument:
    instr = Instrument()
    for i in range(50):
        instr.record("deliver:ping", 1e-4, 1, float(i), 0.01)
        instr.record("mape:edge0", mape_cost, 2, float(i))
    return instr


class TestCaptureProfile:
    def test_planes_aggregate_and_rank(self):
        profile = capture_profile(instrument=_synthetic_instrument(3e-4))
        assert profile["schema"] == 1
        planes = profile["planes"]
        assert set(planes) == {"transport", "mape"}
        # mape recorded 3x the per-event cost: it must rank first.
        assert list(planes)[0] == "mape"
        assert planes["transport"]["count"] == 50
        assert planes["transport"]["queue_s"] == pytest.approx(0.5)
        assert profile["kernel"]["events"] == 100
        assert profile["labels"]["mape:edge0"]["plane"] == "mape"

    def test_empty_capture_is_valid(self):
        profile = capture_profile()
        assert profile["planes"] == {} and profile["labels"] == {}

    def test_round_trip(self, tmp_path):
        profile = capture_profile(instrument=_synthetic_instrument())
        path = tmp_path / "p.json"
        save_profile(profile, path)
        assert load_profile(path) == json.loads(json.dumps(profile))

    def test_span_planes_use_self_time(self):
        spans = SpanRecorder()
        root = spans.start("deliver", "message", 0.0)
        with spans.use(root):
            child = spans.start("react", "adaptation", 1.0)
        spans.finish(child, 4.0)
        spans.finish(root, 5.0)
        profile = capture_profile(spans=spans, now=5.0)
        sp = profile["span_planes"]
        # Root spans 5s but 3s belong to the child: self-time attribution.
        assert sp["transport"]["self_s"] == pytest.approx(2.0)
        assert sp["mape"]["self_s"] == pytest.approx(3.0)


class TestFlamegraphs:
    def test_collapsed_kernel_stacks_format(self, tmp_path):
        profile = capture_profile(instrument=_synthetic_instrument())
        lines = collapsed_kernel_stacks(profile)
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) >= 0
            frames = stack.split(";")
            assert len(frames) == 3  # plane;prefix;label
        assert any(line.startswith("mape;mape;mape:edge0 ")
                   for line in lines)
        path = tmp_path / "kernel.folded"
        assert write_flamegraph(path, lines) == len(lines)
        assert path.read_text().count("\n") == len(lines)

    def test_collapsed_span_stacks_root_at_plane(self):
        spans = SpanRecorder()
        root = spans.start("deliver", "message", 0.0)
        with spans.use(root):
            child = spans.start("react", "adaptation", 1.0)
        spans.finish(child, 4.0)
        spans.finish(root, 5.0)
        lines = collapsed_span_stacks(spans, now=5.0)
        # Each stack is rooted at the plane of the span whose self time
        # it carries, so nested mape work is never billed to transport.
        assert lines == ["mape;deliver;react 3000000",
                         "transport;deliver 2000000"]


# --------------------------------------------------------------------------- #
# request critical paths
# --------------------------------------------------------------------------- #
def _run_overload(seed: int = 23):
    from repro.traffic.scenarios import prepare_overload

    prepared = prepare_overload(variant="admission", users=50,
                                rate_per_user=2.0, horizon=8.0, seed=seed)
    system = prepared.system
    system.enable_observability()
    system.run(until=prepared.horizon)
    system.spans.finish_open(system.sim.now)
    return system


class TestRequestCriticalPaths:
    @pytest.fixture(scope="class")
    def system(self):
        return _run_overload()

    def test_segments_sum_to_e2e_latency(self, system):
        requests = [s for s in system.spans
                    if s.category == "request" and s.end is not None
                    and s.status != "truncated"]
        assert len(requests) > 50
        statuses = set()
        for span in requests:
            statuses.add(span.status)
            total = sum(float(span.attrs.get(f"{seg}_s", 0.0))
                        for seg in SEGMENTS)
            assert total == pytest.approx(span.end - span.start,
                                          rel=1e-9, abs=1e-9)
        # The overload run must exercise both outcomes.
        assert "ok" in statuses

    def test_report_totals_and_top_k(self, system):
        report = request_critical_paths(system.spans, top_k=3)
        assert report["requests"] > 50
        assert report["dominant_segment"] in SEGMENTS
        assert len(report["top"]) == 3
        latencies = [row["latency_s"] for row in report["top"]]
        assert latencies == sorted(latencies, reverse=True)
        mean = (sum(row["segments"][seg] for seg in SEGMENTS
                    for row in [report["top"][0]]))
        assert mean == pytest.approx(report["top"][0]["latency_s"],
                                     rel=1e-9, abs=1e-9)

    def test_profile_embeds_critical_path(self, system):
        profile = system.profile_snapshot()
        critical = profile["critical_path"]
        assert critical["requests"] == \
            request_critical_paths(system.spans)["requests"]
        assert set(critical["segments"]) == set(SEGMENTS)

    def test_deterministic_across_identical_runs(self, system):
        other = _run_overload()
        a = capture_profile(spans=system.spans, now=system.sim.now)
        b = capture_profile(spans=other.spans, now=other.sim.now)
        assert a["critical_path"] == b["critical_path"]
        assert a["span_planes"] == b["span_planes"]
        # Kernel event *counts* are deterministic too (wall times are not).
        ia = system.sim.instrument.labels
        ib = other.sim.instrument.labels
        assert {k: v.count for k, v in ia.items()} == \
            {k: v.count for k, v in ib.items()}


# --------------------------------------------------------------------------- #
# differential profiling
# --------------------------------------------------------------------------- #
class TestDiffProfiles:
    def test_synthetically_slowed_plane_ranks_top(self):
        before = capture_profile(instrument=_synthetic_instrument(2e-4))
        after = capture_profile(instrument=_synthetic_instrument(2e-3))
        diff = diff_profiles(before, after)
        assert diff["top_plane"] == "mape"
        assert diff["top_plane_delta_ms"] == pytest.approx(90.0)
        assert diff["planes"][0]["name"] == "mape"
        assert diff["planes"][0]["ratio"] == pytest.approx(10.0)
        rendered = render_profile_diff(diff)
        assert "top mover: mape" in rendered
        assert "slower" in rendered

    def test_faster_plane_reports_negative_delta(self):
        before = capture_profile(instrument=_synthetic_instrument(2e-3))
        after = capture_profile(instrument=_synthetic_instrument(2e-4))
        diff = diff_profiles(before, after)
        assert diff["top_plane"] == "mape"
        assert diff["top_plane_delta_ms"] < 0
        assert "faster" in render_profile_diff(diff)

    def test_bench_snapshot_attribution(self):
        def bench(mape_ms):
            return {"schema": 1, "quick": True, "benches": {
                "smart_city": {"wall_s": 0.5}},
                "profiles": {"smart_city": {
                    "schema": 1, "meta": {},
                    "planes": {"mape": {"count": 10, "total_ms": mape_ms},
                               "transport": {"count": 10, "total_ms": 4.0}},
                    "labels": {}}}}

        before, after = bench(5.0), bench(50.0)
        diffs = diff_bench_profiles(before, after)
        assert diffs["smart_city"]["top_plane"] == "mape"
        lines = attribute_regressions(
            ["smart_city.wall_s: drift +300.00% exceeds tolerance"],
            before, after)
        assert len(lines) == 1
        assert "'mape'" in lines[0] and "+45.00 ms" in lines[0]

    def test_attribution_falls_back_to_bench_subject(self):
        plain = {"schema": 1, "benches": {"kernel": {"wall_s": 0.1}}}
        lines = attribute_regressions(
            ["kernel.wall_s: drift +400.00% exceeds tolerance"],
            plain, plain)
        assert lines == ["kernel: no profile data; bench subject maps "
                         "to plane 'kernel'"]


# --------------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------------- #
class TestProfileExport:
    def test_prom_lines_cover_plane_families(self):
        profile = capture_profile(instrument=_synthetic_instrument())
        text = "\n".join(profile_prom_lines(profile))
        assert 'repro_profile_plane_busy_seconds{plane="mape"}' in text
        assert 'repro_profile_plane_events_total{plane="transport"} 50' in text
        assert "repro_profile_kernel_events_total 100" in text

    def test_prometheus_text_merges_profile(self):
        from repro.observability.export import prometheus_text
        from repro.simulation.metrics import MetricsRecorder

        profile = capture_profile(instrument=_synthetic_instrument())
        text = prometheus_text(MetricsRecorder(), profile=profile)
        assert "repro_profile_plane_busy_seconds" in text

    def test_html_report_gains_profile_section(self, tmp_path):
        from repro.observability.export import write_html_report

        system = _run_overload()
        profile = system.profile_snapshot()
        path = tmp_path / "report.html"
        write_html_report(str(path), "profile test", system.kpi_report(),
                          profile=profile)
        html = path.read_text()
        assert "Profile" in html and "Request critical path" in html


# --------------------------------------------------------------------------- #
# byte-identity: armed profiling must not perturb the run
# --------------------------------------------------------------------------- #
class TestArmedRunIdentity:
    def test_journal_bytes_identical_with_profiling_armed(self, tmp_path):
        from repro.persistence import (
            JournalWriter,
            ScenarioSpec,
            prepare,
        )
        from repro.persistence.runner import RunRecorder, _drive_to_horizon
        from repro.persistence.snapshot import system_digest

        spec = ScenarioSpec(name="mape-outage", params={"observe": True})

        def leg(path, armed):
            prepared = prepare(spec)
            system = prepared.system
            if not armed:
                system.sim.instrument = None  # profiling disarmed
            recorder = RunRecorder(system,
                                   JournalWriter(path, spec.to_dict()))
            _drive_to_horizon(system, prepared.horizon)
            profile = system.profile_snapshot() if armed else None
            recorder.finish()
            return system, profile

        plain_path = str(tmp_path / "plain.jsonl")
        armed_path = str(tmp_path / "armed.jsonl")
        plain_system, _ = leg(plain_path, armed=False)
        armed_system, profile = leg(armed_path, armed=True)

        # The armed run really profiled something...
        assert profile["kernel"]["events"] > 0
        assert profile["planes"]
        # ...yet journal bytes and digests are identical to the
        # disarmed run: the profiling plane is telemetry-only.
        with open(plain_path, "rb") as fh:
            plain_bytes = fh.read()
        with open(armed_path, "rb") as fh:
            armed_bytes = fh.read()
        assert plain_bytes == armed_bytes
        assert system_digest(plain_system) == system_digest(armed_system)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestProfileCli:
    def test_profile_run_and_diff(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "prof")
        assert main(["profile", "run", "traffic-overload", "--quick",
                     "--out", out]) == 0
        for name in ("profile.json", "kernel.folded", "spans.folded",
                     "profile.chrome.json"):
            assert (tmp_path / "prof" / name).exists(), name
        stdout = capsys.readouterr().out
        assert "subsystem cost attribution" in stdout
        assert "request critical path" in stdout

        profile_path = str(tmp_path / "prof" / "profile.json")
        assert main(["profile", "diff", profile_path, profile_path]) == 0
        stdout = capsys.readouterr().out
        assert "top mover" in stdout

    def test_profile_diff_rejects_bad_paths(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.json")
        assert main(["profile", "diff", missing, missing]) == 2

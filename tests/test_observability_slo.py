"""Tests for SLO specs, the in-simulation SLO monitor, reachability
probing, and the alert-driven close of the MAPE loop: SLO burn must
demonstrably trigger adaptation."""

import pytest

from repro.adaptation import (
    Executor,
    KnowledgeBase,
    MapeLoop,
    RuleBasedPlanner,
    SloAlertAnalyzer,
)
from repro.core.system import IoTSystem
from repro.faults.models import CrashFault, PartitionFault
from repro.observability.slo import (
    ReachabilityProbe,
    SloMonitor,
    SloSpec,
    default_slos,
)
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import MetricsRecorder
from repro.simulation.trace import TraceLog


def make_monitor(specs, period=1.0):
    sim = Simulator()
    metrics = MetricsRecorder()
    trace = TraceLog()
    monitor = SloMonitor(sim, metrics, specs, trace=trace, period=period)
    return sim, metrics, trace, monitor


AVAIL = SloSpec(name="avail:d1", kind="availability", series="up:d1",
                objective=0.9, window=10.0, subject="d1")


class TestSloSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="weather", series="s", objective=1.0,
                    window=5.0)

    def test_rejects_bad_objectives_and_windows(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="availability", series="s", objective=1.0,
                    window=5.0)  # availability must be < 1
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="latency", series="s", objective=0.0,
                    window=5.0)
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="rate", series="s", objective=1.0,
                    window=0.0)


class TestSloMonitor:
    def test_rejects_duplicate_names(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SloMonitor(sim, MetricsRecorder(), [AVAIL, AVAIL])

    def test_missing_series_is_not_a_breach(self):
        sim, metrics, trace, monitor = make_monitor([AVAIL])
        (status,) = monitor.evaluate_now()
        assert status.measured is None
        assert not status.breached
        assert not monitor.ever_breached

    def test_availability_burn_and_breach(self):
        sim, metrics, trace, monitor = make_monitor([AVAIL])
        metrics.set_level("up:d1", 0.0, 1.0)
        sim.run(until=5.0)
        metrics.set_level("up:d1", 5.0, 0.0)
        sim.run(until=10.0)
        (status,) = monitor.evaluate_now()
        # Availability over [0, 10) is 0.5; budget is 0.1 -> burn 5x.
        assert status.measured == pytest.approx(0.5)
        assert status.burn_rate == pytest.approx(5.0)
        assert status.breached
        assert monitor.breach_events == 1
        assert trace.count(category="alert", name="slo-breach") == 1

    def test_latency_and_rate_objectives(self):
        latency = SloSpec(name="lat", kind="latency", series="rtt",
                          objective=0.1, window=10.0, percentile=95.0)
        rate = SloSpec(name="rate", kind="rate", series="req",
                       objective=2.0, window=10.0)
        sim, metrics, trace, monitor = make_monitor([latency, rate])
        for i in range(10):
            metrics.record("rtt", i, 0.05 if i < 9 else 0.5)
            metrics.record("req", i, 1.0)
        sim.run(until=10.0)
        by_name = {s.spec.name: s for s in monitor.evaluate_now()}
        assert by_name["lat"].breached          # p95 = 0.5 > 0.1
        assert by_name["rate"].breached         # 1/s < 2/s
        assert by_name["rate"].measured == pytest.approx(1.0)

    def test_breach_and_recovery_transitions_emit_once(self):
        sim, metrics, trace, monitor = make_monitor([AVAIL])
        metrics.set_level("up:d1", 0.0, 0.0)
        sim.run(until=2.0)
        monitor.evaluate_now()
        monitor.evaluate_now()   # still breached: no second transition
        assert monitor.breach_events == 1
        assert trace.count(category="alert", name="slo-breach") == 1
        metrics.set_level("up:d1", 2.0, 1.0)
        sim.run(until=40.0)      # window slides clear of the bad samples
        monitor.evaluate_now()
        assert trace.count(category="alert", name="slo-recovered") == 1
        assert not monitor.breached_now

    def test_alerts_repeat_into_knowledge_while_breached(self):
        """Retry semantics: every breached evaluation re-alerts MAPE."""
        sim, metrics, trace, monitor = make_monitor([AVAIL])
        knowledge = KnowledgeBase(["d1"])
        monitor.attach(knowledge)
        metrics.set_level("up:d1", 0.0, 0.0)
        sim.run(until=1.0)
        monitor.evaluate_now()
        monitor.evaluate_now()
        alerts = knowledge.facts["slo_alerts"]
        assert len(alerts) == 2
        assert alerts[0]["slo"] == "avail:d1"
        assert alerts[0]["subject"] == "d1"

    def test_attach_rejects_sink_without_knowledge(self):
        sim, metrics, trace, monitor = make_monitor([AVAIL])
        with pytest.raises(TypeError):
            monitor.attach(object())

    def test_periodic_ticks_run_inside_simulation(self):
        sim, metrics, trace, monitor = make_monitor([AVAIL], period=2.0)
        metrics.set_level("up:d1", 0.0, 1.0)
        monitor.start()
        sim.run(until=10.0)
        assert monitor.evaluations == 5
        burn = metrics.series("slo.burn:avail:d1")
        assert len(burn) == 5

    def test_slo_health_is_recorded_as_telemetry(self):
        sim, metrics, trace, monitor = make_monitor([AVAIL])
        metrics.set_level("up:d1", 0.0, 0.0)
        sim.run(until=1.0)
        monitor.evaluate_now()
        assert metrics.series("slo.ok:avail:d1").value_at(1.0) == 0.0
        assert monitor.to_dict()["slos"][0]["breached"] is True


class TestDefaultSlos:
    def test_per_edge_availability_specs(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 1, seed=3)
        specs = default_slos(system)
        names = {spec.name for spec in specs}
        assert names == {"availability:edge0", "availability:edge1"}
        assert all(spec.escalation == "device-down" for spec in specs)

    def test_city_and_strict_add_objectives(self):
        system = IoTSystem.with_edge_cloud_landscape(2, 1, seed=3)
        specs = default_slos(system, strict=True, city=True)
        names = {spec.name for spec in specs}
        assert "ingest-latency-p95" in names
        assert "ingest-rate" in names
        assert "cloud-reachability" in names
        reach = next(s for s in specs if s.name == "cloud-reachability")
        assert reach.series == "reach:cloud"


class TestReachabilityProbe:
    def test_timeout_must_fit_period(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 1, seed=3)
        with pytest.raises(ValueError):
            ReachabilityProbe(system.sim, system.network, system.metrics,
                              "edge0", "cloud", period=1.0, timeout=2.0)

    def test_partition_drives_reach_series_down(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 1, seed=3)
        probe = ReachabilityProbe(system.sim, system.network, system.metrics,
                                  "edge0", "cloud", period=2.0, timeout=1.5)
        probe.start()
        system.injector.inject_at(10.0, PartitionFault(
            name="cloud-cut", duration=10.0, isolate_node="cloud"))
        system.run(until=30.0)
        reach = system.metrics.series("reach:cloud")
        assert reach.value_at(5.0) == 1.0       # reachable before the cut
        assert reach.value_at(15.0) == 0.0      # probes time out mid-cut
        assert reach.value_at(29.0) == 1.0      # heals after revert
        assert probe.lost >= 4

    def test_strict_slo_breaches_on_partition(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 1, seed=3)
        ReachabilityProbe(system.sim, system.network, system.metrics,
                          "edge0", "cloud", period=2.0, timeout=1.5).start()
        monitor = SloMonitor(
            system.sim, system.metrics, default_slos(system, strict=True),
            trace=system.trace, period=2.0)
        monitor.start()
        system.injector.inject_at(10.0, PartitionFault(
            name="cloud-cut", duration=10.0, isolate_node="cloud"))
        system.run(until=30.0)
        assert monitor.ever_breached
        assert system.trace.count(category="alert", name="slo-breach") >= 1


class TestSloDrivenAdaptation:
    """Acceptance: an SLO burn alert triggers a MAPE repair."""

    def _build(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 2, seed=11)
        system.enable_observability()
        scope = ["edge0"] + list(system.sites["edge0"])
        loop = MapeLoop(
            system.sim, system.network, system.fleet, "edge0", scope,
            analyzers=[SloAlertAnalyzer()],   # *only* SLO alerts drive it
            planner=RuleBasedPlanner(),
            executor=Executor(system.sim, system.network, system.fleet,
                              "edge0", system.rngs.stream("exec"),
                              trace=system.trace),
            period=1.0, metrics=system.metrics, trace=system.trace,
        )
        loop.start()
        device = system.sites["edge0"][0]
        spec = SloSpec(name=f"avail:{device}", kind="availability",
                       series=f"up:{device}", objective=0.9, window=10.0,
                       subject=device, escalation="device-down", severity=4)
        monitor = SloMonitor(system.sim, system.metrics, [spec],
                             trace=system.trace, period=1.0)
        monitor.attach(loop)
        monitor.start()
        # Crash with no scheduled revert: only adaptation can bring the
        # device back.
        system.injector.inject_at(3.0, CrashFault(name=f"crash:{device}",
                                                  device_id=device))
        return system, loop, monitor, device

    def test_slo_burn_triggers_repair(self):
        system, loop, monitor, device = self._build()
        system.run(until=40.0)
        assert monitor.ever_breached
        # The loop's only analyzer is the SLO one, so any repair is
        # alert-driven by construction -- and the device came back.
        assert system.device(device).up
        assert len(loop.repairs) >= 1
        # The repaired issue was closed; nothing is left outstanding.
        assert not loop.knowledge.has_issue("device-down", device)
        # The alert itself is ordinary telemetry.
        assert system.trace.count(category="alert", name="slo-breach") >= 1
        assert system.trace.count(category="alert", name="slo-recovered") >= 1

    def test_repair_joins_disruption_trace(self):
        system, loop, monitor, device = self._build()
        system.run(until=40.0)
        system.spans.finish_open(system.sim.now)
        report = system.kpi_report()
        crash_arcs = [arc for arc in report.arcs
                      if arc.fault_type == "CrashFault"]
        assert crash_arcs and crash_arcs[0].repairs >= 1
        assert crash_arcs[0].mttd is not None
        assert crash_arcs[0].mttr is not None

"""Unit tests for placement solvers and the deviceless scheduler."""

import pytest

from repro.coordination.gossip import GossipNode
from repro.coordination.registry import ServiceRegistry
from repro.devices.base import Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.devices.software import Service, ServiceState
from repro.network.topology import build_edge_cloud_topology
from repro.network.transport import Network
from repro.orchestration.placement import (
    PlacementConstraints,
    PlacementError,
    best_fit_placement,
    first_fit_decreasing,
    latency_aware_placement,
)
from repro.orchestration.scheduler import DevicelessScheduler


def make_devices():
    small = Device("small", DeviceClass.GATEWAY)
    big = Device("big", DeviceClass.EDGE)
    cloud = Device("cloud", DeviceClass.CLOUD)
    return [small, big, cloud]


class TestBestFit:
    def test_picks_tightest_fit(self):
        devices = make_devices()
        service = Service("svc", cpu=500.0)
        decision = best_fit_placement(service, devices)
        assert decision.device_id == "small"   # 1000 cpu leaves least slack

    def test_skips_down_devices(self):
        devices = make_devices()
        devices[0].crash()
        decision = best_fit_placement(Service("svc", cpu=500.0), devices)
        assert decision.device_id == "big"

    def test_respects_domain_constraint(self):
        devices = make_devices()
        devices[1].domain = "allowed"
        constraints = PlacementConstraints(allowed_domains=frozenset({"allowed"}))
        decision = best_fit_placement(Service("svc"), devices, constraints)
        assert decision.device_id == "big"

    def test_respects_tier_constraint(self):
        devices = make_devices()
        constraints = PlacementConstraints(required_tiers=frozenset({"cloud"}))
        decision = best_fit_placement(Service("svc"), devices, constraints)
        assert decision.device_id == "cloud"

    def test_anti_affinity(self):
        devices = make_devices()
        devices[0].host(Service("rival"))
        constraints = PlacementConstraints(anti_affinity=frozenset({"rival"}))
        decision = best_fit_placement(Service("svc", cpu=500.0), devices, constraints)
        assert decision.device_id == "big"

    def test_no_feasible_host_raises(self):
        devices = make_devices()
        with pytest.raises(PlacementError):
            best_fit_placement(Service("svc", cpu=1e9), devices)


class TestLatencyAware:
    def test_prefers_host_near_clients(self, rngs):
        topology, sites = build_edge_cloud_topology(2, 2, rng=rngs.stream("net"))
        fleet = {}
        devices = []
        for node in ("edge0", "edge1"):
            device = Device(node, DeviceClass.EDGE)
            devices.append(device)
        cloud = Device("cloud", DeviceClass.CLOUD)
        devices.append(cloud)
        clients = sites["edge0"]
        decision = latency_aware_placement(Service("svc"), devices, topology, clients)
        assert decision.device_id == "edge0"

    def test_unreachable_clients_penalized_not_fatal(self, rngs):
        topology, sites = build_edge_cloud_topology(2, 2, rng=rngs.stream("net"))
        devices = [Device("edge0", DeviceClass.EDGE), Device("edge1", DeviceClass.EDGE)]
        decision = latency_aware_placement(
            Service("svc"), devices, topology, ["ghost-client"]
        )
        assert decision.device_id in ("edge0", "edge1")


class TestFirstFitDecreasing:
    def test_places_large_first(self):
        devices = make_devices()
        services = [Service("tiny", cpu=10.0), Service("large", cpu=900.0)]
        decisions = first_fit_decreasing(services, devices)
        placed = {d.service_name: d.device_id for d in decisions}
        assert placed["large"] == "small"   # first candidate that fits
        assert devices[0].hosts("large")

    def test_raises_when_cannot_place(self):
        devices = make_devices()
        with pytest.raises(PlacementError):
            first_fit_decreasing([Service("huge", cpu=1e9)], devices)


@pytest.fixture
def scheduler_rig(sim, rngs, trace):
    topology, sites = build_edge_cloud_topology(2, 2, rng=rngs.stream("net"))
    network = Network(sim, topology, trace=trace)
    fleet = DeviceFleet(sim, network=network, trace=trace)
    fleet.add(Device("cloud", DeviceClass.CLOUD))
    for edge in sites:
        fleet.add(Device(edge, DeviceClass.EDGE))
        for device_id in sites[edge]:
            fleet.add(Device(device_id, DeviceClass.GATEWAY))
    gossip = GossipNode(sim, network, "edge0", ["edge0"], rngs.stream("g"))
    registry = ServiceRegistry(gossip)
    scheduler = DevicelessScheduler(sim, fleet, topology, registry=registry,
                                    trace=trace)
    return scheduler, fleet, topology, sites, registry


class TestDevicelessScheduler:
    def test_submit_latency_aware(self, scheduler_rig):
        scheduler, fleet, _, sites, registry = scheduler_rig
        decision = scheduler.submit(Service("proc"), clients=sites["edge1"])
        # Site-1 hosts (the edge or a local gateway) beat everything else
        # on mean latency to site-1 clients.
        site1_hosts = {"edge1"} | set(sites["edge1"])
        assert decision.device_id in site1_hosts
        assert scheduler.placement_of("proc") == decision.device_id
        assert scheduler.healthy("proc")
        assert registry.lookup("proc").device_id == decision.device_id

    def test_submit_best_fit_without_clients(self, scheduler_rig):
        scheduler, fleet, _, _, _ = scheduler_rig
        decision = scheduler.submit(Service("batch", cpu=500.0))
        assert decision.device_id is not None

    def test_duplicate_submit_raises(self, scheduler_rig):
        scheduler, _, _, sites, _ = scheduler_rig
        scheduler.submit(Service("proc"), clients=sites["edge0"])
        with pytest.raises(ValueError):
            scheduler.submit(Service("proc"))

    def test_reconcile_replaces_after_host_crash(self, scheduler_rig):
        scheduler, fleet, _, sites, _ = scheduler_rig
        decision = scheduler.submit(Service("proc"), clients=sites["edge1"])
        old_host = decision.device_id
        fleet.crash(old_host)
        assert not scheduler.healthy("proc")
        decisions = scheduler.reconcile()
        assert len(decisions) == 1
        new_host = scheduler.placement_of("proc")
        assert new_host != old_host
        assert scheduler.healthy("proc")
        assert scheduler.reschedules == 1

    def test_reconcile_replaces_failed_service(self, scheduler_rig):
        scheduler, fleet, _, sites, _ = scheduler_rig
        decision = scheduler.submit(Service("proc"), clients=sites["edge0"])
        fleet.get(decision.device_id).stack.mark_failed("proc")
        scheduler.reconcile()
        assert scheduler.healthy("proc")

    def test_reconcile_noop_when_healthy(self, scheduler_rig):
        scheduler, _, _, sites, _ = scheduler_rig
        scheduler.submit(Service("proc"), clients=sites["edge0"])
        assert scheduler.reconcile() == []

    def test_reconcile_survives_no_capacity(self, scheduler_rig):
        scheduler, fleet, _, sites, _ = scheduler_rig
        decision = scheduler.submit(Service("proc"), clients=sites["edge0"])
        # Crash every device: reconcile has nowhere to go.
        for device in fleet.devices:
            fleet.crash(device.device_id)
        decisions = scheduler.reconcile()
        assert decisions == []   # nowhere to go; deployment stays put
        assert scheduler.placement_of("proc") == decision.device_id

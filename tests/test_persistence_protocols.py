"""Checkpoint round trips across every coordination protocol.

For each protocol: wire system A, start it, run to a message-quiescent
point, snapshot (kernel + RNG registry + fleet + protocol state); wire
an identical system B that is *never started*, restore the snapshot into
it, then run both to the horizon.  The continuation must be bit-for-bit
identical: same kernel counters, same RNG stream digests, and the same
final protocol state (compared as snapshot digests, which include every
counter, pending tick and private RNG).

Snapshots are forced through a JSON round trip so nothing survives by
object identity.
"""

import json

import pytest

from repro.coordination import (
    BullyElection,
    GossipNode,
    HeartbeatFailureDetector,
    LeaseKeeper,
    LeaseManager,
    MembershipProtocol,
    PhiAccrualFailureDetector,
    RaftCluster,
    RaftNode,
)
from repro.core.system import IoTSystem
from repro.persistence.snapshot import state_digest


def _quiesce(system, after):
    """Run past ``after``, then step until no message is in flight.

    In-flight deliveries are heap closures that cannot be checkpointed;
    components only re-register their own ticks and timeouts, so a
    snapshot is taken at a point where the pending queue holds nothing
    else.
    """
    system.run(until=after)
    for _ in range(10_000):
        if not any(e["label"].startswith("deliver:")
                   for e in system.sim.pending_events()):
            return
        system.sim.step()
    raise AssertionError("no message-quiescent point found")


def _snapshot(system, components):
    return json.loads(json.dumps({
        "kernel": system.sim.snapshot_state(),
        "rngs": system.rngs.snapshot_state(),
        "fleet": system.fleet.snapshot_state(),
        "components": {name: comp.snapshot_state()
                       for name, comp in components.items()},
    }))


def _restore(system, components, snap):
    system.sim.restore_state(snap["kernel"])
    system.rngs.restore_state(snap["rngs"])
    system.fleet.restore_state(snap["fleet"])
    for name, comp in components.items():
        comp.restore_state(snap["components"][name])


def _assert_identical_continuation(sys_a, comps_a, sys_b, comps_b):
    assert sys_a.sim.now == sys_b.sim.now
    assert sys_a.sim.fired_count == sys_b.sim.fired_count
    assert sys_a.sim._next_seq == sys_b.sim._next_seq
    assert (state_digest(sys_a.rngs.snapshot_state())
            == state_digest(sys_b.rngs.snapshot_state()))
    for name in comps_a:
        assert (state_digest(comps_a[name].snapshot_state())
                == state_digest(comps_b[name].snapshot_state())), name


def _round_trip(build, checkpoint_at, horizon):
    """Run build()'s protocol through an interrupted/uninterrupted pair."""
    sys_a, comps_a, start_a = build()
    start_a()
    _quiesce(sys_a, checkpoint_at)
    snap = _snapshot(sys_a, comps_a)

    sys_b, comps_b, _ = build()
    _restore(sys_b, comps_b, snap)

    sys_a.run(until=horizon)
    sys_b.run(until=horizon)
    _assert_identical_continuation(sys_a, comps_a, sys_b, comps_b)
    return comps_a, comps_b


class TestGossipRoundTrip:
    def test_restore_continue_matches_uninterrupted(self):
        def build():
            system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=5)
            edges = sorted(system.edge_nodes)
            nodes = {
                nid: GossipNode(system.sim, system.network, nid, list(edges),
                                rng=system.rngs.stream("gossip"), period=1.0)
                for nid in edges
            }

            def start():
                for node in nodes.values():
                    node.start()
                nodes[edges[0]].set("config", "v1")

            return system, nodes, start

        comps_a, comps_b = _round_trip(build, checkpoint_at=7.5, horizon=20.0)
        for name, node in comps_a.items():
            assert node.get("config") == "v1"
            assert node.rounds == comps_b[name].rounds
            assert node.rounds > 0


class TestFailureDetectorRoundTrip:
    def _build(self, cls, **kwargs):
        def build():
            system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=9)
            edges = sorted(system.edge_nodes)
            detectors = {
                nid: cls(system.sim, system.network, nid,
                         [p for p in edges if p != nid], **kwargs)
                for nid in edges
            }

            def start():
                for detector in detectors.values():
                    detector.start()
                # The crash fires before the checkpoint, so its effects
                # (not its event) are part of the restored state.
                system.sim.schedule(2.0,
                                    lambda s: system.fleet.crash("edge2"),
                                    label="test:crash")

            return system, detectors, start

        return build

    def test_heartbeat_restore_mid_suspicion(self):
        build = self._build(HeartbeatFailureDetector, period=1.0, timeout=3.0)
        comps_a, comps_b = _round_trip(build, checkpoint_at=4.5, horizon=12.0)
        for name in ("edge0", "edge1"):
            assert comps_a[name].suspects("edge2")
            assert comps_a[name].alive_peers == comps_b[name].alive_peers

    def test_phi_accrual_restore_mid_suspicion(self):
        build = self._build(PhiAccrualFailureDetector, period=1.0,
                            threshold=3.0)
        comps_a, comps_b = _round_trip(build, checkpoint_at=4.5, horizon=12.0)
        for name in ("edge0", "edge1"):
            assert comps_a[name].alive_peers == comps_b[name].alive_peers


class TestRaftRoundTrip:
    def test_restore_mid_term_with_log(self):
        def build():
            system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=13)
            edges = sorted(system.edge_nodes)
            cluster = RaftCluster(system.sim, system.network, edges,
                                  rng=system.rngs.stream("raft"))

            def propose(s):
                leader = cluster.leader()
                if leader is not None:
                    leader.propose({"op": "set", "at": s.now})

            def start():
                cluster.start()
                system.sim.schedule(6.0, propose, label="test:propose")

            return system, {"cluster": cluster}, start

        comps_a, comps_b = _round_trip(build, checkpoint_at=8.0, horizon=25.0)
        cluster_a, cluster_b = comps_a["cluster"], comps_b["cluster"]
        leader_a, leader_b = cluster_a.leader(), cluster_b.leader()
        assert leader_a is not None
        assert leader_b is not None
        assert leader_a.node_id == leader_b.node_id
        assert cluster_a.applied == cluster_b.applied
        assert any(cluster_a.applied.values()), "no command was ever applied"


class TestElectionRoundTrip:
    def test_restore_with_pending_response_deadline(self):
        def build():
            system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=17)
            edges = sorted(system.edge_nodes)
            elections = {
                nid: BullyElection(system.sim, system.network, nid,
                                   list(edges), response_timeout=2.0)
                for nid in edges
            }

            def start():
                system.sim.schedule(
                    1.0, lambda s: elections[edges[0]].start_election(),
                    label="test:start-election")

            return system, elections, start

        comps_a, comps_b = _round_trip(build, checkpoint_at=1.5, horizon=8.0)
        expected = sorted(comps_a)[-1]   # bully: highest id wins
        for name in comps_a:
            assert comps_a[name].leader == expected
            assert comps_b[name].leader == expected


class TestLeaseRoundTrip:
    def test_restore_mid_lease(self):
        def build():
            system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=21)
            edges = sorted(system.edge_nodes)
            rng = system.rngs.stream("raft")
            import random
            rafts = {
                nid: RaftNode(system.sim, system.network, nid, list(edges),
                              random.Random(rng.getrandbits(64)))
                for nid in edges
            }
            managers = {nid: LeaseManager(system.sim, raft)
                        for nid, raft in rafts.items()}
            keepers = {nid: LeaseKeeper(system.sim, managers[nid], "lock",
                                        period=1.0)
                       for nid in edges}
            comps = {}
            for nid in edges:
                comps[f"raft:{nid}"] = rafts[nid]
                comps[f"manager:{nid}"] = managers[nid]
                comps[f"keeper:{nid}"] = keepers[nid]

            def start():
                for raft in rafts.values():
                    raft.start()
                for keeper in keepers.values():
                    keeper.start()

            return system, comps, start

        comps_a, comps_b = _round_trip(build, checkpoint_at=10.0, horizon=25.0)
        holders_a = {name: comp.holder_of("lock")
                     for name, comp in comps_a.items()
                     if name.startswith("manager:")}
        holders_b = {name: comp.holder_of("lock")
                     for name, comp in comps_b.items()
                     if name.startswith("manager:")}
        assert holders_a == holders_b
        assert any(h is not None for h in holders_a.values()), \
            "no lease was ever granted"


class TestMembershipRoundTrip:
    def test_restore_mid_suspicion_with_inflight_timeouts(self):
        def build():
            system = IoTSystem.with_edge_cloud_landscape(4, 1, seed=25)
            edges = sorted(system.edge_nodes)
            members = {
                nid: MembershipProtocol(
                    system.sim, system.network, nid, list(edges),
                    rng=system.rngs.stream(f"swim:{nid}"),
                    probe_period=1.0, suspicion_timeout=4.0)
                for nid in edges
            }

            def start():
                for member in members.values():
                    member.start()
                system.sim.schedule(3.0,
                                    lambda s: system.fleet.crash("edge3"),
                                    label="test:crash")

            return system, members, start

        comps_a, comps_b = _round_trip(build, checkpoint_at=5.5, horizon=15.0)
        for name in ("edge0", "edge1", "edge2"):
            states_a = {n: s.value if hasattr(s, "value") else s
                        for n, s in _member_states(comps_a[name]).items()}
            states_b = {n: s.value if hasattr(s, "value") else s
                        for n, s in _member_states(comps_b[name]).items()}
            assert states_a == states_b
            assert states_a.get("edge3") in ("dead", "suspect", None)


def _member_states(protocol):
    snap = protocol.snapshot_state()
    return {node: entry[0] for node, entry in snap["members"].items()}

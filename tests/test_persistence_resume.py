"""End-to-end acceptance tests for checkpoint / resume / replay.

The headline guarantees:

* a run interrupted at an arbitrary checkpoint and resumed produces a
  journal *byte-identical* to an uninterrupted run with the same seed,
  and identical ``kpi_report()`` output;
* ``replay`` detects a deliberately corrupted journal and reports the
  first divergence point;
* the ``harness-crash`` fault scenario (an unplanned kernel stop
  mid-run) recovers through the same path with the same bytes.
"""

import json

import pytest

from repro.persistence import (
    CheckpointError,
    Checkpoint,
    JournalError,
    ScenarioSpec,
    default_paths,
    fast_forward,
    prepare,
    read_journal,
    replay_journal,
    resume_run,
    run_scenario,
    run_to_checkpoint,
    scenario_names,
    write_divergence_report,
)


def _reference(tmp_path, spec):
    journal_path = str(tmp_path / "reference.jsonl")
    result = run_scenario(spec, journal_path=journal_path)
    return result, journal_path


class TestScenarioRegistry:
    def test_builtin_scenarios_registered(self):
        names = scenario_names()
        for expected in ("control-outage", "mape-outage", "harness-crash",
                         "traffic-overload", "traffic-retry-storm"):
            assert expected in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            prepare(ScenarioSpec(name="no-such-scenario"))


class TestResumeBitwiseIdentity:
    @pytest.mark.parametrize("scenario,at", [
        ("control-outage", 45.0),
        ("mape-outage", 30.0),
        ("traffic-overload", 14.0),
    ])
    def test_interrupted_resume_matches_uninterrupted(
            self, tmp_path, scenario, at):
        spec = ScenarioSpec(name=scenario)
        reference, ref_journal = _reference(tmp_path, spec)

        directory = str(tmp_path / "interrupted")
        interrupted = run_to_checkpoint(spec, directory, at=at)
        assert interrupted.checkpoint.time == at
        assert interrupted.checkpoint.fired < reference.system.sim.fired_count

        resumed = resume_run(directory=directory)
        assert resumed.fast_forward_events == interrupted.checkpoint.fired
        assert resumed.final_digest == reference.final_digest

        with open(ref_journal) as fh:
            ref_bytes = fh.read()
        with open(resumed.journal_path) as fh:
            resumed_bytes = fh.read()
        assert resumed_bytes == ref_bytes

    def test_kpi_report_identical_after_resume(self, tmp_path):
        spec = ScenarioSpec(name="mape-outage")
        reference, _ = _reference(tmp_path, spec)
        run_to_checkpoint(spec, str(tmp_path / "i"), at=40.0)
        resumed = resume_run(directory=str(tmp_path / "i"))

        ref_kpis = json.dumps(reference.system.kpi_report().to_dict(),
                              sort_keys=True, default=str)
        res_kpis = json.dumps(resumed.system.kpi_report().to_dict(),
                              sort_keys=True, default=str)
        assert res_kpis == ref_kpis

    def test_harness_crash_recovery(self, tmp_path):
        """An unplanned kernel stop mid-run resumes to identical bytes."""
        spec = ScenarioSpec(name="harness-crash", seed=7,
                            params={"crash_at": 40.0})
        reference, ref_journal = _reference(tmp_path, spec)

        directory = str(tmp_path / "crashed")
        crashed = run_to_checkpoint(spec, directory)   # stops at the fault
        assert crashed.checkpoint.time == pytest.approx(40.0)

        resumed = resume_run(directory=directory)
        assert resumed.final_digest == reference.final_digest
        with open(ref_journal) as fh_a, open(resumed.journal_path) as fh_b:
            assert fh_b.read() == fh_a.read()

    def test_resume_records_restore_telemetry(self, tmp_path):
        spec = ScenarioSpec(name="control-outage")
        run_to_checkpoint(spec, str(tmp_path / "c"), at=45.0)
        resumed = resume_run(directory=str(tmp_path / "c"))
        metrics = resumed.system.metrics
        assert len(metrics.series("persistence.restore.fast_forward_s")) == 1
        assert metrics.series("persistence.restore.events").values == [226.0]
        # Telemetry must be digest-neutral: series only, no counters.
        assert not [n for n in metrics.counter_names
                    if n.startswith("persistence")]


class TestFastForwardVerification:
    def test_digest_mismatch_is_refused(self, tmp_path):
        spec = ScenarioSpec(name="control-outage")
        directory = str(tmp_path / "c")
        run_to_checkpoint(spec, directory, at=45.0)
        checkpoint = Checkpoint.load(default_paths(directory)["checkpoint"])
        drifted = Checkpoint(
            scenario=checkpoint.scenario, time=checkpoint.time,
            fired=checkpoint.fired, digest="0" * 64,
            digest_every=checkpoint.digest_every, state=checkpoint.state)
        prepared = prepare(ScenarioSpec.from_dict(checkpoint.scenario))
        with pytest.raises(CheckpointError, match="digest"):
            fast_forward(prepared.system, drifted)

    def test_checkpoint_beyond_run_is_refused(self, tmp_path):
        spec = ScenarioSpec(name="control-outage")
        directory = str(tmp_path / "c")
        run_to_checkpoint(spec, directory, at=45.0)
        checkpoint = Checkpoint.load(default_paths(directory)["checkpoint"])
        impossible = Checkpoint(
            scenario=checkpoint.scenario, time=checkpoint.time,
            fired=10**6, digest=checkpoint.digest,
            digest_every=checkpoint.digest_every)
        prepared = prepare(ScenarioSpec.from_dict(checkpoint.scenario))
        with pytest.raises(CheckpointError):
            fast_forward(prepared.system, impossible)


class TestReplay:
    def test_intact_journal_replays_clean(self, tmp_path):
        spec = ScenarioSpec(name="control-outage")
        _, journal_path = _reference(tmp_path, spec)
        report = replay_journal(journal_path)
        assert report.ok
        assert report.divergence is None
        assert report.journal_complete
        assert report.records_checked > 0

    def test_corrupted_journal_reports_divergence_point(self, tmp_path):
        spec = ScenarioSpec(name="control-outage")
        _, journal_path = _reference(tmp_path, spec)

        lines = open(journal_path).read().splitlines()
        target = 100
        record = json.loads(lines[target])
        assert record["type"] == "event"
        record["label"] = "tampered"
        lines[target] = json.dumps(record, sort_keys=True,
                                   separators=(",", ":"))
        with open(journal_path, "w") as fh:
            fh.write("\n".join(lines) + "\n")

        report = replay_journal(journal_path)
        assert not report.ok
        divergence = report.divergence
        assert divergence.index == target - 1   # header is not a record
        assert divergence.field == "label"
        assert divergence.recorded == "tampered"
        assert divergence.replayed != "tampered"
        assert divergence.time == record["t"]

        out = str(tmp_path / "divergence.json")
        write_divergence_report(report, out)
        written = json.load(open(out))
        assert written["divergence"]["field"] == "label"

    def test_incomplete_journal_is_a_valid_prefix(self, tmp_path):
        spec = ScenarioSpec(name="control-outage")
        directory = str(tmp_path / "c")
        run_to_checkpoint(spec, directory, at=45.0)
        journal_path = default_paths(directory)["journal"]
        journal = read_journal(journal_path)
        assert not journal.complete
        report = replay_journal(journal_path)
        assert report.ok
        assert not report.journal_complete
        assert report.records_checked == len(journal.records)

    def test_journal_without_scenario_is_rejected(self, tmp_path):
        from repro.persistence import JournalWriter

        path = str(tmp_path / "anon.jsonl")
        writer = JournalWriter(path, scenario={})
        writer.append_event(1, 0.5, "a")
        writer.abandon()
        with pytest.raises(JournalError):
            replay_journal(path)


class TestCli:
    def test_checkpoint_resume_replay_verbs(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "ckpt")
        assert main(["checkpoint", "control-outage", "--at", "45",
                     "--out", out]) == 0
        assert main(["resume", "--out", out]) == 0
        capsys.readouterr()
        assert main(["replay", "--out", out, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0
        titles = [t["title"] for t in payload["tables"]]
        assert "replay: deterministic verification" in titles

    def test_replay_verb_fails_on_tampered_journal(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "ckpt")
        assert main(["checkpoint", "control-outage", "--at", "45",
                     "--out", out]) == 0
        assert main(["resume", "--out", out]) == 0
        journal_path = default_paths(out)["journal"]
        lines = open(journal_path).read().splitlines()
        record = json.loads(lines[50])
        record["label"] = "tampered"
        lines[50] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(journal_path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["replay", "--out", out]) == 1
        report = json.load(open(default_paths(out)["divergence"]))
        assert report["divergence"] is not None

"""Unit tests for the persistence primitives.

Covers the snapshot helpers (canonical digests), kernel checkpointing
(clock/counters, pending-event metadata honoring lazy cancellation,
seq-preserving re-registration), RNG stream round trips, device/fleet
round trips, the JSONL journal (append, torn-line recovery, truncation),
and the versioned integrity-hashed checkpoint file.
"""

import json
import os

import pytest

from repro.persistence.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    default_paths,
)
from repro.persistence.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalWriter,
    read_journal,
    truncate,
)
from repro.persistence.snapshot import (
    canonical_json,
    event_ref,
    restore_event_ref,
    state_digest,
)
from repro.simulation.kernel import SimulationError, Simulator
from repro.simulation.rng import RngRegistry


# --------------------------------------------------------------------------- #
# digests
# --------------------------------------------------------------------------- #
class TestDigests:
    def test_canonical_json_is_order_insensitive(self):
        assert (canonical_json({"b": 1, "a": [1, 2]})
                == canonical_json({"a": [1, 2], "b": 1}))

    def test_canonical_json_handles_sets_and_tuples(self):
        assert (canonical_json({"s": {3, 1, 2}, "t": (1, 2)})
                == canonical_json({"s": [1, 2, 3], "t": [1, 2]}))

    def test_state_digest_is_deterministic_and_sensitive(self):
        state = {"clock": 12.5, "streams": ["a", "b"]}
        assert state_digest(state) == state_digest(dict(state))
        changed = dict(state, clock=12.6)
        assert state_digest(state) != state_digest(changed)


# --------------------------------------------------------------------------- #
# kernel
# --------------------------------------------------------------------------- #
class TestKernelSnapshot:
    def test_snapshot_excludes_lazily_cancelled_events(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda s: None, label="keep")
        drop = sim.schedule(2.0, lambda s: None, label="drop")
        sim.cancel(drop)
        pending = sim.snapshot_state()["pending"]
        assert [e["label"] for e in pending] == ["keep"]
        assert pending[0]["seq"] == keep.seq

    def test_restore_requires_empty_kernel(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        with pytest.raises(SimulationError):
            sim.restore_state({"now": 0.0, "next_seq": 5, "fired": 0})

    def test_counters_round_trip(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda s: None)
        sim.run(until=2.0)
        snap = sim.snapshot_state()

        fresh = Simulator()
        fresh.restore_state(snap)
        assert fresh.now == sim.now
        assert fresh.fired_count == sim.fired_count
        assert fresh.snapshot_state()["next_seq"] == snap["next_seq"]

    def test_restore_event_preserves_original_seq(self):
        sim = Simulator()
        first = sim.schedule(5.0, lambda s: None, label="first")
        second = sim.schedule(5.0, lambda s: None, label="second")
        snap = sim.snapshot_state()

        fired = []
        fresh = Simulator()
        fresh.restore_state(snap)
        # Re-register in REVERSE order: original seqs must still decide
        # the same-instant firing order.
        for ref in reversed(snap["pending"]):
            fresh.restore_event(ref["t"],
                                lambda s, label=ref["label"]: fired.append(label),
                                seq=ref["seq"], label=ref["label"])
        fresh.run(until=10.0)
        assert fired == ["first", "second"]
        assert (first.seq, second.seq) == (snap["pending"][0]["seq"],
                                           snap["pending"][1]["seq"])

    def test_restore_event_rejects_future_seq_and_past_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.restore_event(5.0, lambda s: None, seq=99)
        with pytest.raises(SimulationError):
            sim.restore_event(1.0, lambda s: None)

    def test_advance_to_moves_clock_without_firing(self):
        sim = Simulator()
        sim.schedule(10.0, lambda s: None)
        sim.advance_to(4.0)
        assert sim.now == 4.0
        assert sim.fired_count == 0
        with pytest.raises(SimulationError):
            sim.advance_to(3.0)          # backwards
        with pytest.raises(SimulationError):
            sim.advance_to(11.0)         # past the pending event

    def test_event_ref_helpers(self):
        sim = Simulator()
        event = sim.schedule(3.0, lambda s: None, priority=2, label="tick")
        ref = event_ref(event)
        assert ref == {"t": 3.0, "priority": 2, "seq": event.seq,
                       "label": "tick"}
        sim.cancel(event)
        assert event_ref(event) is None
        assert restore_event_ref(sim, None, lambda s: None) is None


# --------------------------------------------------------------------------- #
# RNG streams
# --------------------------------------------------------------------------- #
class TestRngSnapshot:
    def test_streams_resume_identical_sequences(self):
        registry = RngRegistry(seed=7)
        a, b = registry.stream("a"), registry.stream("b")
        [a.random() for _ in range(10)]
        [b.random() for _ in range(3)]
        snap = json.loads(json.dumps(registry.snapshot_state()))
        expected = [a.random() for _ in range(5)], [b.random() for _ in range(5)]

        fresh = RngRegistry(seed=7)
        fresh.stream("a"), fresh.stream("b")
        fresh.restore_state(snap)
        got = ([fresh.stream("a").random() for _ in range(5)],
               [fresh.stream("b").random() for _ in range(5)])
        assert got == expected


# --------------------------------------------------------------------------- #
# devices / fleet
# --------------------------------------------------------------------------- #
class TestFleetSnapshot:
    def _fleet_pair(self):
        from repro.core.system import IoTSystem

        return (IoTSystem.with_edge_cloud_landscape(2, 2, seed=3),
                IoTSystem.with_edge_cloud_landscape(2, 2, seed=3))

    def test_crash_state_round_trips(self):
        sys_a, sys_b = self._fleet_pair()
        victim = sorted(sys_a.fleet.device_ids)[0]
        sys_a.fleet.crash(victim)
        snap = json.loads(json.dumps(sys_a.fleet.snapshot_state()))

        sys_b.fleet.restore_state(snap)
        assert not sys_b.fleet.get(victim).up
        assert not sys_b.network.node_up(victim)
        assert (state_digest(sys_b.fleet.snapshot_state())
                == state_digest(snap))

    def test_service_states_round_trip(self):
        sys_a, sys_b = self._fleet_pair()
        device = sys_a.fleet.get(sorted(sys_a.fleet.device_ids)[0])
        if device.stack.services:
            device.stack.mark_failed(device.stack.services[0].name)
        snap = json.loads(json.dumps(sys_a.fleet.snapshot_state()))
        sys_b.fleet.restore_state(snap)
        assert (state_digest(sys_b.fleet.snapshot_state())
                == state_digest(snap))


# --------------------------------------------------------------------------- #
# journal
# --------------------------------------------------------------------------- #
class TestJournal:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        writer = JournalWriter(path, scenario={"name": "t", "seed": 1},
                               digest_every=2)
        writer.append_event(1, 0.5, "a")
        writer.append_event(2, 1.0, "b")
        writer.append_digest(2, 1.0, "deadbeef")
        writer.close(2, 1.0, "deadbeef")

        journal = read_journal(path)
        assert journal.header["version"] == JOURNAL_VERSION
        assert journal.scenario == {"name": "t", "seed": 1}
        assert journal.digest_every == 2
        assert journal.complete
        assert [e["label"] for e in journal.events()] == ["a", "b"]
        assert len(journal.digests()) == 2   # digest + end

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        writer = JournalWriter(path, scenario={"name": "t"})
        writer.append_event(1, 0.5, "a")
        writer.abandon()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "event", "i": 2, "t"')   # mid-write crash
        journal = read_journal(path)
        assert len(journal.events()) == 1
        assert not journal.complete

    def test_headerless_journal_is_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"type": "event", "i": 1, "t": 0.5, "label": "a"}\n')
        with pytest.raises(JournalError):
            read_journal(path)

    def test_truncate_drops_past_barrier_and_end(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        writer = JournalWriter(path, scenario={"name": "t"})
        for i in range(1, 6):
            writer.append_event(i, float(i), f"e{i}")
        writer.close(5, 5.0, "final")

        kept = truncate(path, fired=3)
        assert kept == 3
        journal = read_journal(path)
        assert [e["i"] for e in journal.events()] == [1, 2, 3]
        assert not journal.complete

        # A resumed writer continues where the truncated journal ends.
        resumed = JournalWriter(path, append=True)
        resumed.append_event(4, 4.0, "e4-again")
        resumed.abandon()
        assert [e["label"] for e in read_journal(path).events()] == \
            ["e1", "e2", "e3", "e4-again"]


# --------------------------------------------------------------------------- #
# checkpoint file
# --------------------------------------------------------------------------- #
class TestCheckpointFile:
    def _checkpoint(self):
        return Checkpoint(scenario={"name": "t", "seed": 3, "params": {}},
                          time=45.0, fired=226, digest="abc123",
                          digest_every=25, state={"kernel": {"now": 45.0}})

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        size = self._checkpoint().save(path)
        assert size == os.path.getsize(path) > 0
        loaded = Checkpoint.load(path)
        assert loaded.time == 45.0
        assert loaded.fired == 226
        assert loaded.digest == "abc123"
        assert loaded.state == {"kernel": {"now": 45.0}}
        assert loaded.version == CHECKPOINT_VERSION

    def test_tampered_payload_is_rejected(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        self._checkpoint().save(path)
        document = json.load(open(path))
        document["payload"]["fired"] = 9999
        json.dump(document, open(path, "w"))
        with pytest.raises(CheckpointError, match="integrity"):
            Checkpoint.load(path)

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        checkpoint = self._checkpoint()
        checkpoint.version = 99
        checkpoint.save(path)
        with pytest.raises(CheckpointError, match="version"):
            Checkpoint.load(path)

    def test_non_checkpoint_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"something": "else"}')
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_default_paths_layout(self, tmp_path):
        paths = default_paths(str(tmp_path))
        assert paths["checkpoint"].endswith("checkpoint.json")
        assert paths["journal"].endswith("journal.jsonl")
        assert paths["divergence"].endswith("divergence.json")

"""Property-based tests: CRDT algebraic laws.

State-based CRDTs require merge to be a semilattice join: idempotent,
commutative and associative, with local updates monotone.  Hypothesis
drives random operation sequences on independent replicas and checks the
laws plus eventual convergence under arbitrary merge orders.
"""

from hypothesis import given, settings, strategies as st

from repro.data.crdt import GCounter, GSet, LWWMap, LWWRegister, ORSet, PNCounter


# --------------------------------------------------------------------------- #
# Operation-sequence strategies
# --------------------------------------------------------------------------- #
counter_ops = st.lists(st.tuples(st.sampled_from(["inc", "dec"]),
                                 st.integers(0, 10)), max_size=20)
set_ops = st.lists(st.tuples(st.sampled_from(["add", "remove"]),
                             st.sampled_from("abcde")), max_size=20)
register_ops = st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                                  st.integers(0, 100)), max_size=20)
map_ops = st.lists(st.tuples(st.sampled_from(["set", "del"]),
                             st.sampled_from("xyz"),
                             st.integers(0, 9),
                             st.floats(0, 100, allow_nan=False)), max_size=20)


def apply_counter(counter, ops):
    for op, amount in ops:
        if op == "inc":
            counter.increment(amount)
        elif isinstance(counter, PNCounter):
            counter.decrement(amount)
        else:
            counter.increment(amount)
    return counter


def apply_set(s, ops):
    for op, item in ops:
        if op == "add":
            s.add(item)
        elif isinstance(s, ORSet):
            s.remove(item)
        else:
            s.add(item)
    return s


def apply_register(register, ops):
    for timestamp, value in ops:
        register.set(value, timestamp)
    return register


def apply_map(m, ops):
    for op, key, value, timestamp in ops:
        if op == "set":
            m.set(key, value, timestamp)
        else:
            m.delete(key, timestamp)
    return m


BUILDERS = [
    ("gcounter", lambda rid: GCounter(rid), apply_counter, counter_ops),
    ("pncounter", lambda rid: PNCounter(rid), apply_counter, counter_ops),
    ("gset", lambda rid: GSet(), apply_set, set_ops),
    ("orset", lambda rid: ORSet(rid), apply_set, set_ops),
    ("lww", lambda rid: LWWRegister(rid), apply_register, register_ops),
    ("lwwmap", lambda rid: LWWMap(rid), apply_map, map_ops),
]


def _laws_case(build, apply, ops_a, ops_b, ops_c):
    a = apply(build("ra"), ops_a)
    b = apply(build("rb"), ops_b)
    c = apply(build("rc"), ops_c)

    # Idempotence: a ⊔ a = a
    a_self = a.copy()
    a_self.merge(a.copy())
    assert a_self == a

    # Commutativity: a ⊔ b = b ⊔ a
    ab = a.copy()
    ab.merge(b.copy())
    ba = b.copy()
    ba.merge(a.copy())
    assert ab == ba

    # Associativity: (a ⊔ b) ⊔ c = a ⊔ (b ⊔ c)
    ab_c = ab.copy()
    ab_c.merge(c.copy())
    bc = b.copy()
    bc.merge(c.copy())
    a_bc = a.copy()
    a_bc.merge(bc)
    assert ab_c == a_bc


@settings(max_examples=60, deadline=None)
@given(ops_a=counter_ops, ops_b=counter_ops, ops_c=counter_ops)
def test_gcounter_semilattice_laws(ops_a, ops_b, ops_c):
    _laws_case(lambda r: GCounter(r), apply_counter, ops_a, ops_b, ops_c)


@settings(max_examples=60, deadline=None)
@given(ops_a=counter_ops, ops_b=counter_ops, ops_c=counter_ops)
def test_pncounter_semilattice_laws(ops_a, ops_b, ops_c):
    _laws_case(lambda r: PNCounter(r), apply_counter, ops_a, ops_b, ops_c)


@settings(max_examples=60, deadline=None)
@given(ops_a=set_ops, ops_b=set_ops, ops_c=set_ops)
def test_gset_semilattice_laws(ops_a, ops_b, ops_c):
    _laws_case(lambda r: GSet(), apply_set, ops_a, ops_b, ops_c)


@settings(max_examples=60, deadline=None)
@given(ops_a=set_ops, ops_b=set_ops, ops_c=set_ops)
def test_orset_semilattice_laws(ops_a, ops_b, ops_c):
    _laws_case(lambda r: ORSet(r), apply_set, ops_a, ops_b, ops_c)


@settings(max_examples=60, deadline=None)
@given(ops_a=register_ops, ops_b=register_ops, ops_c=register_ops)
def test_lww_register_semilattice_laws(ops_a, ops_b, ops_c):
    _laws_case(lambda r: LWWRegister(r), apply_register, ops_a, ops_b, ops_c)


@settings(max_examples=60, deadline=None)
@given(ops_a=map_ops, ops_b=map_ops, ops_c=map_ops)
def test_lwwmap_semilattice_laws(ops_a, ops_b, ops_c):
    _laws_case(lambda r: LWWMap(r), apply_map, ops_a, ops_b, ops_c)


# --------------------------------------------------------------------------- #
# Convergence: pairwise merging in any order reaches the same state
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    op_lists=st.lists(counter_ops, min_size=2, max_size=4),
    order_seed=st.integers(0, 1000),
)
def test_counters_converge_regardless_of_merge_order(op_lists, order_seed):
    import random as random_module

    replicas = [apply_counter(PNCounter(f"r{i}"), ops)
                for i, ops in enumerate(op_lists)]
    rng = random_module.Random(order_seed)
    # Full pairwise anti-entropy in a random order, twice over.
    pairs = [(i, j) for i in range(len(replicas)) for j in range(len(replicas))
             if i != j]
    for _ in range(2):
        rng.shuffle(pairs)
        for i, j in pairs:
            replicas[i].merge(replicas[j])
    values = {r.value for r in replicas}
    assert len(values) == 1


@settings(max_examples=40, deadline=None)
@given(op_lists=st.lists(set_ops, min_size=2, max_size=4))
def test_orsets_converge_after_full_exchange(op_lists):
    replicas = [apply_set(ORSet(f"r{i}"), ops) for i, ops in enumerate(op_lists)]
    # Everyone merges everyone (one full round suffices for state CRDTs).
    snapshots = [r.copy() for r in replicas]
    for replica in replicas:
        for snapshot in snapshots:
            replica.merge(snapshot)
    items_views = [r.items for r in replicas]
    assert all(v == items_views[0] for v in items_views)


@settings(max_examples=40, deadline=None)
@given(op_lists=st.lists(map_ops, min_size=2, max_size=4))
def test_lwwmaps_converge_after_full_exchange(op_lists):
    replicas = [apply_map(LWWMap(f"r{i}"), ops) for i, ops in enumerate(op_lists)]
    snapshots = [r.copy() for r in replicas]
    for replica in replicas:
        for snapshot in snapshots:
            replica.merge(snapshot)
    key_views = [{k: r.get(k) for k in r.keys()} for r in replicas]
    assert all(v == key_views[0] for v in key_views)


# --------------------------------------------------------------------------- #
# Type-specific invariants
# --------------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(ops=counter_ops)
def test_gcounter_value_is_sum_of_increments(ops):
    counter = GCounter("r")
    total = 0
    for _op, amount in ops:
        counter.increment(amount)
        total += amount
    assert counter.value == total


@settings(max_examples=60, deadline=None)
@given(ops=set_ops)
def test_gset_never_loses_elements(ops):
    s = GSet()
    added = set()
    for _op, item in ops:
        s.add(item)
        added.add(item)
        assert s.items == added


@settings(max_examples=60, deadline=None)
@given(timestamps=st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                           max_size=20))
def test_lww_register_holds_max_timestamp_value(timestamps):
    register = LWWRegister("r")
    for i, timestamp in enumerate(timestamps):
        register.set(i, timestamp)
    best_index = max(range(len(timestamps)),
                     key=lambda i: (timestamps[i], i))
    assert register.value == best_index

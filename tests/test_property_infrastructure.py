"""Property-based tests on infrastructure invariants: kernel ordering,
metric window algebra, disruption-window merging, the policy lattice, and
checker/DTMC consistency."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.requirements import _ratio_toward
from repro.data.item import DataItem, DataSensitivity
from repro.faults.schedule import merge_windows
from repro.modeling.checker import ModelChecker
from repro.modeling.dtmc import availability_dtmc
from repro.modeling.lts import build_chain_lts
from repro.modeling.properties import Always, Eventually, prop
from repro.simulation.kernel import Simulator
from repro.simulation.metrics import TimeSeries


# --------------------------------------------------------------------------- #
# Kernel: events always fire in non-decreasing time order
# --------------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                       max_size=50))
def test_kernel_fires_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda s: fired.append(s.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0.001, 100, allow_nan=False), min_size=1,
                       max_size=30),
       cutoff=st.floats(0, 100, allow_nan=False))
def test_run_until_is_exact_partition(delays, cutoff):
    """Events split exactly into fired-before and pending-after the cutoff."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda s: fired.append(s.now))
    sim.run(until=cutoff)
    assert all(t <= cutoff for t in fired)
    assert len(fired) == sum(1 for d in delays if d <= cutoff)


# --------------------------------------------------------------------------- #
# Level series: time-weighted mean is within [min, max] and additive
# --------------------------------------------------------------------------- #
level_changes = st.lists(
    st.tuples(st.floats(0, 99, allow_nan=False), st.floats(0, 1, allow_nan=False)),
    min_size=1, max_size=20,
).map(lambda xs: sorted(xs, key=lambda p: p[0]))


@settings(max_examples=60, deadline=None)
@given(changes=level_changes)
def test_time_weighted_mean_bounded_by_extremes(changes):
    series = TimeSeries("lvl", kind="level")
    last_time = -1.0
    for time, value in changes:
        if time <= last_time:
            time = last_time + 1e-6
        series.append(time, value)
        last_time = time
    mean = series.time_weighted_mean(0.0, 100.0)
    if mean is not None:
        values = [v for _, v in series]
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


@settings(max_examples=60, deadline=None)
@given(changes=level_changes, split=st.floats(1, 99, allow_nan=False))
def test_time_weighted_mean_is_additive_over_subwindows(changes, split):
    """mean([a,c)) equals the duration-weighted mix of mean([a,b)), mean([b,c))."""
    series = TimeSeries("lvl", kind="level")
    series.append(0.0, 0.5)   # anchor so the signal is defined everywhere
    last_time = 0.0
    for time, value in changes:
        if time <= last_time:
            time = last_time + 1e-6
        series.append(time, value)
        last_time = time
    total = series.time_weighted_mean(0.0, 100.0)
    left = series.time_weighted_mean(0.0, split)
    right = series.time_weighted_mean(split, 100.0)
    mixed = (left * split + right * (100.0 - split)) / 100.0
    assert math.isclose(total, mixed, rel_tol=1e-6, abs_tol=1e-9)


# --------------------------------------------------------------------------- #
# merge_windows: output is disjoint, sorted, and covers the same points
# --------------------------------------------------------------------------- #
windows_strategy = st.lists(
    st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False))
    .map(lambda p: (min(p), max(p))),
    max_size=15,
)


@settings(max_examples=80, deadline=None)
@given(windows=windows_strategy)
def test_merge_windows_disjoint_and_sorted(windows):
    merged = merge_windows(windows)
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    assert merged == sorted(merged)
    assert all(s < e for s, e in merged)


@settings(max_examples=80, deadline=None)
@given(windows=windows_strategy, point=st.floats(0, 100, allow_nan=False))
def test_merge_windows_preserves_membership(windows, point):
    inside_before = any(s <= point < e for s, e in windows if e > s)
    merged = merge_windows(windows)
    inside_after = any(s <= point < e for s, e in merged)
    assert inside_before == inside_after


# --------------------------------------------------------------------------- #
# Requirements helper: graded ratio stays in [0, 1]
# --------------------------------------------------------------------------- #
@settings(max_examples=80, deadline=None)
@given(achieved=st.floats(-10, 10, allow_nan=False),
       target=st.floats(0, 10, allow_nan=False))
def test_ratio_toward_bounded(achieved, target):
    value = _ratio_toward(achieved, target)
    assert 0.0 <= value <= 1.0


# --------------------------------------------------------------------------- #
# Anonymization: always PUBLIC and subject-free regardless of input
# --------------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(
    sensitivity=st.sampled_from(list(DataSensitivity)),
    subject=st.one_of(st.none(), st.text(min_size=1, max_size=8)),
)
def test_anonymize_always_yields_public_subjectless(sensitivity, subject):
    item = DataItem("k", 1, "dev", "dom", 0.0, sensitivity, subject=subject)
    anonymous = item.anonymize("edge", 1.0)
    assert anonymous.sensitivity == DataSensitivity.PUBLIC
    assert anonymous.subject is None
    assert anonymous.parent_ids == (item.item_id,)


# --------------------------------------------------------------------------- #
# Checker vs brute force on chains; DTMC vs analytic availability
# --------------------------------------------------------------------------- #
@settings(max_examples=30, deadline=None)
@given(length=st.integers(1, 50))
def test_chain_reachability_explores_whole_chain(length):
    checker = ModelChecker(build_chain_lts(length))
    result = checker.check(Eventually(prop("end")))
    assert result.holds == (length > 1) or length == 1 and not result.holds
    missing = checker.check(Eventually(prop("missing")))
    assert not missing.holds
    assert missing.states_explored == length


@settings(max_examples=40, deadline=None)
@given(failure=st.floats(0.01, 0.99, allow_nan=False),
       repair=st.floats(0.01, 0.99, allow_nan=False))
def test_dtmc_stationary_matches_analytic(failure, repair):
    chain, analytic = availability_dtmc(failure, repair)
    pi = chain.stationary_distribution()
    assert math.isclose(pi["up"], analytic, rel_tol=1e-9)
    reach = chain.reachability_probability({"down"})
    assert math.isclose(reach["up"], 1.0, abs_tol=1e-9)
    steps = chain.expected_steps({"down"})
    assert math.isclose(steps["up"], 1.0 / failure, rel_tol=1e-6)

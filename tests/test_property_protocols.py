"""Property-based tests on protocol-level invariants: routing validity,
vector-clock partial order, policy monotonicity, window accounting."""

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.data.causal import VectorClock
from repro.data.item import DataItem, DataSensitivity
from repro.governance.domains import (
    CCPA,
    GDPR,
    AdministrativeDomain,
    DomainRegistry,
    TrustLevel,
)
from repro.governance.policy import PolicyEngine, PrivacyScope
from repro.network.topology import Topology
from repro.streams.operators import StreamTuple, WindowAggregateOperator


# --------------------------------------------------------------------------- #
# Topology: routes are valid paths over up links
# --------------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(
    n_nodes=st.integers(3, 12),
    edge_seed=st.integers(0, 10_000),
    down_fraction=st.floats(0.0, 0.6),
)
def test_routes_are_valid_up_paths(n_nodes, edge_seed, down_fraction):
    rng = random_module.Random(edge_seed)
    topology = Topology(rng=rng)
    nodes = [f"n{i}" for i in range(n_nodes)]
    for node in nodes:
        topology.add_node(node)
    # A random connected-ish graph: a chain plus random chords.
    for a, b in zip(nodes, nodes[1:]):
        topology.add_link(a, b, profile="lan")
    for _ in range(n_nodes):
        a, b = rng.sample(nodes, 2)
        if topology.link_between(a, b) is None:
            topology.add_link(a, b, profile="lan")
    # Randomly down some links.
    for link in topology.links:
        if rng.random() < down_fraction:
            link.set_up(False)
    src, dst = rng.sample(nodes, 2)
    route = topology.route(src, dst)
    if route is None:
        # Really unreachable: src and dst in different components.
        components = topology.components()
        src_component = next(c for c in components if src in c)
        assert dst not in src_component
    else:
        assert route[0] == src and route[-1] == dst
        for a, b in zip(route, route[1:]):
            link = topology.link_between(a, b)
            assert link is not None and link.up


# --------------------------------------------------------------------------- #
# Vector clocks: strict partial order + merge is an upper bound
# --------------------------------------------------------------------------- #
clock_strategy = st.dictionaries(st.sampled_from("abcd"),
                                 st.integers(0, 5), max_size=4)


@settings(max_examples=80, deadline=None)
@given(a=clock_strategy, b=clock_strategy, c=clock_strategy)
def test_happens_before_is_strict_partial_order(a, b, c):
    ca, cb, cc = VectorClock(a), VectorClock(b), VectorClock(c)
    # Irreflexive.
    assert not ca.happens_before(ca)
    # Asymmetric.
    if ca.happens_before(cb):
        assert not cb.happens_before(ca)
    # Transitive.
    if ca.happens_before(cb) and cb.happens_before(cc):
        assert ca.happens_before(cc)
    # Trichotomy-ish: exactly one of <, >, ==, || holds.
    relations = [ca.happens_before(cb), cb.happens_before(ca),
                 ca == cb, ca.concurrent_with(cb)]
    assert sum(relations) == 1


@settings(max_examples=80, deadline=None)
@given(a=clock_strategy, b=clock_strategy)
def test_merge_is_least_upper_bound_ish(a, b):
    ca, cb = VectorClock(a), VectorClock(b)
    merged = ca.copy().merge(cb)
    # Upper bound: neither input is after the merge.
    assert not merged.happens_before(ca)
    assert not merged.happens_before(cb)
    # Pointwise max, exactly.
    for node in set(a) | set(b):
        assert merged.get(node) == max(ca.get(node), cb.get(node))


# --------------------------------------------------------------------------- #
# Policy engine: sensitivity monotonicity
# --------------------------------------------------------------------------- #
def build_engine():
    registry = DomainRegistry()
    registry.add(AdministrativeDomain("src-dom", GDPR, TrustLevel.TRUSTED))
    registry.add(AdministrativeDomain("dst-dom", CCPA, TrustLevel.PARTNER))
    registry.set_mutual_trust("src-dom", "dst-dom", TrustLevel.PARTNER)
    engine = PolicyEngine(
        registry, min_trust=TrustLevel.PARTNER,
        device_domain=lambda d: "src-dom" if d.startswith("s") else "dst-dom",
    )
    engine.add_scope(PrivacyScope("scope", members={"s1"}))
    return engine


@settings(max_examples=60, deadline=None)
@given(
    low=st.sampled_from(list(DataSensitivity)),
    high=st.sampled_from(list(DataSensitivity)),
)
def test_raising_sensitivity_never_unblocks_a_flow(low, high):
    """If a flow is denied at sensitivity L, it is denied at any H >= L
    (all rules are monotone in sensitivity)."""
    if high < low:
        low, high = high, low
    engine = build_engine()
    item_low = DataItem("k", 1, "s1", "src-dom", 0.0, low, subject="x")
    item_high = DataItem("k", 1, "s1", "src-dom", 0.0, high, subject="x")
    decision_low = engine.evaluate(item_low, "s1", "d1")
    decision_high = engine.evaluate(item_high, "s1", "d1")
    if not decision_low.allowed:
        assert not decision_high.allowed


@settings(max_examples=40, deadline=None)
@given(sensitivity=st.sampled_from(list(DataSensitivity)))
def test_intra_device_flow_always_allowed(sensitivity):
    engine = build_engine()
    item = DataItem("k", 1, "s1", "src-dom", 0.0, sensitivity, subject="x")
    assert engine.evaluate(item, "s1", "s1").allowed


# --------------------------------------------------------------------------- #
# Stream windows: every processed tuple lands in exactly one emitted window
# --------------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(
    event_times=st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                         max_size=40).map(sorted),
    window=st.floats(1.0, 20.0, allow_nan=False),
)
def test_window_counts_partition_the_stream(event_times, window):
    op = WindowAggregateOperator.count("cnt", window=window)
    emitted = []
    for t in event_times:
        emitted.extend(op.process(StreamTuple(1.0, t), now=t))
    emitted.extend(op.on_epoch(event_times[-1] + 2 * window))
    assert sum(t.value for t in emitted) == len(event_times)
    # Window boundaries align to multiples of the window length.
    for t in emitted:
        remainder = (t.event_time / window) % 1.0
        assert abs(remainder) < 1e-6 or abs(remainder - 1.0) < 1e-6

"""The repository must not track build artifacts or run outputs.

Committed ``__pycache__`` byte-code or ``trace-out/`` bundles churn
every diff and can shadow real sources; this test (and the matching CI
step) fails the moment one is staged again.
"""

import os
import re
import subprocess

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT_PATTERN = re.compile(
    r"(^|/)__pycache__/|\.pyc$"
    r"|^(trace-out|bench-out|prof-out|checkpoint-out|chaos-out|corpus"
    r"|live-out|shard-out)/")


def _tracked_files():
    try:
        proc = subprocess.run(["git", "ls-files"], cwd=REPO_ROOT,
                              capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if proc.returncode != 0:
        pytest.skip("not a git checkout")
    return proc.stdout.splitlines()


def test_no_run_artifacts_tracked():
    offenders = [path for path in _tracked_files()
                 if ARTIFACT_PATTERN.search(path)]
    assert not offenders, (
        f"run artifacts tracked in git (first 10): {offenders[:10]}; "
        "git rm --cached them -- .gitignore already covers these paths")


def test_gitignore_covers_artifact_paths():
    with open(os.path.join(REPO_ROOT, ".gitignore"), encoding="utf-8") as fh:
        ignored = fh.read()
    for needle in ("__pycache__/", "*.pyc", "trace-out/", "bench-out/",
                   "prof-out/", "checkpoint-out/", "chaos-out/", "corpus/",
                   "live-out/", "shard-out/"):
        assert needle in ignored, f".gitignore lost the {needle!r} entry"

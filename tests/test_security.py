"""Unit and acceptance tests for the security plane (repro.security).

Covers the layers bottom-up: HMAC auth and key rotation, trust scoring,
transport interceptors and quarantine ACLs, attack behaviors, the
compromise faults, the MAPE intrusion-response path, per-source
observability, and the three canonical adversary scenarios (naive fails,
defended holds, resume is byte-identical).
"""

import json

import pytest

from repro.core.system import IoTSystem
from repro.faults.models import AdversarialEnvironmentFault, NodeCompromiseFault
from repro.security.adversary import (
    Adversary,
    DropDelayBehavior,
    FloodBehavior,
    GossipEquivocateBehavior,
    SybilJoinBehavior,
    TamperBehavior,
    VoteEquivocateBehavior,
)
from repro.security.auth import KeyChain, MessageAuthenticator
from repro.security.plane import SecurityPlane
from repro.security.trust import EVIDENCE_PENALTIES, FloodSentry, TrustRegistry


@pytest.fixture
def system():
    return IoTSystem.with_edge_cloud_landscape(3, 1, seed=7)


@pytest.fixture
def plane(system):
    return SecurityPlane(system)


def _deliveries(system, node, kind):
    """Register a recording handler; returns the list of seen payloads."""
    seen = []
    system.network.register(node, kind, lambda m: seen.append(m.payload))
    return seen


class TestKeyChain:
    def test_issue_and_rotate_change_keys(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        first = chain.issue("a")
        assert chain.key_of("a") == first
        rotated = chain.rotate("a")
        assert rotated != first
        assert chain.key_of("a") == rotated

    def test_rotate_all_excludes(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        for node in ("a", "b", "c"):
            chain.issue(node)
        before = chain.key_of("c")
        assert chain.rotate_all(exclude=("c",)) == 2
        assert chain.key_of("c") == before

    def test_revoke_forgets_identity(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        chain.issue("a")
        chain.revoke("a")
        assert chain.key_of("a") is None
        assert not chain.known("a")
        assert chain.rotate("a") is None

    def test_snapshot_round_trip(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        chain.issue("a")
        chain.rotate("a")
        state = chain.snapshot_state()
        other = KeyChain(system.rngs.stream("k2"))
        other.restore_state(state)
        assert other.key_of("a") == chain.key_of("a")


class TestMessageAuthenticator:
    def _message(self, system, payload):
        from repro.network.transport import Message

        return Message(src="edge0", dst="edge1", kind="gossip.push",
                       payload=payload, size_bytes=64, sent_at=0.0)

    def test_sign_then_verify(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        chain.issue("edge0")
        auth = MessageAuthenticator(chain)
        message = self._message(system, {"v": 1})
        auth.signer(message)
        assert message.auth is not None
        assert auth.verify(message)
        assert auth.signed == auth.verified == 1

    def test_tampered_payload_rejected(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        chain.issue("edge0")
        auth = MessageAuthenticator(chain)
        message = self._message(system, {"v": 1})
        auth.signer(message)
        message.payload = {"v": 2}
        assert not auth.verify(message)
        assert auth.rejected == 1

    def test_unsigned_protected_message_rejected(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        chain.issue("edge0")
        auth = MessageAuthenticator(chain)
        assert not auth.verify(self._message(system, {"v": 1}))

    def test_unprotected_kind_passes_unsigned(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        chain.issue("edge0")
        auth = MessageAuthenticator(chain, protected_kinds=("raft.",))
        message = self._message(system, {"v": 1})
        auth.signer(message)
        assert message.auth is None
        assert auth.verify(message)

    def test_rotation_invalidates_old_tags(self, system):
        chain = KeyChain(system.rngs.stream("k"))
        chain.issue("edge0")
        auth = MessageAuthenticator(chain)
        message = self._message(system, {"v": 1})
        auth.signer(message)
        chain.rotate("edge0")
        assert not auth.verify(message)


class TestTrustRegistry:
    def test_evidence_decays_score(self, system):
        trust = TrustRegistry(system)
        score = trust.record("a", "b", "digest-mismatch")
        assert score == pytest.approx(1.0 - EVIDENCE_PENALTIES["digest-mismatch"])
        assert trust.aggregate("b") == pytest.approx(score)

    def test_scores_are_per_observer(self, system):
        trust = TrustRegistry(system)
        trust.record("a", "b", "equivocation")
        assert trust.score("a", "b") < 1.0
        assert trust.score("c", "b") == 1.0
        # Aggregate is the most-alarmed vantage.
        assert trust.aggregate("b") == trust.score("a", "b")

    def test_threshold_latches_and_pushes_fact(self, system):
        class Knowledge:
            facts = {}

        trust = TrustRegistry(system, threshold=0.45)
        trust.attach(Knowledge)
        for _ in range(3):
            trust.record("a", "b", "equivocation")
        assert "b" in trust.flagged
        facts = Knowledge.facts["intrusion"]
        assert facts and facts[0]["subject"] == "b"
        # Latched: more evidence does not re-notify.
        trust.record("a", "b", "equivocation")
        assert len(Knowledge.facts["intrusion"]) == 1

    def test_indirect_only_adopts_worse_news(self, system):
        trust = TrustRegistry(system)
        trust.record_indirect("a", "b", 0.2)
        worse = trust.score("a", "b")
        assert worse < 1.0
        trust.record_indirect("a", "b", 0.9)   # slander-laundering attempt
        assert trust.score("a", "b") == worse

    def test_unknown_evidence_kind_rejected(self, system):
        trust = TrustRegistry(system)
        with pytest.raises(KeyError):
            trust.record("a", "b", "not-a-kind")

    def test_snapshot_round_trip(self, system):
        trust = TrustRegistry(system)
        for _ in range(3):
            trust.record("a", "b", "equivocation")
        state = trust.snapshot_state()
        other = TrustRegistry(system)
        other.restore_state(state)
        assert other.flagged == ["b"]
        assert other.score("a", "b") == trust.score("a", "b")
        assert other.evidence_counts == trust.evidence_counts


class TestTransportSecurityHooks:
    def test_interceptors_default_off(self, system):
        """An unwired system's transport has no security hooks installed."""
        assert system.network._interceptors == []
        assert system.network.verifier is None
        assert not system.network.quarantined_nodes

    def test_interceptor_drop_and_delay(self, system):
        seen = _deliveries(system, "edge1", "x")
        times = []
        system.network.register(
            "edge1", "y", lambda m: times.append(system.sim.now))

        def interceptor(message):
            if message.kind == "x":
                return "drop"
            if message.kind == "y":
                return 1.0
            return None

        system.network.add_interceptor(interceptor)
        system.network.send("edge0", "edge1", "x", payload={})
        system.network.send("edge0", "edge1", "y", payload={})
        system.sim.run(until=5.0)
        assert seen == []
        assert system.network.stats.dropped_intercepted == 1
        # The extra delay is added on top of the link latency.
        assert times and times[0] > 1.0

    def test_quarantine_drops_both_directions(self, system):
        seen = _deliveries(system, "edge1", "x")
        system.network.quarantine("edge0")
        system.network.send("edge0", "edge1", "x", payload={})
        system.network.send("edge1", "edge0", "x", payload={})
        system.sim.run(until=2.0)
        assert seen == []
        assert system.network.stats.dropped_quarantined == 2

    def test_verifier_rejection_counts_auth_drop(self, system):
        seen = _deliveries(system, "edge1", "x")
        system.network.verifier = lambda message: False
        system.network.send("edge0", "edge1", "x", payload={})
        system.sim.run(until=2.0)
        assert seen == []
        assert system.network.stats.dropped_auth == 1

    def test_per_source_counters(self, system):
        _deliveries(system, "edge1", "x")
        system.network.send("edge0", "edge1", "x", payload={}, size_bytes=100)
        system.network.send("edge0", "edge1", "x", payload={}, size_bytes=50)
        system.network.send("edge2", "edge1", "x", payload={}, size_bytes=10)
        system.sim.run(until=2.0)
        per_source = system.network.stats.per_source
        assert per_source["edge0"] == [2, 150]
        assert per_source["edge2"] == [1, 10]


class TestSecurityPlane:
    def test_registered_in_sim_context(self, system, plane):
        assert system.sim.context["security"] is plane

    def test_auth_end_to_end_tamper_detected(self, system, plane):
        plane.enable_auth(["edge0", "edge1", "edge2"])
        seen = _deliveries(system, "edge1", "gossip.push")
        plane.adversary.compromise("edge0", [TamperBehavior()])
        system.network.send("edge0", "edge1", "gossip.push", payload={"v": 1})
        system.sim.run(until=2.0)
        assert seen == []
        assert system.network.stats.dropped_auth == 1
        assert plane.trust.score("edge1", "edge0") < 1.0
        assert plane.trust.evidence_counts["digest-mismatch"] == 1

    def test_honest_traffic_passes_auth(self, system, plane):
        plane.enable_auth(["edge0", "edge1", "edge2"])
        seen = _deliveries(system, "edge1", "gossip.push")
        system.network.send("edge0", "edge1", "gossip.push", payload={"v": 1})
        system.sim.run(until=2.0)
        assert seen == [{"v": 1}]

    def test_quarantine_node_is_idempotent(self, system, plane):
        assert plane.quarantine_node("edge0")
        assert not plane.quarantine_node("edge0")
        assert plane.quarantined == ["edge0"]
        assert system.network.is_quarantined("edge0")

    def test_rotate_keys_revokes_compromised(self, system, plane):
        plane.enable_auth(["edge0", "edge1", "edge2"])
        rotated = plane.rotate_keys(revoke="edge0")
        assert rotated == 2
        assert not plane.keychain.known("edge0")
        assert plane.key_rotations == 1

    def test_kpis_shape(self, system, plane):
        plane.enable_auth(["edge0", "edge1"])
        plane.adversary.compromise("edge0", [TamperBehavior()])
        kpis = plane.kpis(10.0)
        assert kpis["compromised"] == ["edge0"]
        for key in ("quarantined", "distrusted", "trust", "key_rotations",
                    "dropped_auth", "dropped_quarantined"):
            assert key in kpis

    def test_snapshot_restores_quarantine_acl(self, system, plane):
        plane.enable_auth(["edge0", "edge1"])
        plane.quarantine_node("edge0")
        plane.trust.record("edge1", "edge0", "digest-mismatch")
        state = json.loads(json.dumps(plane.snapshot_state()))

        fresh_system = IoTSystem.with_edge_cloud_landscape(3, 1, seed=7)
        fresh = SecurityPlane(fresh_system)
        fresh.enable_auth(["edge0", "edge1"])
        fresh.restore_state(state)
        assert fresh.quarantined == ["edge0"]
        assert fresh_system.network.is_quarantined("edge0")
        assert fresh.keychain.key_of("edge1") == plane.keychain.key_of("edge1")
        assert fresh.trust.score("edge1", "edge0") == \
            plane.trust.score("edge1", "edge0")


class TestAttackBehaviors:
    def test_tamper_replaces_payload(self, system, plane):
        _deliveries(system, "edge1", "x")
        seen = _deliveries(system, "edge1", "x")
        plane.adversary.compromise("edge0", [TamperBehavior()])
        system.network.send("edge0", "edge1", "x", payload={"v": 1})
        system.sim.run(until=2.0)
        assert seen == [{"tampered-by": "edge0", "original-kind": "x"}]

    def test_equivocator_tells_each_peer_a_newer_story(self, system, plane):
        seen1 = _deliveries(system, "edge1", "gossip.push")
        seen2 = _deliveries(system, "edge2", "gossip.push")
        behavior = GossipEquivocateBehavior(key="cfg")
        plane.adversary.compromise("edge0", [behavior])
        payload = {"from": "edge0", "state": [("cfg", "honest", 1, "edge0")]}
        system.network.send("edge0", "edge1", "gossip.push", payload=payload)
        system.network.send("edge0", "edge2", "gossip.push", payload=payload)
        system.sim.run(until=2.0)
        (k1, v1, ver1, owner1), = seen1[0]["state"]
        (k2, v2, ver2, owner2), = seen2[0]["state"]
        assert k1 == k2 == "cfg" and owner1 == owner2 == "edge0"
        assert v1 != v2            # different story per destination
        assert ver1 != ver2        # each rewrite dominates the last
        assert behavior.tampered == 2

    def test_payload_replacement_not_mutation(self, system, plane):
        """Honest copies of a shared payload must survive tampering."""
        _deliveries(system, "edge1", "gossip.push")
        plane.adversary.compromise("edge0", [GossipEquivocateBehavior("cfg")])
        shared = {"from": "edge0", "state": [("cfg", "honest", 1, "edge0")]}
        system.network.send("edge0", "edge1", "gossip.push", payload=shared)
        system.sim.run(until=2.0)
        assert shared["state"] == [("cfg", "honest", 1, "edge0")]

    def test_vote_equivocator_grants_everything(self, system, plane):
        seen = _deliveries(system, "edge1", "raft.vote_reply")
        plane.adversary.compromise("edge0", [VoteEquivocateBehavior()])
        system.network.send("edge0", "edge1", "raft.vote_reply",
                            payload={"term": 3, "granted": False})
        system.sim.run(until=2.0)
        assert seen == [{"term": 3, "granted": True}]

    def test_drop_delay_behavior(self, system, plane):
        seen = _deliveries(system, "edge1", "x")
        plane.adversary.compromise(
            "edge0", [DropDelayBehavior(kinds=("x",), drop_probability=1.0)])
        system.network.send("edge0", "edge1", "x", payload={})
        system.sim.run(until=2.0)
        assert seen == []
        assert system.network.stats.dropped_intercepted == 1

    def test_flood_generates_requests_until_released(self, system, plane):
        from repro.traffic.request import REQUEST_KIND

        seen = _deliveries(system, "edge1", REQUEST_KIND)
        plane.adversary.compromise(
            "edge0", [FloodBehavior(target="edge1", rate=100.0)])
        system.sim.run(until=2.0)
        flooded = len(seen)
        assert flooded == pytest.approx(200, abs=30)
        plane.adversary.release("edge0")
        system.sim.run(until=4.0)
        assert len(seen) - flooded <= 12   # only in-flight stragglers

    def test_sybil_behavior_forges_swim_pings(self, system, plane):
        seen = _deliveries(system, "edge1", "swim.ping")
        plane.adversary.compromise(
            "edge0", [SybilJoinBehavior(targets=["edge1"], per_tick=2)])
        system.sim.run(until=2.1)
        assert seen
        names = {name for m in seen for name, _, _ in m["updates"]}
        assert all(name.startswith("sybil-edge0-") for name in names)
        assert all(m["seq"] < 0 for m in seen)

    def test_adversary_release_and_reporting(self, system, plane):
        plane.adversary.compromise("edge0", [TamperBehavior()])
        assert plane.adversary.compromised_nodes == ["edge0"]
        plane.adversary.release("edge0")
        assert plane.adversary.compromised_nodes == []
        assert not plane.adversary.is_compromised("edge0")


class TestCompromiseFaults:
    def test_fault_requires_security_plane(self, system):
        system.injector.inject_at(1.0, NodeCompromiseFault(
            name="c", device_id="edge0", behaviors=[TamperBehavior()]))
        with pytest.raises(RuntimeError, match="SecurityPlane"):
            system.run(until=2.0)

    def test_fault_compromises_and_reverts(self, system, plane):
        fault = NodeCompromiseFault(
            name="c", device_id="edge0", behaviors=[TamperBehavior()],
            duration=2.0)
        system.injector.inject_at(1.0, fault)
        system.run(until=2.0)
        assert plane.adversary.is_compromised("edge0")
        assert not system.fleet.get("edge0").environment_trusted
        system.run(until=4.0)
        assert not plane.adversary.is_compromised("edge0")
        assert system.fleet.get("edge0").environment_trusted

    def test_adversarial_environment_registers_with_plane(self, system, plane):
        system.injector.inject_at(1.0, AdversarialEnvironmentFault(
            name="e", device_id="edge0"))
        system.run(until=2.0)
        assert plane.trust.registered == {"edge0": "environment-untrusted"}
        score = plane.trust.score("environment", "edge0")
        assert score == pytest.approx(
            1.0 - EVIDENCE_PENALTIES["environment-untrusted"])
        # Reduced standing, but not distrusted outright.
        assert "edge0" not in plane.trust.flagged

    def test_adversarial_environment_without_plane_still_works(self, system):
        system.injector.inject_at(1.0, AdversarialEnvironmentFault(
            name="e", device_id="edge0"))
        system.run(until=2.0)
        assert not system.fleet.get("edge0").environment_trusted


class TestFloodSentry:
    def test_flags_only_sources_over_threshold(self, system, plane):
        _deliveries(system, "edge1", "x")

        def chatter(sim):
            for _ in range(20):
                system.network.send("edge0", "edge1", "x", payload={})
            system.network.send("edge2", "edge1", "x", payload={})
            sim.schedule(0.1, chatter)

        system.sim.schedule(0.1, chatter)
        sentry = FloodSentry(system, plane.trust, observer="edge1",
                             period=0.5, rate_threshold=100.0)
        sentry.start()
        system.sim.run(until=3.0)
        assert plane.trust.score("edge1", "edge0") < plane.trust.threshold
        assert plane.trust.score("edge1", "edge2") == 1.0
        assert "edge0" in plane.trust.flagged


class TestIntrusionResponsePath:
    def test_trust_collapse_drives_quarantine(self, system, plane):
        """Evidence -> intrusion fact -> analyzer -> planner -> executor."""
        from repro.adaptation import (
            Executor,
            IntrusionAnalyzer,
            MapeLoop,
            RuleBasedPlanner,
        )

        loop = MapeLoop(system.sim, system.network, system.fleet, "edge0",
                        ["edge0", "edge1", "edge2"],
                        analyzers=[IntrusionAnalyzer()],
                        planner=RuleBasedPlanner(),
                        executor=Executor(system.sim, system.network,
                                          system.fleet, "edge0",
                                          system.rngs.stream("exec"),
                                          trace=system.trace),
                        period=1.0, metrics=system.metrics,
                        trace=system.trace)
        plane.trust.attach(loop.knowledge)
        loop.start()
        for _ in range(3):
            plane.trust.record("edge1", "edge2", "equivocation")
        system.run(until=3.0)
        assert plane.quarantined == ["edge2"]
        assert system.network.is_quarantined("edge2")
        assert plane.key_rotations == 1


class TestSecurityObservability:
    def test_kpi_report_carries_security_section(self, system, plane):
        plane.enable_auth(["edge0", "edge1"])
        plane.quarantine_node("edge2")
        report = system.kpi_report()
        assert report.security is not None
        assert report.security["quarantined"] == ["edge2"]
        assert "security" in report.to_dict()

    def test_kpi_report_without_plane_has_no_security(self):
        fresh = IoTSystem.with_edge_cloud_landscape(2, 1, seed=3)
        report = fresh.kpi_report()
        assert report.security is None

    def test_prometheus_per_source_counters(self, system):
        from repro.observability.export import prometheus_text

        _deliveries(system, "edge1", "x")
        system.network.send("edge0", "edge1", "x", payload={}, size_bytes=64)
        system.sim.run(until=2.0)
        text = prometheus_text(system.metrics,
                               per_source=system.network.stats.per_source)
        assert 'repro_network_source_messages_total{src="edge0"} 1' in text
        assert 'repro_network_source_bytes_total{src="edge0"} 64' in text

    def test_html_report_renders_security_and_sources(self, system, plane):
        from repro.observability.export import render_html_report

        plane.quarantine_node("edge2")
        _deliveries(system, "edge1", "x")
        system.network.send("edge0", "edge1", "x", payload={}, size_bytes=64)
        system.sim.run(until=2.0)
        html = render_html_report(
            "t", system.kpi_report(),
            per_source=system.network.stats.per_source)
        assert "Messages by source" in html
        assert "Security" in html
        assert "edge2" in html

    def test_trust_time_series_recorded(self, system, plane):
        plane.trust.record("edge0", "edge1", "equivocation")
        series = system.metrics.series("security.trust.edge1")
        assert len(series) == 1


class TestScenarioGates:
    """The naive variant must demonstrably fail; the defended one holds."""

    def test_byzantine_gossip_gate(self):
        from repro.security.scenarios import run_byzantine_gossip

        clean = run_byzantine_gossip("clean")
        naive = run_byzantine_gossip("naive")
        defended = run_byzantine_gossip("defended")
        assert clean["converged"]
        assert not naive["converged"]
        assert len(naive["honest_values"]) > 1      # split-brain
        assert defended["converged"]
        assert defended["converged_at"] <= 2.0 * clean["converged_at"]
        assert naive["attacker"] in defended["quarantined"]
        assert defended["security"]["dropped_auth"] > 0

    def test_raft_equivocation_gate(self):
        from repro.security.scenarios import run_raft_equivocation

        naive = run_raft_equivocation("naive")
        defended = run_raft_equivocation("defended")
        assert naive["safety_violated"]
        assert naive["double_wins"]
        assert not defended["safety_violated"]
        assert defended["leader_elected"]
        assert set(defended["quarantined"]) == set(defended["attackers"])

    def test_sybil_flood_gate(self):
        from repro.security.scenarios import run_sybil_flood

        clean = run_sybil_flood("clean")
        naive = run_sybil_flood("naive")
        defended = run_sybil_flood("defended")
        assert naive["goodput"] < 0.5 * clean["goodput"]
        assert naive["sybil_count"] > 0
        assert defended["goodput"] >= 0.9 * clean["goodput"]
        assert defended["sybil_count"] == 0
        assert naive["attacker"] in defended["quarantined"]

    def test_unknown_variant_rejected(self):
        from repro.security.scenarios import (
            prepare_byzantine_gossip,
            prepare_raft_equivocation,
            prepare_sybil_flood,
        )

        for prepare in (prepare_byzantine_gossip, prepare_raft_equivocation,
                        prepare_sybil_flood):
            with pytest.raises(ValueError):
                prepare(variant="bogus")


class TestScenarioResume:
    @pytest.mark.parametrize("scenario,at", [
        ("security-byzantine-gossip", 6.0),
        ("security-raft-equivocation", 4.0),
        ("security-sybil-flood", 8.0),
    ])
    def test_resume_is_byte_identical(self, tmp_path, scenario, at):
        from repro.persistence import (
            ScenarioSpec,
            resume_run,
            run_scenario,
            run_to_checkpoint,
        )

        spec = ScenarioSpec(name=scenario)
        reference = run_scenario(
            spec, journal_path=str(tmp_path / "ref.jsonl"))
        run_to_checkpoint(spec, str(tmp_path / "i"), at=at)
        resumed = resume_run(directory=str(tmp_path / "i"))
        assert resumed.final_digest == reference.final_digest
        with open(tmp_path / "ref.jsonl") as fh_a, \
                open(resumed.journal_path) as fh_b:
            assert fh_b.read() == fh_a.read()

    def test_security_scenarios_registered(self):
        from repro.persistence import scenario_names

        names = scenario_names()
        for expected in ("security-byzantine-gossip",
                         "security-raft-equivocation",
                         "security-sybil-flood"):
            assert expected in names


class TestCli:
    def test_security_verb_gates_pass(self, capsys):
        from repro.cli import main

        assert main(["security", "raft-equivocation", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0
        titles = [t["title"] for t in payload["tables"]]
        assert any("raft equivocation" in t for t in titles)

    def test_security_verb_rejects_foreign_scenario(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["security", "overload"])

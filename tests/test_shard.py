"""Sharded federation kernel: mailboxes, lookahead, identity, recovery.

The contract under test (ISSUE: ``repro.shard``): a federated scenario
partitioned across K shard processes must produce results that are a
pure function of the scenario spec — independent of the shard count's
*layout* effects (worker placement, mailbox batching), byte-identical
to the unsharded run at K=1, crash-resumable to the same federation
digest, and replay-verifiable shard by shard.
"""

import json
import os

import pytest

from repro.persistence import CheckpointError, ScenarioSpec, run_scenario
from repro.shard import (
    Envelope,
    ShardedSimulator,
    federation_digest,
    lookahead_barriers,
    manifest_path,
    prepare_smart_city_federated,
    shard_paths,
    verify_federation,
)
from repro.shard.gateway import canonical_payload, federation_keys, sign_envelope
from repro.sweep import _pool

#: Tiny federation: fast enough for CI, still crossing every window
#: boundary (exchange period = 2 lookahead windows) and — with horizon
#: beyond t=3.0 — delivering personal (k%4==0) envelopes so the
#: residency-governance and payload-canonicalization paths run.  Four
#: domains cycle GDPR/EEA/CCPA/GDPR, so dom3 (GDPR) sends personal
#: payloads to dom2 (CCPA): the disallowed-residency pair.
TINY = dict(domains=4, devices_per_domain=50, sites_per_domain=1,
            gateways_per_site=1, horizon=4.5, max_event_rate=30.0)


def _tiny_spec(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return ScenarioSpec("smart-city-federated", seed=7, params=params)


def _read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


# --------------------------------------------------------------------------- #
# Envelopes
# --------------------------------------------------------------------------- #
class TestEnvelope:
    def test_roundtrip_through_sorted_json(self):
        env = Envelope(
            src="dom0:cloud", dst="dom1:cloud", kind="fed.telemetry",
            payload={"k": 4, "origin": "dom0", "_personal": True},
            size_bytes=512, src_domain="dom0", dst_domain="dom1",
            sent_at=3.0, arrival=3.375, seq=11, auth="ab" * 8,
            personal=True)
        wire = json.dumps(env.to_dict(), sort_keys=True)
        back = Envelope.from_dict(json.loads(wire))
        assert back == env
        assert back.sort_key == env.sort_key == (3.375, "dom0", 11)

    def test_auth_covers_payload(self):
        keys = federation_keys(7, ["dom0", "dom1"])
        env = Envelope(
            src="dom0:cloud", dst="dom1:cloud", kind="fed.telemetry",
            payload=canonical_payload({"k": 1, "origin": "dom0"}),
            size_bytes=512, src_domain="dom0", dst_domain="dom1",
            sent_at=0.75, arrival=1.125, seq=0)
        tag = sign_envelope(env.body_tuple(), keys["dom0"])
        tampered = Envelope.from_dict(
            {**env.to_dict(), "payload": {"k": 2, "origin": "dom0"}})
        assert sign_envelope(tampered.body_tuple(), keys["dom0"]) != tag
        # Wrong key (another domain impersonating dom0) also fails.
        assert sign_envelope(env.body_tuple(), keys["dom1"]) != tag

    def test_canonical_payload_is_insertion_order_independent(self):
        a = {"k": 4, "origin": "dom0"}
        a["_personal"] = True
        b = {"_personal": True, "origin": "dom0", "k": 4}
        assert repr(canonical_payload(a)) == repr(canonical_payload(b))
        # JSON round-trip (the mailbox file) is a fixed point.
        wired = json.loads(json.dumps(canonical_payload(a), sort_keys=True))
        assert repr(wired) == repr(canonical_payload(a))


# --------------------------------------------------------------------------- #
# Lookahead windows
# --------------------------------------------------------------------------- #
class TestLookaheadBarriers:
    def test_exact_multiple(self):
        barriers = lookahead_barriers(0.375, 3.0)
        assert barriers == [0.375 * j for j in range(1, 9)]
        assert barriers[-1] == 3.0

    def test_partial_final_window(self):
        barriers = lookahead_barriers(0.375, 1.0)
        assert barriers[:2] == [0.375, 0.75]
        assert barriers[-1] == 1.0
        assert len(barriers) == 3

    def test_horizon_shorter_than_window(self):
        assert lookahead_barriers(0.375, 0.2) == [0.2]

    def test_barriers_strictly_increase_to_horizon(self):
        barriers = lookahead_barriers(0.3, 10.0)
        assert all(b < a for b, a in zip(barriers, barriers[1:]))
        assert barriers[-1] == 10.0


# --------------------------------------------------------------------------- #
# Delivery ordering
# --------------------------------------------------------------------------- #
class TestDeliveryOrder:
    def test_cross_shard_pairs_deliver_in_send_order(self, tmp_path):
        """Per (src-domain, dst) pair, mailbox order == send order.

        Constant pair latency + monotone send times + per-source-domain
        sequence numbers make ``sort_key`` order equal send order for
        every pair; the recorded inbox files are the actual injected
        stream, so checking them checks what the kernel saw.
        """
        out = str(tmp_path / "fed")
        ShardedSimulator(_tiny_spec(), shards=2, workers=1,
                         out_dir=out).run()
        for shard in range(2):
            with open(shard_paths(out, shard)["inbox"],
                      encoding="utf-8") as fh:
                records = [json.loads(line) for line in fh]
            envelopes = [env for record in records
                         if record.get("type") == "inbox"
                         for env in record["envelopes"]]
            assert envelopes, "federation exchanged no cross-shard traffic"
            pairs = {}
            for env in envelopes:
                pairs.setdefault((env["src_domain"], env["dst"]),
                                 []).append(env)
            for pair, stream in pairs.items():
                seqs = [env["seq"] for env in stream]
                arrivals = [env["arrival"] for env in stream]
                assert seqs == sorted(seqs), pair
                assert arrivals == sorted(arrivals), pair

    def test_exchanges_land_exactly_on_barriers(self):
        """The scenario's defaults pin sends/arrivals to window edges."""
        prepared = prepare_smart_city_federated(7, dict(TINY))
        lookahead = prepared.aux["lookahead"]
        assert lookahead == 0.375  # binary-exact: 0.25 + 0.125
        # Exchange period is exactly two windows; pair latency 0.375 puts
        # offset-1 arrivals exactly on the next barrier.
        assert 0.75 == 2 * lookahead
        gateway = prepared.aux["federation"]
        assert gateway.pair_latency("dom0", "dom1") == lookahead


# --------------------------------------------------------------------------- #
# Identity and invariance
# --------------------------------------------------------------------------- #
class TestShardIdentity:
    def test_k1_is_byte_identical_to_unsharded(self, tmp_path):
        spec = _tiny_spec()
        ref_journal = str(tmp_path / "ref" / "journal.jsonl")
        os.makedirs(str(tmp_path / "ref"))
        reference = run_scenario(spec, journal_path=ref_journal)

        out = str(tmp_path / "k1")
        result = ShardedSimulator(spec, shards=1, out_dir=out).run()
        assert result.complete
        assert result.shard_stats[0].digest == reference.final_digest
        assert (_read_bytes(shard_paths(out, 0)["journal"])
                == _read_bytes(ref_journal))

    def test_k2_digest_is_stable_across_workers(self, tmp_path):
        spec = _tiny_spec()
        digests = []
        for workers in (1, 2):
            out = str(tmp_path / f"w{workers}")
            result = ShardedSimulator(spec, shards=2, workers=workers,
                                      out_dir=out).run()
            assert result.complete
            digests.append(result.federation_digest)
        assert digests[0] == digests[1]

    def test_governance_counters_fire_cross_shard(self, tmp_path):
        """Policy and residency drops happen identically when sharded."""
        out = str(tmp_path / "fed")
        result = ShardedSimulator(_tiny_spec(), shards=2, workers=1,
                                  out_dir=out).run()
        merged = {}
        for stats in result.shard_stats:
            for name, value in stats.counters.items():
                merged[name] = merged.get(name, 0) + value
        assert merged["shard.fed.sent"] > 0
        assert merged["shard.fed.delivered"] > 0
        # dom0 distrusts dom1 -> policy drops every run; GDPR->personal
        # flows past t=3.0 -> at least one residency drop at horizon 4.5.
        assert merged["shard.fed.dropped_policy"] > 0
        assert merged["shard.fed.dropped_residency"] > 0
        assert "shard.fed.dropped_auth" not in merged

    def test_federation_digest_chains_shard_digests(self, tmp_path):
        out = str(tmp_path / "fed")
        result = ShardedSimulator(_tiny_spec(), shards=2, workers=1,
                                  out_dir=out).run()
        expected = federation_digest(
            result.spec.to_dict(), 2,
            [stats.digest for stats in result.shard_stats])
        assert result.federation_digest == expected
        with open(manifest_path(out), encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert manifest["federation_digest"] == expected
        assert manifest["complete"] is True


# --------------------------------------------------------------------------- #
# Crash recovery and replay verification
# --------------------------------------------------------------------------- #
class TestCrashResume:
    def test_killed_run_resumes_to_identical_federation(self, tmp_path):
        spec = _tiny_spec()
        ref_out = str(tmp_path / "ref")
        reference = ShardedSimulator(spec, shards=2, workers=1,
                                     out_dir=ref_out,
                                     checkpoint_every=2).run()

        out = str(tmp_path / "killed")
        killed = ShardedSimulator(spec, shards=2, workers=1, out_dir=out,
                                  checkpoint_every=2,
                                  stop_after_window=5).run()
        assert not killed.complete
        assert killed.federation_digest is None

        resumed = ShardedSimulator.resume(out)
        assert resumed.complete
        assert resumed.resumed_from_window == 4
        assert resumed.federation_digest == reference.federation_digest
        for shard in range(2):
            assert (_read_bytes(shard_paths(out, shard)["journal"])
                    == _read_bytes(shard_paths(ref_out, shard)["journal"]))
            assert (_read_bytes(shard_paths(out, shard)["inbox"])
                    == _read_bytes(shard_paths(ref_out, shard)["inbox"]))

    def test_resume_refuses_completed_runs(self, tmp_path):
        out = str(tmp_path / "fed")
        ShardedSimulator(_tiny_spec(), shards=2, workers=1,
                         out_dir=out).run()
        with pytest.raises(CheckpointError):
            ShardedSimulator.resume(out)

    def test_verify_federation_matches(self, tmp_path):
        out = str(tmp_path / "fed")
        result = ShardedSimulator(_tiny_spec(), shards=2, workers=1,
                                  out_dir=out).run()
        report = verify_federation(out)
        assert report["ok"]
        assert report["shards"] == 2
        assert report["federation_digest"] == result.federation_digest
        assert all(r["ok"] for r in report["reports"])

    def test_verify_federation_flags_tampered_journal(self, tmp_path):
        out = str(tmp_path / "fed")
        ShardedSimulator(_tiny_spec(), shards=2, workers=1,
                         out_dir=out).run()
        journal = shard_paths(out, 1)["journal"]
        with open(journal, encoding="utf-8") as fh:
            lines = fh.readlines()
        record = json.loads(lines[10])
        assert record["type"] == "event"
        record["t"] += 0.5
        lines[10] = json.dumps(record, sort_keys=True,
                               separators=(",", ":")) + "\n"
        with open(journal, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        report = verify_federation(out)
        assert not report["ok"]
        assert not report["reports"][1]["ok"]
        assert report["reports"][0]["ok"]


# --------------------------------------------------------------------------- #
# Worker-count validation (shared _pool contract)
# --------------------------------------------------------------------------- #
class TestWorkerValidation:
    @pytest.mark.parametrize("workers", [0, -1])
    def test_pool_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            _pool(workers)

    def test_pool_serial_is_none(self):
        assert _pool(1) is None

    @pytest.mark.parametrize("workers", [0, -2])
    def test_sharded_simulator_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ShardedSimulator(_tiny_spec(), shards=2, workers=workers)

    def test_sharded_simulator_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ShardedSimulator(_tiny_spec(), shards=0)

    def test_run_sweep_rejects_nonpositive_workers(self):
        from repro.sweep import run_sweep

        with pytest.raises(ValueError, match="workers must be >= 1"):
            run_sweep(lambda x, seed: float(x), grid={"x": [1]},
                      seeds=[0], workers=0)


# --------------------------------------------------------------------------- #
# Observability surfaces
# --------------------------------------------------------------------------- #
class TestShardObservability:
    def test_prometheus_families_and_html_table(self, tmp_path):
        from repro.observability.export import (
            prometheus_text,
            render_html_report,
        )
        from repro.simulation.metrics import MetricsRecorder

        out = str(tmp_path / "fed")
        result = ShardedSimulator(_tiny_spec(), shards=2, workers=1,
                                  out_dir=out).run()
        summary = result.report_summary()

        text = prometheus_text(MetricsRecorder(), shards=summary)
        assert '# TYPE repro_shard_events_total counter' in text
        assert 'repro_shard_events_total{shard="0"}' in text
        assert 'repro_shard_events_total{shard="1"}' in text
        assert "repro_shard_windows_total" in text
        assert 'repro_shard_mailbox_depth_peak{shard="0"}' in text
        assert 'repro_shard_sync_wait_seconds_total{shard="1"}' in text

        html = render_html_report("Federation", None, shards=summary)
        assert "<h2>Shards</h2>" in html
        assert result.federation_digest in html
        assert "dom0" in html and "dom1" in html

    def test_report_inputs_passthrough(self, tmp_path):
        from repro.observability.export import report_inputs

        prepared = prepare_smart_city_federated(7, dict(TINY))
        prepared.system.run(until=1.0)
        inputs = report_inputs(prepared.system,
                               shards={"rows": [], "shards": 2})
        assert inputs["shards"] == {"rows": [], "shards": 2}
        assert report_inputs(prepared.system)["shards"] is None


# --------------------------------------------------------------------------- #
# Scenario parameter contract
# --------------------------------------------------------------------------- #
class TestFederatedScenario:
    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            prepare_smart_city_federated(7, {"typo": 1})

    def test_needs_two_domains(self):
        with pytest.raises(ValueError, match="2 domains"):
            prepare_smart_city_federated(7, {"domains": 1})

    def test_shard_partition_registers_all_domains(self):
        params = dict(TINY)
        params.update(domains=4, shard=1, shards=2)
        prepared = prepare_smart_city_federated(7, params)
        assert prepared.aux["local_domains"] == ["dom1", "dom3"]
        # Governance and routing still see the whole federation.
        assert prepared.aux["registry"].names == [
            "dom0", "dom1", "dom2", "dom3"]
        assert prepared.aux["devices_total"] == 4 * TINY["devices_per_domain"]

"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simulation.kernel import Event, SimulationError, Simulator


class TestScheduling:
    def test_runs_events_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(5.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_same_time_ordered_by_priority_then_sequence(self, sim):
        order = []
        sim.schedule(1.0, lambda s: order.append("late"), priority=5)
        sim.schedule(1.0, lambda s: order.append("first"), priority=0)
        sim.schedule(1.0, lambda s: order.append("second"), priority=0)
        sim.run()
        assert order == ["first", "second", "late"]

    def test_schedule_in_past_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda s: None)

    def test_schedule_at_before_now_raises(self, sim):
        sim.schedule(5.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda s: None)

    def test_events_scheduled_during_run_execute(self, sim):
        order = []

        def first(s):
            order.append("first")
            s.schedule(1.0, lambda s2: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda s: fired.append(1))
        assert sim.cancel(event) is True
        sim.run()
        assert fired == []

    def test_cancel_twice_returns_false(self, sim):
        event = sim.schedule(1.0, lambda s: None)
        assert sim.cancel(event)
        assert not sim.cancel(event)

    def test_cancel_fired_event_returns_false(self, sim):
        event = sim.schedule(1.0, lambda s: None)
        sim.run()
        assert not sim.cancel(event)

    def test_pending_count_skips_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda s: None)
        drop = sim.schedule(2.0, lambda s: None)
        sim.cancel(drop)
        assert sim.pending_count == 1

    def test_pending_count_tracks_fires(self, sim):
        sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        assert sim.pending_count == 2
        sim.step()
        assert sim.pending_count == 1
        sim.run()
        assert sim.pending_count == 0

    def test_pending_count_tracks_schedules_during_run(self, sim):
        observed = []

        def first(s):
            s.schedule(1.0, lambda _s: None)
            s.schedule(2.0, lambda _s: None)
            observed.append(s.pending_count)

        sim.schedule(1.0, first)
        sim.step()
        assert observed == [2]

    def test_pending_count_double_cancel_not_double_counted(self, sim):
        sim.schedule(1.0, lambda s: None)
        drop = sim.schedule(2.0, lambda s: None)
        sim.cancel(drop)
        sim.cancel(drop)
        assert sim.pending_count == 1
        sim.run()
        assert sim.pending_count == 0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda s: fired.append("early"))
        sim.schedule(10.0, lambda s: fired.append("late"))
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0

    def test_later_events_survive_for_next_run(self, sim):
        fired = []
        sim.schedule(10.0, lambda s: fired.append("late"))
        sim.run(until=5.0)
        sim.run(until=15.0)
        assert fired == ["late"]

    def test_run_until_advances_clock_when_queue_empty(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda s: (fired.append(1), s.stop()))
        sim.schedule(2.0, lambda s: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_reentrant_run_raises(self, sim):
        def reenter(s):
            with pytest.raises(SimulationError):
                s.run()

        sim.schedule(1.0, reenter)
        sim.run()


class TestStep:
    def test_step_executes_exactly_one_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda s: fired.append("a"))
        sim.schedule(2.0, lambda s: fired.append("b"))
        assert sim.step()
        assert fired == ["a"]

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_event_repr_states(self, sim):
        event = sim.schedule(1.0, lambda s: None, label="x")
        assert event.pending
        sim.run()
        assert event.fired and not event.pending

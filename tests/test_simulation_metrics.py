"""Unit tests for time-series metrics."""

import pytest

from repro.simulation.metrics import MetricsRecorder, TimeSeries


class TestTimeSeriesSamples:
    def test_append_and_len(self):
        series = TimeSeries("s")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert len(series) == 2
        assert list(series) == [(1.0, 10.0), (2.0, 20.0)]

    def test_out_of_order_append_raises(self):
        series = TimeSeries("s")
        series.append(2.0, 1.0)
        with pytest.raises(ValueError):
            series.append(1.0, 1.0)

    def test_equal_time_append_allowed(self):
        series = TimeSeries("s")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_window_is_half_open(self):
        series = TimeSeries("s")
        for t in range(5):
            series.append(float(t), float(t))
        assert series.window(1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0)]

    def test_mean_over_window(self):
        series = TimeSeries("s")
        for t, v in [(0.0, 2.0), (1.0, 4.0), (2.0, 12.0)]:
            series.append(t, v)
        assert series.mean(0.0, 2.0) == 3.0
        assert series.mean() == 6.0

    def test_mean_empty_window_is_none(self):
        series = TimeSeries("s")
        assert series.mean() is None

    def test_percentile_nearest_rank(self):
        series = TimeSeries("s")
        for t in range(100):
            series.append(float(t), float(t))
        assert series.percentile(50) == 49.0
        assert series.percentile(95) == 94.0
        assert series.percentile(100) == 99.0
        assert series.percentile(0) == 0.0

    def test_percentile_out_of_range_raises(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_maximum(self):
        series = TimeSeries("s")
        for t, v in [(0.0, 3.0), (1.0, 7.0), (2.0, 5.0)]:
            series.append(t, v)
        assert series.maximum() == 7.0


class TestTimeSeriesLevels:
    def test_value_at(self):
        series = TimeSeries("lvl", kind="level")
        series.append(0.0, 1.0)
        series.append(10.0, 0.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 0.0
        assert series.value_at(-1.0) is None

    def test_time_weighted_mean_simple(self):
        series = TimeSeries("lvl", kind="level")
        series.append(0.0, 1.0)
        series.append(5.0, 0.0)   # down for the second half
        assert series.time_weighted_mean(0.0, 10.0) == pytest.approx(0.5)

    def test_time_weighted_mean_partial_window(self):
        series = TimeSeries("lvl", kind="level")
        series.append(0.0, 1.0)
        series.append(8.0, 0.0)
        assert series.time_weighted_mean(6.0, 10.0) == pytest.approx(0.5)

    def test_time_weighted_mean_before_first_observation(self):
        series = TimeSeries("lvl", kind="level")
        series.append(10.0, 1.0)
        assert series.time_weighted_mean(0.0, 5.0) is None

    def test_time_weighted_mean_window_starting_before_signal(self):
        series = TimeSeries("lvl", kind="level")
        series.append(5.0, 1.0)
        # Signal only defined from t=5; mean over [0, 10) uses [5, 10).
        assert series.time_weighted_mean(0.0, 10.0) == pytest.approx(1.0)

    def test_time_weighted_mean_on_sample_series_raises(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        with pytest.raises(ValueError):
            series.time_weighted_mean(0.0, 1.0)

    def test_empty_window_returns_none(self):
        series = TimeSeries("lvl", kind="level")
        series.append(0.0, 1.0)
        assert series.time_weighted_mean(5.0, 5.0) is None

    def test_time_weighted_mean_single_point_series(self):
        series = TimeSeries("lvl", kind="level")
        series.append(2.0, 0.75)
        # One observation holds forever: any later window averages to it.
        assert series.time_weighted_mean(2.0, 10.0) == pytest.approx(0.75)
        assert series.time_weighted_mean(5.0, 6.0) == pytest.approx(0.75)

    def test_time_weighted_mean_window_ending_exactly_at_first_obs(self):
        series = TimeSeries("lvl", kind="level")
        series.append(5.0, 1.0)
        # Half-open [start, end): a window ending at the first observation
        # never sees a defined value.
        assert series.time_weighted_mean(0.0, 5.0) is None

    def test_time_weighted_mean_changes_inside_window(self):
        series = TimeSeries("lvl", kind="level")
        series.append(0.0, 0.0)
        series.append(2.0, 1.0)
        series.append(6.0, 0.0)
        # [0,2)=0, [2,6)=1, [6,8)=0 over an 8s window.
        assert series.time_weighted_mean(0.0, 8.0) == pytest.approx(0.5)

    def test_percentile_extremes_single_point(self):
        series = TimeSeries("s")
        series.append(0.0, 42.0)
        assert series.percentile(0) == 42.0
        assert series.percentile(100) == 42.0

    def test_percentile_extremes_two_points(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(1.0, 9.0)
        assert series.percentile(0) == 1.0
        assert series.percentile(100) == 9.0


class TestMetricsRecorder:
    def test_record_and_series(self, metrics):
        metrics.record("m", 1.0, 5.0)
        metrics.record("m", 2.0, 7.0)
        assert metrics.series("m").mean() == 6.0

    def test_kind_mismatch_on_explicit_reuse(self, metrics):
        metrics.set_level("up", 0.0, 1.0)
        with pytest.raises(ValueError):
            metrics.series("up", kind="sample")

    def test_kind_agnostic_access(self, metrics):
        metrics.set_level("up", 0.0, 1.0)
        assert metrics.series("up").kind == "level"

    def test_counters(self, metrics):
        metrics.increment("events")
        metrics.increment("events", 2.0)
        assert metrics.counter("events") == 3.0
        assert metrics.counter("missing") == 0.0
        assert metrics.counter_names == ["events"]

    def test_summary(self, metrics):
        for t in range(10):
            metrics.record("lat", float(t), float(t))
        summary = metrics.summary()
        assert summary["lat"]["count"] == 10
        assert summary["lat"]["mean"] == 4.5
        assert summary["lat"]["max"] == 9.0

    def test_unknown_series_kind_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("x", kind="bogus")

    def test_has_series(self, metrics):
        assert not metrics.has_series("x")
        metrics.record("x", 0.0, 0.0)
        assert metrics.has_series("x")

    def test_summary_includes_counters(self, metrics):
        metrics.record("lat", 0.0, 1.0)
        metrics.increment("drops", 4)
        summary = metrics.summary()
        assert summary["drops"] == {"counter": 4.0}
        assert summary["lat"]["count"] == 1.0
        assert "drops" not in metrics.summary(include_counters=False)

    def test_summary_names_filter_counters(self, metrics):
        metrics.increment("a")
        metrics.increment("b")
        assert set(metrics.summary(names=["a"])) == {"a"}

    def test_snapshot_combines_series_and_counters(self, metrics):
        metrics.record("lat", 0.0, 2.0)
        metrics.set_level("up", 0.0, 1.0)
        metrics.increment("repairs", 2)
        snapshot = metrics.snapshot()
        assert set(snapshot) == {"series", "counters"}
        assert snapshot["counters"] == {"repairs": 2.0}
        assert snapshot["series"]["lat"]["mean"] == 2.0
        assert "repairs" not in snapshot["series"]

    def test_snapshot_empty_recorder(self, metrics):
        assert metrics.snapshot() == {"series": {}, "counters": {}}


class TestTimeSeriesBoundaries:
    """Boundary semantics of window/value_at, pinned as contracts: the
    SLO monitor's trailing windows and the KPI layer both depend on
    half-open windows and last-write-wins level reads."""

    def test_window_includes_start_excludes_end(self):
        series = TimeSeries("s")
        for t in (1.0, 2.0, 3.0):
            series.append(t, t)
        assert series.window(1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0)]
        assert series.window(3.0, 3.0) == []
        assert series.window(0.0, 1.0) == []

    def test_window_with_duplicate_timestamps_keeps_all(self):
        series = TimeSeries("s")
        series.append(1.0, 10.0)
        series.append(1.0, 20.0)
        series.append(2.0, 30.0)
        assert series.window(1.0, 2.0) == [(1.0, 10.0), (1.0, 20.0)]

    def test_value_at_before_first_observation_is_none(self):
        series = TimeSeries("s", kind="level")
        series.append(5.0, 1.0)
        assert series.value_at(4.999) is None

    def test_value_at_exact_time_sees_the_new_value(self):
        series = TimeSeries("s", kind="level")
        series.append(5.0, 1.0)
        series.append(10.0, 0.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 0.0
        assert series.value_at(9.999) == 1.0

    def test_value_at_duplicate_time_last_write_wins(self):
        series = TimeSeries("s", kind="level")
        series.append(5.0, 1.0)
        series.append(5.0, 0.0)
        assert series.value_at(5.0) == 0.0

    def test_minimum_over_window(self):
        series = TimeSeries("s")
        for t, v in [(0.0, 3.0), (1.0, 7.0), (2.0, 5.0)]:
            series.append(t, v)
        assert series.minimum() == 3.0
        assert series.minimum(1.0, 3.0) == 5.0
        assert series.minimum(10.0, 20.0) is None


class TestSummaryPercentiles:
    def test_summary_reports_min_p50_p99(self, metrics):
        for i in range(100):
            metrics.record("lat", float(i), float(i))
        entry = metrics.summary()["lat"]
        assert entry["min"] == 0.0
        assert entry["p50"] == 49.0
        assert entry["p95"] == 94.0
        assert entry["p99"] == 98.0
        assert entry["max"] == 99.0
        assert entry["count"] == 100.0

    def test_summary_single_sample_has_consistent_stats(self, metrics):
        metrics.record("lat", 0.0, 42.0)
        entry = metrics.summary()["lat"]
        assert entry["min"] == entry["p50"] == entry["p99"] == entry["max"] == 42.0

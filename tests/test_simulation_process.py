"""Unit tests for generator-based processes."""

import pytest

from repro.simulation.kernel import SimulationError, Simulator
from repro.simulation.process import (
    AllOf,
    AnyOf,
    Interrupted,
    Process,
    Timeout,
    Waiter,
    spawn,
)


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        times = []

        def proc():
            times.append(sim.now)
            yield Timeout(2.5)
            times.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert times == [0.0, 2.5]

    def test_timeout_value_passed_through(self, sim):
        got = []

        def proc():
            value = yield Timeout(1.0, value="hello")
            got.append(value)

        spawn(sim, proc())
        sim.run()
        assert got == ["hello"]

    def test_negative_timeout_raises(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield Timeout(1.0)
            yield Timeout(2.0)
            yield Timeout(3.0)

        process = spawn(sim, proc())
        sim.run()
        assert sim.now == 6.0
        assert process.finished


class TestWaiter:
    def test_waiter_resumes_with_value(self, sim):
        waiter = Waiter()
        got = []

        def consumer():
            value = yield waiter
            got.append(value)

        def producer():
            yield Timeout(3.0)
            waiter.succeed("data")

        spawn(sim, consumer())
        spawn(sim, producer())
        sim.run()
        assert got == ["data"]

    def test_waiter_triggered_before_yield_still_resumes(self, sim):
        waiter = Waiter()
        waiter.succeed(7)
        got = []

        def consumer():
            got.append((yield waiter))

        spawn(sim, consumer())
        sim.run()
        assert got == [7]

    def test_double_succeed_raises(self):
        waiter = Waiter()
        waiter.succeed()
        with pytest.raises(SimulationError):
            waiter.succeed()

    def test_multiple_waiters_on_one_condition(self, sim):
        waiter = Waiter()
        got = []

        def consumer(tag):
            value = yield waiter
            got.append((tag, value))

        spawn(sim, consumer("a"))
        spawn(sim, consumer("b"))
        spawn(sim, (x for x in []))  # empty process is fine
        sim.schedule(1.0, lambda s: waiter.succeed("v"))
        sim.run()
        assert sorted(got) == [("a", "v"), ("b", "v")]


class TestComposites:
    def test_allof_waits_for_every_condition(self, sim):
        got = []

        def proc():
            values = yield AllOf([Timeout(1.0, value="a"), Timeout(3.0, value="b")])
            got.append((sim.now, values))

        spawn(sim, proc())
        sim.run()
        assert got == [(3.0, ["a", "b"])]

    def test_allof_empty_resumes_immediately(self, sim):
        got = []

        def proc():
            values = yield AllOf([])
            got.append(values)

        spawn(sim, proc())
        sim.run()
        assert got == [[]]

    def test_anyof_resumes_on_first(self, sim):
        got = []

        def proc():
            index, value = yield AnyOf([Timeout(5.0, value="slow"), Timeout(1.0, value="fast")])
            got.append((sim.now, index, value))

        spawn(sim, proc())
        sim.run()
        assert got == [(1.0, 1, "fast")]

    def test_anyof_empty_raises(self, sim):
        def proc():
            yield AnyOf([])

        process = spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestJoinAndResult:
    def test_join_returns_process_result(self, sim):
        def worker():
            yield Timeout(2.0)
            return 42

        def joiner(worker_process):
            result = yield worker_process
            return result * 2

        worker_process = spawn(sim, worker())
        joiner_process = spawn(sim, joiner(worker_process))
        sim.run()
        assert joiner_process.result == 84

    def test_join_finished_process_resumes_immediately(self, sim):
        def worker():
            yield Timeout(1.0)
            return "done"

        worker_process = spawn(sim, worker())
        sim.run()

        got = []

        def joiner():
            got.append((yield worker_process))

        spawn(sim, joiner())
        sim.run()
        assert got == ["done"]

    def test_result_before_finish_raises(self, sim):
        def worker():
            yield Timeout(1.0)

        process = spawn(sim, worker())
        with pytest.raises(SimulationError):
            _ = process.result

    def test_yield_non_condition_raises(self, sim):
        def bad():
            yield 42

        spawn(sim, bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestInterrupt:
    def test_interrupt_raises_inside_process(self, sim):
        events = []

        def worker():
            try:
                yield Timeout(100.0)
            except Interrupted as err:
                events.append(str(err))

        process = spawn(sim, worker())
        sim.schedule(1.0, lambda s: process.interrupt("stop now"))
        sim.run()
        assert events == ["stop now"]
        assert process.finished

    def test_stale_timeout_after_interrupt_is_dropped(self, sim):
        resumed = []

        def worker():
            try:
                yield Timeout(5.0)
                resumed.append("timeout")
            except Interrupted:
                yield Timeout(10.0)
                resumed.append("post-interrupt")

        process = spawn(sim, worker())
        sim.schedule(1.0, lambda s: process.interrupt())
        sim.run()
        # The original 5.0 timeout must NOT resume the process a second time.
        assert resumed == ["post-interrupt"]
        assert sim.now == 11.0

"""Unit tests for the trace log and RNG registry."""

import pytest

from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceEvent, TraceLog


class TestTraceLog:
    def test_emit_and_select(self, trace):
        trace.emit(1.0, "fault", "crash", subject="d1")
        trace.emit(2.0, "recovery", "device-recover", subject="d1")
        trace.emit(3.0, "fault", "crash", subject="d2")
        assert trace.count(category="fault") == 2
        assert [e.subject for e in trace.select(category="fault", name="crash")] == ["d1", "d2"]

    def test_select_time_window_is_half_open(self, trace):
        for t in range(5):
            trace.emit(float(t), "c", "n")
        assert len(trace.select(start=1.0, end=3.0)) == 2

    def test_time_going_backwards_raises(self, trace):
        trace.emit(5.0, "c", "n")
        with pytest.raises(ValueError):
            trace.emit(4.0, "c", "n")

    def test_first_and_last(self, trace):
        trace.emit(1.0, "c", "a")
        trace.emit(2.0, "c", "b")
        trace.emit(3.0, "c", "a")
        assert trace.first(name="a").time == 1.0
        assert trace.last(name="a").time == 3.0
        assert trace.first(name="missing") is None

    def test_subscribers_receive_live_events(self, trace):
        got = []
        unsubscribe = trace.subscribe(got.append)
        trace.emit(1.0, "c", "x")
        unsubscribe()
        trace.emit(2.0, "c", "y")
        assert [e.name for e in got] == ["x"]

    def test_intervals_pairing(self, trace):
        trace.emit(1.0, "fault", "partition-start", subject="p")
        trace.emit(5.0, "recovery", "partition-heal", subject="p")
        trace.emit(8.0, "fault", "partition-start", subject="p")
        intervals = trace.intervals("partition-start", "partition-heal",
                                    subject="p", horizon=10.0)
        assert intervals == [(1.0, 5.0), (8.0, 10.0)]

    def test_attrs_carried(self, trace):
        event = trace.emit(1.0, "c", "n", subject="s", extra=42)
        assert event.attrs["extra"] == 42

    def test_matches_filters(self):
        event = TraceEvent(1.0, "cat", "name", "subj")
        assert event.matches(category="cat")
        assert not event.matches(category="other")
        assert event.matches(name="name", subject="subj")
        assert not event.matches(subject="other")


class TestTraceLogRingBuffer:
    def test_maxlen_bounds_memory_and_counts_drops(self):
        trace = TraceLog(maxlen=3)
        for t in range(5):
            trace.emit(float(t), "c", f"e{t}")
        assert len(trace) == 3
        assert [e.name for e in trace] == ["e2", "e3", "e4"]
        assert trace.dropped == 2

    def test_unbounded_by_default(self, trace):
        for t in range(100):
            trace.emit(float(t), "c", "n")
        assert len(trace) == 100
        assert trace.dropped == 0
        assert trace.maxlen is None

    def test_invalid_maxlen_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(maxlen=0)
        with pytest.raises(ValueError):
            TraceLog(maxlen=-5)

    def test_queries_work_on_truncated_log(self):
        trace = TraceLog(maxlen=2)
        trace.emit(1.0, "fault", "partition-start", subject="p")
        trace.emit(5.0, "recovery", "partition-heal", subject="p")
        trace.emit(8.0, "fault", "partition-start", subject="p")
        # Oldest event evicted; pairing sees only the surviving window.
        assert trace.intervals("partition-start", "partition-heal",
                               subject="p", horizon=10.0) == [(8.0, 10.0)]
        assert trace.count(category="fault") == 1


class TestTraceLogSubscriberHardening:
    def test_raising_subscriber_does_not_hide_event(self, trace):
        first_got, second_got = [], []

        def boom(event):
            first_got.append(event)
            raise RuntimeError("subscriber exploded")

        trace.subscribe(boom)
        trace.subscribe(second_got.append)
        with pytest.raises(RuntimeError, match="exploded"):
            trace.emit(1.0, "c", "x")
        # The log kept the event and the later subscriber still saw it.
        assert len(trace) == 1
        assert [e.name for e in second_got] == ["x"]
        assert trace.subscriber_errors == 1

    def test_first_error_reraised_all_counted(self, trace):
        trace.subscribe(lambda e: (_ for _ in ()).throw(ValueError("first")))
        trace.subscribe(lambda e: (_ for _ in ()).throw(KeyError("second")))
        with pytest.raises(ValueError, match="first"):
            trace.emit(1.0, "c", "x")
        assert trace.subscriber_errors == 2

    def test_log_still_usable_after_subscriber_error(self, trace):
        bad = trace.subscribe(
            lambda e: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError):
            trace.emit(1.0, "c", "x")
        bad()
        trace.emit(2.0, "c", "y")
        assert [e.name for e in trace] == ["x", "y"]


class TestRngRegistry:
    def test_same_name_same_stream_object(self, rngs):
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_names_independent(self):
        registry = RngRegistry(seed=1)
        a_draws = [registry.stream("a").random() for _ in range(5)]
        registry2 = RngRegistry(seed=1)
        # Drawing from "b" first must not perturb "a".
        registry2.stream("b").random()
        a_draws2 = [registry2.stream("a").random() for _ in range(5)]
        assert a_draws == a_draws2

    def test_deterministic_across_instances(self):
        first = RngRegistry(seed=99).stream("x").random()
        second = RngRegistry(seed=99).stream("x").random()
        assert first == second

    def test_different_seeds_differ(self):
        assert RngRegistry(seed=1).stream("x").random() != RngRegistry(seed=2).stream("x").random()

    def test_fork_is_independent_of_parent(self):
        parent = RngRegistry(seed=5)
        child = parent.fork("child")
        assert child.stream("x").random() != parent.stream("x").random()

    def test_fork_deterministic(self):
        a = RngRegistry(seed=5).fork("c").stream("x").random()
        b = RngRegistry(seed=5).fork("c").stream("x").random()
        assert a == b

    def test_stream_names_tracked(self, rngs):
        rngs.stream("zeta")
        rngs.stream("alpha")
        assert rngs.stream_names == ["alpha", "zeta"]

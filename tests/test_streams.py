"""Tests for the edge stream-analytics substrate."""

import pytest

from repro.devices.base import Device, DeviceClass
from repro.devices.fleet import DeviceFleet
from repro.network.topology import build_edge_cloud_topology
from repro.network.transport import Network
from repro.streams import (
    Dataflow,
    FilterOperator,
    MapOperator,
    SinkOperator,
    SourceOperator,
    StreamTuple,
    WindowAggregateOperator,
)


class TestOperators:
    def test_map(self):
        op = MapOperator("double", lambda v: v * 2)
        out = op.process(StreamTuple(21, 0.0), now=0.0)
        assert [t.value for t in out] == [42]
        assert op.processed == op.emitted == 1

    def test_filter(self):
        op = FilterOperator("evens", lambda v: v % 2 == 0)
        assert op.process(StreamTuple(2, 0.0), 0.0)
        assert not op.process(StreamTuple(3, 0.0), 0.0)
        assert op.processed == 2 and op.emitted == 1

    def test_window_mean_closes_on_next_window(self):
        op = WindowAggregateOperator.mean("avg", window=10.0)
        assert op.process(StreamTuple(10.0, 1.0), 1.0) == []
        assert op.process(StreamTuple(20.0, 5.0), 5.0) == []
        closed = op.process(StreamTuple(99.0, 12.0), 12.0)  # next window
        assert len(closed) == 1
        assert closed[0].value == pytest.approx(15.0)
        assert closed[0].event_time == 10.0   # window end

    def test_window_closes_on_epoch(self):
        op = WindowAggregateOperator.count("cnt", window=10.0)
        op.process(StreamTuple(1, 2.0), 2.0)
        assert op.on_epoch(5.0) == []       # window still open
        closed = op.on_epoch(11.0)
        assert len(closed) == 1 and closed[0].value == 1

    def test_keyed_windows_independent(self):
        op = WindowAggregateOperator.count("cnt", window=10.0, key_by=True)
        op.process(StreamTuple(1, 1.0, key="a"), 1.0)
        op.process(StreamTuple(1, 2.0, key="b"), 2.0)
        op.process(StreamTuple(1, 3.0, key="a"), 3.0)
        closed = sorted(op.on_epoch(11.0), key=lambda t: t.key)
        assert [(t.key, t.value) for t in closed] == [("a", 2), ("b", 1)]

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            WindowAggregateOperator.mean("w", window=0.0)

    def test_sink_collects_and_calls_back(self):
        got = []
        sink = SinkOperator("out", on_result=got.append)
        sink.process(StreamTuple(1, 0.0), 0.0)
        assert len(sink.results) == 1 and len(got) == 1


@pytest.fixture
def pipeline_rig(sim, rngs, metrics, trace):
    # Lossless device links: these tests assert exact tuple counts, so
    # the 1% wireless loss of the default profile would flake them.
    topology, sites = build_edge_cloud_topology(1, 2, rng=rngs.stream("net"),
                                                device_profile="lan")
    network = Network(sim, topology, trace=trace)
    fleet = DeviceFleet(sim, network=network, metrics=metrics, trace=trace)
    fleet.add(Device("cloud", DeviceClass.CLOUD))
    fleet.add(Device("edge0", DeviceClass.EDGE))
    for device_id in sites["edge0"]:
        fleet.add(Device(device_id, DeviceClass.GATEWAY))
    return sim, network, fleet, sites, metrics


def build_pipeline(sim, network, fleet, metrics, edge_host="edge0",
                   window=5.0):
    """device source -> edge window-mean -> cloud sink."""
    flow = Dataflow("pipeline", sim, network, fleet, epoch_period=1.0,
                    metrics=metrics)
    sink = SinkOperator("sink")
    flow.add_operator(SourceOperator("src"), "d0.0")
    flow.add_operator(WindowAggregateOperator.mean("agg", window), edge_host,
                      upstream="src")
    flow.add_operator(sink, "cloud", upstream="agg")
    flow.start()
    return flow, sink


class TestDataflow:
    def test_end_to_end_aggregation(self, pipeline_rig):
        sim, network, fleet, sites, metrics = pipeline_rig
        flow, sink = build_pipeline(sim, network, fleet, metrics)

        def feed(s):
            flow.ingest("src", StreamTuple(10.0, s.now, origin="d0.0"))
            if s.now < 20.0:
                s.schedule(1.0, feed)

        sim.schedule(0.5, feed)
        sim.run(until=30.0)
        assert len(sink.results) >= 3
        assert all(r.value == pytest.approx(10.0) for r in sink.results)

    def test_edge_aggregation_reduces_shipped_volume(self, pipeline_rig):
        """The §V.B claim: windowing at the edge cuts upstream volume by
        the window factor."""
        sim, network, fleet, sites, metrics = pipeline_rig
        flow, sink = build_pipeline(sim, network, fleet, metrics, window=5.0)

        def feed(s):
            flow.ingest("src", StreamTuple(1.0, s.now))
            if s.now < 50.0:
                s.schedule(1.0, feed)

        sim.schedule(0.5, feed)
        sim.run(until=60.0)
        # ~50 source tuples -> ~10 aggregates; shipped = src->agg (50)
        # + agg->sink (~10).  Ratio ~1.2 vs 2.0 for ship-everything.
        assert flow.reduction_ratio() < 1.5
        source = flow.operator("src")
        aggregate = flow.operator("agg")
        assert aggregate.emitted <= source.emitted / 4

    def test_sink_latency_recorded(self, pipeline_rig):
        sim, network, fleet, sites, metrics = pipeline_rig
        flow, sink = build_pipeline(sim, network, fleet, metrics)
        flow.ingest("src", StreamTuple(1.0, sim.now))
        sim.run(until=10.0)
        assert metrics.has_series("stream.latency:pipeline")

    def test_down_host_drops_then_migration_restores(self, pipeline_rig):
        sim, network, fleet, sites, metrics = pipeline_rig
        # A device-to-device side link: without it, losing the star hub
        # (edge0) would isolate the site and no migration could help --
        # redundant connectivity is a precondition of operator mobility.
        network.topology.add_link("d0.0", "d0.1", profile="lan")
        flow, sink = build_pipeline(sim, network, fleet, metrics)

        def feed(s):
            flow.ingest("src", StreamTuple(2.0, s.now))
            if s.now < 40.0:
                s.schedule(1.0, feed)

        sim.schedule(0.5, feed)
        sim.run(until=10.0)
        fleet.crash("edge0")
        sim.run(until=15.0)
        dropped_during_outage = flow.tuples_dropped
        assert dropped_during_outage > 0
        # Losing edge0 severed both the aggregate host AND the cloud
        # uplink: move the whole tail of the pipeline into the island
        # (aggregate to d0.1, sink to d0.0) and processing resumes.
        flow.migrate_operator("agg", "d0.1")
        flow.migrate_operator("sink", "d0.0")
        assert flow.placement_of("agg") == "d0.1"
        results_before = len(sink.results)
        sim.run(until=40.0)
        assert len(sink.results) > results_before

    def test_window_state_survives_migration(self, pipeline_rig):
        sim, network, fleet, sites, metrics = pipeline_rig
        flow, sink = build_pipeline(sim, network, fleet, metrics, window=100.0)
        for value in (10.0, 20.0):
            flow.ingest("src", StreamTuple(value, sim.now))
        sim.run(until=5.0)
        flow.migrate_operator("agg", "d0.1")
        for value in (30.0, 40.0):
            flow.ingest("src", StreamTuple(value, sim.now))
        sim.run(until=120.0)   # epoch closes the window
        assert len(sink.results) == 1
        assert sink.results[0].value == pytest.approx(25.0)   # mean of all four

    def test_duplicate_operator_raises(self, pipeline_rig):
        sim, network, fleet, sites, metrics = pipeline_rig
        flow = Dataflow("f", sim, network, fleet)
        flow.add_operator(SourceOperator("src"), "edge0")
        with pytest.raises(ValueError):
            flow.add_operator(SourceOperator("src"), "edge0")

    def test_unknown_upstream_or_host_raises(self, pipeline_rig):
        sim, network, fleet, sites, metrics = pipeline_rig
        flow = Dataflow("f", sim, network, fleet)
        with pytest.raises(KeyError):
            flow.add_operator(SourceOperator("src"), "ghost-host")
        flow.add_operator(SourceOperator("src"), "edge0")
        with pytest.raises(KeyError):
            flow.add_operator(SinkOperator("sink"), "edge0", upstream="ghost")

    def test_branching_dataflow(self, pipeline_rig):
        """One source feeding two sinks through different filters."""
        sim, network, fleet, sites, metrics = pipeline_rig
        flow = Dataflow("branch", sim, network, fleet)
        high_sink = SinkOperator("high_sink")
        low_sink = SinkOperator("low_sink")
        flow.add_operator(SourceOperator("src"), "edge0")
        flow.add_operator(FilterOperator("high", lambda v: v >= 50), "edge0",
                          upstream="src")
        flow.add_operator(FilterOperator("low", lambda v: v < 50), "edge0",
                          upstream="src")
        flow.add_operator(high_sink, "cloud", upstream="high")
        flow.add_operator(low_sink, "edge0", upstream="low")
        flow.start()
        for value in (10, 60, 30, 90):
            flow.ingest("src", StreamTuple(value, sim.now))
        sim.run(until=5.0)
        assert sorted(t.value for t in high_sink.results) == [60, 90]
        assert sorted(t.value for t in low_sink.results) == [10, 30]
        # low branch stayed host-local; high branch crossed the network.
        assert flow.tuples_local > 0 and flow.tuples_shipped > 0

"""Tests for the parameter-sweep harness and stochastic maturity mode."""

import json

import pytest

from repro.core.maturity import MaturityScenario, ScenarioParams
from repro.core.vectors import MaturityLevel
from repro.sweep import SweepCell, run_sweep


def _module_metric(x, seed):
    """Module-level so it pickles into a ProcessPoolExecutor worker."""
    return x * 10.0 + seed


class TestRunSweep:
    def test_grid_times_seeds_executions(self):
        calls = []

        def run(x, y, seed):
            calls.append((x, y, seed))
            return x * 10 + y + seed / 100

        result = run_sweep(run, grid={"x": [1, 2], "y": [3, 4]},
                           seeds=[0, 1])
        assert len(result.cells) == 4
        assert len(calls) == 8
        assert all(len(cell.values) == 2 for cell in result.cells)

    def test_cell_lookup_and_statistics(self):
        result = run_sweep(lambda x, seed: x + seed,
                           grid={"x": [10]}, seeds=[1, 3])
        cell = result.cell(x=10)
        assert cell.values == [11.0, 13.0]
        assert cell.mean == 12.0
        assert cell.minimum == 11.0 and cell.maximum == 13.0
        assert cell.spread == 2.0

    def test_missing_cell_raises(self):
        result = run_sweep(lambda x, seed: x, grid={"x": [1]}, seeds=[0])
        with pytest.raises(KeyError):
            result.cell(x=99)

    def test_series_extraction(self):
        result = run_sweep(lambda x, y, seed: x * y,
                           grid={"x": [1, 2], "y": [5, 7]}, seeds=[0])
        series = result.series(over="x", y=5)
        assert series == [(1, 5.0), (2, 10.0)]

    def test_rows_tabular_dump(self):
        result = run_sweep(lambda x, seed: float(x), grid={"x": [1]}, seeds=[0])
        assert result.rows() == [[1, 1.0, 1.0, 1.0]]

    def test_empty_grid_or_seeds_raise(self):
        with pytest.raises(ValueError):
            run_sweep(lambda seed: 0.0, grid={}, seeds=[0])
        with pytest.raises(ValueError):
            run_sweep(lambda x, seed: 0.0, grid={"x": [1]}, seeds=[])
        with pytest.raises(ValueError):
            run_sweep(lambda x, seed: 0.0, grid={"x": [1]}, seeds=[0],
                      workers=0)
        with pytest.raises(ValueError):
            run_sweep(lambda x, seed: 0.0, grid={"x": [1]}, seeds=[0],
                      checkpoint_every=0)


class TestEmptyCellStatistics:
    """An empty cell is "no data", not a perfect score of 0.0."""

    def test_statistics_are_none(self):
        cell = SweepCell(params={"x": 1})
        assert cell.mean is None
        assert cell.minimum is None
        assert cell.maximum is None
        assert cell.spread is None

    def test_series_omits_empty_cells(self):
        from repro.sweep import SweepResult

        result = SweepResult(grid_keys=("x",), cells=[
            SweepCell(params={"x": 1}, values=[2.0]),
            SweepCell(params={"x": 2}),          # no data
        ])
        assert result.series(over="x") == [(1, 2.0)]
        assert result.rows()[1] == [2, None, None, None]


class TestParallelSweep:
    def test_workers_match_serial_results(self):
        grid = {"x": [1, 2, 3]}
        serial = run_sweep(_module_metric, grid=grid, seeds=[1, 2, 3])
        parallel = run_sweep(_module_metric, grid=grid, seeds=[1, 2, 3],
                             workers=2)
        assert [c.values for c in parallel.cells] == \
            [c.values for c in serial.cells]
        assert [c.params for c in parallel.cells] == \
            [c.params for c in serial.cells]


class TestSweepCheckpoint:
    def test_crash_resume_skips_completed_cells(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        calls = []

        def flaky(x, seed):
            calls.append((x, seed))
            if len(calls) > 4:       # 2 cells x 2 seeds, then crash
                raise RuntimeError("harness crash")
            return _module_metric(x, seed)

        with pytest.raises(RuntimeError):
            run_sweep(flaky, grid={"x": [1, 2, 3]}, seeds=[1, 2],
                      checkpoint_path=path)
        saved = json.load(open(path))
        assert len(saved["cells"]) == 2

        reran = []

        def tracking(x, seed):
            reran.append((x, seed))
            return _module_metric(x, seed)

        resumed = run_sweep(tracking, grid={"x": [1, 2, 3]},
                            seeds=[1, 2], checkpoint_path=path)
        assert reran == [(3, 1), (3, 2)]   # only the missing cell ran
        reference = run_sweep(_module_metric, grid={"x": [1, 2, 3]},
                              seeds=[1, 2])
        assert [c.values for c in resumed.cells] == \
            [c.values for c in reference.cells]

    def test_checkpoint_every_batches_saves(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        run_sweep(_module_metric, grid={"x": [1, 2, 3]}, seeds=[1],
                  checkpoint_path=path, checkpoint_every=2)
        saved = json.load(open(path))
        assert len(saved["cells"]) == 3    # final flush covers the tail

    def test_mismatched_fingerprint_is_refused(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        run_sweep(_module_metric, grid={"x": [1]}, seeds=[1],
                  checkpoint_path=path)
        with pytest.raises(ValueError, match="refusing to resume"):
            run_sweep(_module_metric, grid={"x": [1, 2]}, seeds=[1],
                      checkpoint_path=path)
        with pytest.raises(ValueError, match="refusing to resume"):
            run_sweep(_module_metric, grid={"x": [1]}, seeds=[2],
                      checkpoint_path=path)


class TestStochasticMaturityMode:
    def test_random_schedule_generated(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=60.0,
                                seed=7, disruption_rate=0.1)
        scenario = MaturityScenario(MaturityLevel.ML3, params)
        assert len(scenario.schedule) > 0
        # Deterministic for the seed.
        scenario2 = MaturityScenario(MaturityLevel.ML3, params)
        assert [(e.time, e.fault.name) for e in scenario.schedule.entries] == \
               [(e.time, e.fault.name) for e in scenario2.schedule.entries]

    def test_runs_and_scores_in_unit_interval(self):
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=40.0,
                                seed=7, disruption_rate=0.1)
        report = MaturityScenario(MaturityLevel.ML4, params).run()
        assert 0.0 <= report.resilience_score <= 1.0
        assert 0.0 <= report.overall_score <= 1.0

    def test_overall_score_includes_baseline(self):
        """With no disruption at all, overall == baseline behaviour."""
        params = ScenarioParams(n_sites=2, sensors_per_site=2, horizon=40.0,
                                seed=7, disruption=False)
        report = MaturityScenario(MaturityLevel.ML4, params).run()
        assert report.overall_score == pytest.approx(report.baseline_score)
        assert report.resilience_score == 0.0   # no disruption windows

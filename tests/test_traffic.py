"""Tests for the traffic subsystem: load generation, serving, resilience.

Covers the acceptance criteria of the serving story:

* retry backoff is deterministic per seed and bounded by the policy;
* the circuit breaker walks its three-state transition table exactly;
* cohort batching keeps kernel events O(aggregate rate), not O(users);
* servers queue, reject and shed as configured;
* the overload and retry-storm scenarios separate naive from resilient
  configurations by a wide, asserted margin;
* every component snapshots/restores to identical behaviour.
"""

import json
import random

import pytest

from repro.adaptation import (
    BackpressureAnalyzer,
    Executor,
    Issue,
    KnowledgeBase,
    RerouteTrafficAction,
    RuleBasedPlanner,
    ShedLoadAction,
)
from repro.core.system import IoTSystem
from repro.simulation.kernel import Simulator
from repro.traffic import (
    CircuitBreaker,
    ClientCohort,
    ClosedLoopGenerator,
    HedgePolicy,
    OpenLoopGenerator,
    QueueLengthAdmission,
    RetryBudget,
    RetryPolicy,
    Server,
    ServiceModel,
    TrafficClient,
    TrafficRegistry,
    cohort_batching,
)
from repro.traffic.patterns import CLOSED, HALF_OPEN, OPEN
from repro.traffic.scenarios import (
    prepare_overload,
    prepare_retry_storm,
    recovery_window,
    retry_storm_result,
    run_overload,
)


def _small_system(seed=5):
    system = IoTSystem.with_edge_cloud_landscape(2, 2, seed=seed)
    registry = TrafficRegistry(system)
    return system, registry


def _wire(system, registry, *, concurrency=2, queue_capacity=8,
          service_mean=0.02, service_kind="exponential", timeout=0.25,
          retry=None, budget=None, breaker=None, hedge=None, admission=None):
    server = registry.add_server(Server(
        system.sim, system.network, "edge0",
        rng=system.rngs.stream("traffic:server:edge0"),
        concurrency=concurrency, queue_capacity=queue_capacity,
        service=ServiceModel(mean=service_mean, kind=service_kind),
        admission=admission, metrics=system.metrics, trace=system.trace))
    client = registry.add_client(TrafficClient(
        system.sim, system.network, "c", "d0.0", "edge0",
        rng=system.rngs.stream("traffic:client"),
        timeout=timeout, retry=retry, budget=budget, breaker=breaker,
        hedge=hedge, metrics=system.metrics, trace=system.trace))
    return server, client


# --------------------------------------------------------------------------- #
# Retry policy: deterministic, bounded backoff
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_deterministic_per_seed(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, multiplier=2.0,
                             max_delay=10.0, jitter=0.5)
        a = [policy.backoff(n, random.Random(42)) for n in range(1, 5)]
        b = [policy.backoff(n, random.Random(42)) for n in range(1, 5)]
        c = [policy.backoff(n, random.Random(43)) for n in range(1, 5)]
        assert a == b
        assert a != c

    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=100.0,
                             jitter=0.5)
        rng = random.Random(1)
        for attempt in range(1, 6):
            nominal = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.backoff(attempt, rng)
            assert nominal * 0.5 <= delay <= nominal

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0,
                             jitter=0.0)
        assert policy.backoff(5, random.Random(0)) == pytest.approx(2.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestRetryBudget:
    def test_withdraw_spends_deposits(self):
        budget = RetryBudget(ratio=0.25, cap=100.0, initial=0.0)
        for _ in range(100):
            budget.deposit(1)
        assert budget.tokens == pytest.approx(25.0)
        assert budget.withdraw(25)
        assert not budget.withdraw(1)
        assert budget.refused == 1

    def test_cap_limits_accumulation(self):
        budget = RetryBudget(ratio=1.0, cap=5.0, initial=0.0)
        budget.deposit(50)
        assert budget.tokens == pytest.approx(5.0)

    def test_snapshot_round_trip(self):
        budget = RetryBudget(ratio=0.2, cap=10.0, initial=3.0)
        budget.deposit(10)
        budget.withdraw(2)
        clone = RetryBudget(ratio=0.2, cap=10.0, initial=3.0)
        clone.restore_state(budget.snapshot_state())
        assert clone.tokens == budget.tokens
        assert clone.refused == budget.refused


# --------------------------------------------------------------------------- #
# Circuit breaker: the three-state transition table
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def _tripped(self, threshold=3):
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 recovery_time=1.0, success_threshold=2)
        for _ in range(threshold):
            breaker.record_failure(now=0.0)
        return breaker

    def test_closed_until_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_time=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)     # success resets the streak
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == CLOSED
        breaker.record_failure(0.5)
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_rejects_until_recovery_time(self):
        breaker = self._tripped()
        assert not breaker.allow(0.5)
        assert breaker.state == OPEN

    def test_half_open_probe_then_close(self):
        breaker = self._tripped()
        assert breaker.allow(1.5)               # probe admitted
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(1.6)           # only one probe slot
        breaker.record_success(1.7)
        assert breaker.state == HALF_OPEN       # success_threshold=2
        assert breaker.allow(1.8)
        breaker.record_success(1.9)
        assert breaker.state == CLOSED

    def test_half_open_failure_retrips(self):
        breaker = self._tripped()
        assert breaker.allow(1.5)
        breaker.record_failure(1.6)
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow(2.0)           # recovery clock restarted
        assert breaker.allow(2.7)

    def test_transition_log_records_every_change(self):
        breaker = self._tripped()
        breaker.allow(1.5)
        breaker.record_success(1.6)
        breaker.allow(1.7)
        breaker.record_success(1.8)
        assert [s for _, s in breaker.transitions] == [OPEN, HALF_OPEN, CLOSED]

    def test_snapshot_round_trip_mid_half_open(self):
        breaker = self._tripped()
        breaker.allow(1.5)
        breaker.record_success(1.6)
        clone = CircuitBreaker(failure_threshold=3, recovery_time=1.0,
                               success_threshold=2)
        clone.restore_state(breaker.snapshot_state())
        assert clone.state == breaker.state
        assert clone.snapshot_state() == breaker.snapshot_state()
        clone.allow(1.7)
        clone.record_success(1.8)
        assert clone.state == CLOSED


# --------------------------------------------------------------------------- #
# Load generation: cohort batching keeps events O(rate), not O(users)
# --------------------------------------------------------------------------- #
class TestLoadGeneration:
    def test_cohort_batching_math(self):
        plan = cohort_batching(100_000, 0.01, max_event_rate=500.0)
        assert plan["aggregate"] == pytest.approx(1000.0)
        assert plan["weight"] == 2
        assert plan["event_rate"] == pytest.approx(500.0)
        small = cohort_batching(100, 0.01, max_event_rate=500.0)
        assert small["weight"] == 1

    def _cohort_run(self, users, rate_per_user, seed=5, horizon=5.0,
                    max_event_rate=500.0):
        system, registry = _small_system(seed)
        _, client = _wire(system, registry, concurrency=64,
                          queue_capacity=4096, service_mean=0.001)
        cohort = registry.add_generator(ClientCohort(
            system.sim, client, users=users, rate_per_user=rate_per_user,
            rng=system.rngs.stream("traffic:arrivals"),
            max_event_rate=max_event_rate, stop=horizon))
        cohort.start()
        system.run(until=horizon)
        return system, client, cohort

    def test_100k_users_same_event_magnitude_as_1k(self):
        # Same aggregate rate (400/s) from 1k and 100k users: the kernel
        # event count must stay in the same order of magnitude because
        # arrivals are weighted batches, not per-user events.
        sys_small, client_small, _ = self._cohort_run(1_000, 0.4)
        sys_large, client_large, _ = self._cohort_run(100_000, 0.004)
        assert client_small.stats.offered > 0
        assert client_large.stats.offered > 0
        ratio = sys_large.sim.fired_count / sys_small.sim.fired_count
        assert 0.5 <= ratio <= 2.0

    def test_weighted_arrivals_carry_full_demand(self):
        _, client, cohort = self._cohort_run(100_000, 0.004, horizon=5.0,
                                             max_event_rate=100.0)
        # ~400 req/s of demand over 5s as weight-4 batched arrivals.
        assert cohort.weight == 4
        assert client.stats.offered == pytest.approx(2000, rel=0.2)

    def test_open_loop_deterministic_per_seed(self):
        def offered(seed):
            system, registry = _small_system(seed)
            _, client = _wire(system, registry)
            gen = registry.add_generator(OpenLoopGenerator(
                system.sim, client, rate=50.0,
                rng=system.rngs.stream("traffic:arrivals"), stop=5.0))
            gen.start()
            system.run(until=5.0)
            return client.stats.offered, system.sim.fired_count

        assert offered(5) == offered(5)
        assert offered(5) != offered(6)

    def test_deterministic_process_spaces_arrivals_evenly(self):
        system, registry = _small_system()
        _, client = _wire(system, registry)
        gen = registry.add_generator(OpenLoopGenerator(
            system.sim, client, rate=10.0,
            rng=system.rngs.stream("traffic:arrivals"),
            process="deterministic", stop=2.05))
        gen.start()
        system.run(until=2.5)
        assert gen.arrivals == 20

    def test_closed_loop_workers_cycle(self):
        system, registry = _small_system()
        _, client = _wire(system, registry, concurrency=4)
        gen = registry.add_generator(ClosedLoopGenerator(
            system.sim, client, workers=4, think_time=0.1,
            rng=system.rngs.stream("traffic:think"), stop=10.0))
        gen.start()
        system.run(until=10.0)
        assert gen.cycles > 100
        # Closed loop: in-flight never exceeds the worker count.
        assert client.stats.offered <= gen.cycles + 4


# --------------------------------------------------------------------------- #
# Serving: queueing, rejection, admission, shedding
# --------------------------------------------------------------------------- #
class TestServer:
    def test_completions_flow_back(self):
        system, registry = _small_system()
        server, client = _wire(system, registry)
        gen = registry.add_generator(OpenLoopGenerator(
            system.sim, client, rate=30.0,
            rng=system.rngs.stream("traffic:arrivals"), stop=5.0))
        gen.start()
        system.run(until=6.0)
        assert client.stats.completed > 0
        assert server.served > 0
        assert client.stats.latency.count == client.stats.completed

    def test_queue_full_rejects(self):
        system, registry = _small_system()
        server, client = _wire(system, registry, concurrency=1,
                               queue_capacity=2, service_mean=1.0,
                               service_kind="deterministic", timeout=10.0)
        for _ in range(8):
            client.submit()
        system.run(until=0.5)
        # 1 in service + 2 queued; every other delivered request bounces
        # (the network may lose a couple in transit, so compare against
        # what actually reached the server).
        assert server.accepted == 3
        assert server.rejected >= 4
        assert client.stats.rejected == server.rejected

    def test_admission_preempts_queueing(self):
        system, registry = _small_system()
        server, client = _wire(system, registry, concurrency=1,
                               queue_capacity=100, service_mean=1.0,
                               service_kind="deterministic", timeout=10.0,
                               admission=QueueLengthAdmission(1))
        for _ in range(6):
            client.submit()
        system.run(until=0.5)
        assert server.queue_depth == 1
        assert server.accepted == 2          # 1 in service + 1 admitted
        assert server.rejected >= 3

    def test_shed_tightens_admission(self):
        system, registry = _small_system()
        server, _ = _wire(system, registry, queue_capacity=64)
        assert registry.shed("edge0", factor=0.25)
        assert isinstance(server.admission, QueueLengthAdmission)
        assert server.admission.limit == 16
        assert not registry.shed("nowhere")

    def test_priority_queue_serves_low_priority_value_first(self):
        system, registry = _small_system()
        server, client = _wire(system, registry, concurrency=1,
                               queue_capacity=10, service_mean=1.0,
                               service_kind="deterministic", timeout=10.0)
        order = []
        client.on_complete = lambda req_id, ok: order.append(req_id)
        # Occupy the single slot first so the next two must queue; their
        # service order is then decided by priority, not arrival.
        dummy = client.submit(priority=5)
        system.run(until=0.5)
        low = client.submit(priority=9)
        high = client.submit(priority=0)
        system.run(until=5.0)
        assert order == [dummy, high, low]


# --------------------------------------------------------------------------- #
# Client resilience: timeout, retry, hedge, breaker in the loop
# --------------------------------------------------------------------------- #
class TestClientResilience:
    def test_timeouts_trigger_retries_that_succeed(self):
        system, registry = _small_system()
        server, client = _wire(system, registry, concurrency=1,
                               queue_capacity=64, service_mean=0.3,
                               timeout=0.4,
                               retry=RetryPolicy(max_attempts=3,
                                                 base_delay=0.05,
                                                 jitter=0.0))
        gen = registry.add_generator(OpenLoopGenerator(
            system.sim, client, rate=4.0,
            rng=system.rngs.stream("traffic:arrivals"), stop=8.0))
        gen.start()
        system.run(until=10.0)
        assert client.stats.timed_out > 0
        assert client.stats.retries > 0
        assert client.stats.completed > 0

    def test_exhausted_attempts_fail(self):
        system, registry = _small_system()
        _, client = _wire(system, registry, concurrency=1, queue_capacity=1,
                          service_mean=50.0, timeout=0.1,
                          retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                                            jitter=0.0))
        client.submit()
        client.submit()
        client.submit()
        system.run(until=5.0)
        assert client.stats.failed == 3
        assert client.stats.completed == 0

    def test_budget_refuses_unfunded_retries(self):
        system, registry = _small_system()
        _, client = _wire(system, registry, concurrency=1, queue_capacity=1,
                          service_mean=50.0, timeout=0.1,
                          retry=RetryPolicy(max_attempts=5, base_delay=0.01,
                                            jitter=0.0),
                          budget=RetryBudget(ratio=0.0, cap=1.0, initial=1.0))
        for _ in range(3):
            client.submit()
        system.run(until=5.0)
        # 1 initial token funds exactly one retry across all requests.
        assert client.stats.retries == 1
        assert client.budget.refused > 0

    def test_breaker_short_circuits_while_open(self):
        system, registry = _small_system()
        _, client = _wire(system, registry, concurrency=1, queue_capacity=1,
                          service_mean=50.0, timeout=0.1,
                          breaker=CircuitBreaker(failure_threshold=2,
                                                 recovery_time=10.0))
        for _ in range(3):
            client.submit()
        system.run(until=1.0)
        assert client.breaker.state == OPEN
        before = client.stats.short_circuited
        client.submit()
        assert client.stats.short_circuited == before + 1

    def test_hedge_fires_second_attempt(self):
        system, registry = _small_system()
        server, client = _wire(system, registry, concurrency=1,
                               queue_capacity=64, service_mean=0.4,
                               timeout=2.0,
                               hedge=HedgePolicy(delay=0.1))
        client.submit()
        system.run(until=3.0)
        assert client.stats.hedges == 1
        assert server.accepted == 2          # original + hedge
        assert client.stats.completed == 1   # first reply wins


# --------------------------------------------------------------------------- #
# Scenario-level assertions: the headline comparisons
# --------------------------------------------------------------------------- #
class TestOverloadScenario:
    def test_naive_collapses_admission_holds(self):
        naive = run_overload("naive", horizon=12.0)
        held = run_overload("admission", horizon=12.0)
        assert naive["goodput_vs_capacity"] < 0.2
        assert held["goodput_vs_capacity"] > 0.8
        assert held["p99_latency"] < 0.25

    def test_adaptive_reroutes_to_cloud(self):
        prepared = prepare_overload(variant="adaptive", horizon=15.0)
        prepared.system.run(until=prepared.horizon)
        client = prepared.aux["client"]
        assert client.target == "cloud"
        cloud = prepared.aux["registry"].servers["cloud"]
        assert cloud.served > 0
        # Goodput beats the single-server ceiling once the cloud absorbs it.
        assert client.stats.completed / 15.0 > 200.0

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            prepare_overload(variant="nope")


class TestRetryStormScenario:
    def test_naive_stays_collapsed_resilient_recovers(self):
        naive = prepare_retry_storm(variant="naive")
        naive.system.run(until=naive.horizon)
        resilient = prepare_retry_storm(variant="resilient")
        resilient.system.run(until=resilient.horizon)

        naive_kpis = retry_storm_result(naive)
        res_kpis = retry_storm_result(resilient)
        # The acceptance gate: collapse without the patterns, >=90%
        # post-heal recovery with budget + breaker.
        assert naive_kpis["recovery_ratio"] < 0.5
        assert res_kpis["recovery_ratio"] >= 0.9
        assert res_kpis["breaker"]["trips"] >= 1
        assert res_kpis["breaker"]["state"] == CLOSED
        assert res_kpis["retries"] < naive_kpis["retries"] / 10

    def test_recovery_window_after_heal(self):
        start, end = recovery_window(45.0)
        assert start == pytest.approx(21.0)
        assert end == pytest.approx(45.0)


# --------------------------------------------------------------------------- #
# Snapshot/restore: mid-flight traffic round-trips
# --------------------------------------------------------------------------- #
class TestTrafficSnapshot:
    @staticmethod
    def _quiesce(system):
        """Step past any in-flight deliveries (non-restorable closures)."""
        for _ in range(10_000):
            if not any(e["label"].startswith("deliver:")
                       for e in system.sim.pending_events()):
                return
            system.sim.step()
        raise AssertionError("no message-quiescent point found")

    def _run_pair(self, checkpoint_at, horizon):
        """Run one system straight and one through a snapshot round-trip."""
        def build(start):
            system, registry = _small_system(seed=9)
            _wire(system, registry, concurrency=2, queue_capacity=16,
                  service_mean=0.1, timeout=0.3,
                  retry=RetryPolicy(max_attempts=3, base_delay=0.05,
                                    jitter=0.5),
                  budget=RetryBudget(),
                  breaker=CircuitBreaker(failure_threshold=5,
                                         recovery_time=1.0))
            gen = registry.add_generator(OpenLoopGenerator(
                system.sim, registry.clients["c"], rate=25.0,
                rng=system.rngs.stream("traffic:arrivals"), stop=horizon))
            if start:
                gen.start()
            return system, registry

        straight_sys, straight_reg = build(start=True)
        straight_sys.run(until=horizon)

        src_sys, src_reg = build(start=True)
        src_sys.run(until=checkpoint_at)
        self._quiesce(src_sys)
        state = json.loads(json.dumps(src_reg.snapshot_state()))
        kernel = src_sys.sim.snapshot_state()
        rngs = src_sys.rngs.snapshot_state()

        # The restored system never starts its generator: the pending
        # arrival is re-registered from the snapshot instead.
        dst_sys, dst_reg = build(start=False)
        dst_sys.sim.restore_state(kernel)
        dst_sys.rngs.restore_state(rngs)
        dst_reg.restore_state(state)
        dst_sys.run(until=horizon)
        return straight_reg, dst_reg

    def test_mid_flight_round_trip_matches_straight_run(self):
        straight, restored = self._run_pair(checkpoint_at=2.0, horizon=6.0)
        assert restored.aggregate().to_dict() == straight.aggregate().to_dict()
        assert (restored.servers["edge0"].summary()
                == straight.servers["edge0"].summary())

    def test_registry_kpis_match_after_round_trip(self):
        straight, restored = self._run_pair(checkpoint_at=3.0, horizon=6.0)
        assert restored.kpis(6.0) == straight.kpis(6.0)


# --------------------------------------------------------------------------- #
# MAPE integration: backpressure -> overload issue -> shed / reroute
# --------------------------------------------------------------------------- #
class TestMapeIntegration:
    def test_backpressure_analyzer_opens_overload_issue(self):
        knowledge = KnowledgeBase(["edge0"])
        knowledge.facts["backpressure"] = [
            {"node": "edge0", "depth": 60, "capacity": 64, "since": 3.0}]
        opened = BackpressureAnalyzer().analyze(knowledge, now=4.0)
        assert [i.kind for i in opened] == ["overload"]
        assert opened[0].subject == "edge0"
        assert "backpressure" not in knowledge.facts   # drained
        # Same signal again: issue already open, nothing new.
        knowledge.facts["backpressure"] = [
            {"node": "edge0", "depth": 61, "capacity": 64, "since": 3.0}]
        assert BackpressureAnalyzer().analyze(knowledge, now=5.0) == []

    def test_planner_prefers_reroute_over_shed(self):
        planner = RuleBasedPlanner()
        knowledge = KnowledgeBase(["edge0"])
        issue = Issue(kind="overload", subject="edge0", detected_at=1.0,
                      severity=3)
        shed_plan = planner.plan([issue], knowledge, now=1.0)
        assert [type(a) for a in shed_plan.actions] == [ShedLoadAction]
        knowledge.facts["offload_target"] = "cloud"
        route_plan = planner.plan([issue], knowledge, now=2.0)
        assert [type(a) for a in route_plan.actions] == [RerouteTrafficAction]
        assert route_plan.actions[0].destination == "cloud"

    def test_executor_sheds_and_reroutes_via_registry(self):
        system, registry = _small_system()
        server, client = _wire(system, registry, queue_capacity=64)
        executor = Executor(system.sim, system.network, system.fleet,
                            "edge0", system.rngs.stream("exec:edge0"))
        shed, reroute = executor.execute([
            ShedLoadAction(target="edge0", factor=0.5),
            RerouteTrafficAction(target="edge0", destination="cloud"),
        ])
        assert shed.success
        assert server.admission.limit == 32
        assert reroute.success
        assert client.target == "cloud"

    def test_executor_reroute_fails_without_registry(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 1, seed=3)
        executor = Executor(system.sim, system.network, system.fleet,
                            "edge0", system.rngs.stream("exec:edge0"))
        result = executor.execute(
            [RerouteTrafficAction(target="edge0", destination="cloud")])[0]
        assert not result.success
        assert "registry" in result.detail

    def test_backpressure_signal_emitted_under_saturation(self):
        system, registry = _small_system()
        server, client = _wire(system, registry, concurrency=1,
                               queue_capacity=10, service_mean=5.0,
                               service_kind="deterministic", timeout=60.0)
        knowledge = KnowledgeBase(["edge0"])
        server.attach_backpressure(knowledge)
        for _ in range(12):
            client.submit()
        system.run(until=4.0)
        assert server.backpressure_signals >= 1
        assert knowledge.facts["backpressure"][0]["node"] == "edge0"


# --------------------------------------------------------------------------- #
# KPI plumbing
# --------------------------------------------------------------------------- #
class TestKpiIntegration:
    def test_kpi_report_carries_traffic_section(self):
        prepared = prepare_overload(variant="admission", horizon=5.0)
        prepared.system.run(until=prepared.horizon)
        report = prepared.system.kpi_report()
        assert report.traffic is not None
        assert report.traffic["offered"] > 0
        assert "edge0" in report.traffic["servers"]
        assert report.to_dict()["traffic"] == report.traffic

    def test_kpi_report_without_traffic_is_none(self):
        system = IoTSystem.with_edge_cloud_landscape(1, 1, seed=3)
        system.run(until=1.0)
        assert system.kpi_report().traffic is None

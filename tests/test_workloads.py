"""Tests for the domain workloads."""

import pytest

from repro.data.item import DataItem, DataSensitivity
from repro.faults.models import CrashRecoveryFault, PartitionFault
from repro.workloads import (
    EnergyGridWorkload,
    HealthcareWorkload,
    MobilityWorkload,
    SmartCityWorkload,
)


class TestSmartCity:
    def test_readings_flow_and_commands_issue(self):
        workload = SmartCityWorkload(n_districts=2, sensors_per_district=3, seed=7)
        stats = workload.run(30.0)
        assert stats.readings_processed > 100
        assert stats.commands_issued > 0
        assert set(stats.per_district_readings) == {0, 1}

    def test_edge_latency_is_local(self):
        workload = SmartCityWorkload(n_districts=2, sensors_per_district=2, seed=7)
        workload.run(20.0)
        mean_latency = workload.system.metrics.series("city.latency").mean()
        assert mean_latency < 0.05   # edge path, not a WAN round trip

    def test_analytics_failure_stops_processing(self):
        workload = SmartCityWorkload(n_districts=1, sensors_per_district=2, seed=7)
        workload.system.injector.inject_at(
            5.0, CrashRecoveryFault(name="edge-crash", duration=100.0,
                                    device_id="edge0"))
        workload.run(20.0)
        processed_by_10 = len(
            workload.system.metrics.series("city.ingest").window(0.0, 5.0))
        processed_after = len(
            workload.system.metrics.series("city.ingest").window(6.0, 20.0))
        assert processed_by_10 > 0
        assert processed_after == 0

    def test_deterministic(self):
        a = SmartCityWorkload(n_districts=2, sensors_per_district=2, seed=9).run(15.0)
        b = SmartCityWorkload(n_districts=2, sensors_per_district=2, seed=9).run(15.0)
        assert a.readings_processed == b.readings_processed
        assert a.commands_issued == b.commands_issued


class TestHealthcare:
    def test_vitals_reach_hospital_and_lab_anonymized(self):
        workload = HealthcareWorkload(n_patients=3, seed=13)
        stats = workload.run(30.0)
        assert stats.vitals_produced > 0
        assert stats.vitals_shared_hospital == stats.vitals_produced
        assert stats.anonymized_shared_lab == stats.vitals_produced
        assert stats.flows_denied == 0

    def test_raw_export_to_lab_denied(self):
        workload = HealthcareWorkload(n_patients=1, seed=13)
        raw = DataItem("hr:0", 99, "wearable0", "patients", 0.0,
                       DataSensitivity.PERSONAL, subject="patient0")
        assert not workload.try_raw_export_to_lab(raw)
        assert workload.stats.flows_denied == 1

    def test_lineage_audit_shows_only_anonymized_exposure(self):
        workload = HealthcareWorkload(n_patients=1, seed=13)
        workload.run(10.0)
        # The subject's data (incl. derivations) reached hospital and lab;
        # but every item that reached the lab is PUBLIC (anonymized).
        lab_arrivals = [
            workload.lineage.item(e.item_id)
            for e in workload.lineage.events
            if e.action == "moved" and e.location == "lab-server"
        ]
        assert lab_arrivals
        assert all(i.sensitivity == DataSensitivity.PUBLIC for i in lab_arrivals)
        assert all(i.subject is None for i in lab_arrivals)

    def test_untrusted_environment_blocks_hospital_flow(self):
        workload = HealthcareWorkload(n_patients=1, seed=13)
        workload.system.fleet.get("hospital-server").environment_trusted = False
        workload.run(10.0)
        assert workload.stats.flows_denied > 0
        assert workload.stats.vitals_shared_hospital == 0


class TestEnergy:
    def test_feeders_stay_balanced(self):
        workload = EnergyGridWorkload(n_feeders=2, meters_per_feeder=4, seed=23)
        stats = workload.run(40.0)
        assert stats.meter_reports > 0
        assert stats.balanced_fraction > 0.9

    def test_balancing_is_local_survives_cloud_outage(self):
        workload = EnergyGridWorkload(n_feeders=2, meters_per_feeder=4, seed=23)
        workload.system.partitions.schedule_outage(5.0, 30.0, "cloud")
        stats = workload.run(40.0)
        # Feeder control lives on the edge: the outage is irrelevant.
        assert stats.balanced_fraction > 0.9

    def test_balancer_failure_hurts_balance(self):
        hit = EnergyGridWorkload(n_feeders=1, meters_per_feeder=5, seed=23,
                                 feeder_capacity=80.0)
        hit.system.injector.inject_at(
            2.0, CrashRecoveryFault(name="c", duration=60.0, device_id="edge0"))
        stats_hit = hit.run(60.0)
        clean = EnergyGridWorkload(n_feeders=1, meters_per_feeder=5, seed=23,
                                   feeder_capacity=80.0)
        stats_clean = clean.run(60.0)
        assert stats_hit.balanced_fraction <= stats_clean.balanced_fraction


class TestMobility:
    def test_telemetry_continuity_across_handover(self):
        workload = MobilityWorkload(n_vehicles=3, n_sites=3, seed=31,
                                    handover_period=8.0)
        stats = workload.run(40.0)
        assert stats.handovers > 0
        # Continuity: nearly all telemetry keeps arriving despite roaming.
        assert stats.telemetry_received >= 0.9 * stats.telemetry_sent

    def test_border_crossing_sanitizes_data(self):
        workload = MobilityWorkload(n_vehicles=2, n_sites=2, seed=31,
                                    handover_period=5.0)
        stats = workload.run(30.0)
        assert stats.border_crossings > 0
        assert stats.items_sanitized > 0
        # Governance trace recorded each transfer completion.
        assert workload.system.trace.count(
            category="governance", name="domain-transfer-complete"
        ) == stats.border_crossings

    def test_requires_two_sites(self):
        with pytest.raises(ValueError):
            MobilityWorkload(n_sites=1)
